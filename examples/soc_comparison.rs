//! Runs one workload across all three evaluation SoCs and shows how the
//! planner adapts: on the Kirin 990 the NPU takes the CNN bodies; on the
//! Snapdragons (no NPU) the plan leans on the CPU Big/GPU pair.
//!
//! ```text
//! cargo run --release --example soc_comparison
//! ```

use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::Planner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = [
        ModelId::ResNet50,
        ModelId::Bert,
        ModelId::SqueezeNet,
        ModelId::InceptionV4,
        ModelId::MobileNetV2,
        ModelId::Vit,
    ];
    let requests: Vec<ModelGraph> = workload.iter().map(|m| m.graph()).collect();

    for soc in SocSpec::evaluation_platforms() {
        let planner = Planner::new(&soc)?;
        let planned = planner.plan(&requests)?;
        let report = planned.execute(&soc)?;
        println!(
            "{:<16} depth {}  latency {:>7.1} ms  throughput {:>5.2} inf/s",
            soc.name,
            planned.plan.depth(),
            report.makespan_ms,
            report.throughput_per_sec
        );
        // Per-processor utilization over the run.
        for (i, p) in soc.processors.iter().enumerate() {
            let util = report.trace.utilization(h2p_simulator::ProcessorId(i));
            println!("    {:<6} {:>5.1}% busy", p.name, util * 100.0);
        }
    }
    Ok(())
}
