//! Bring your own hardware and your own network: builds a custom SoC
//! (a hypothetical tablet chip with a beefy GPU and no NPU) and a custom
//! DNN through the public APIs, then plans and executes it next to zoo
//! models.
//!
//! ```text
//! cargo run --release --example custom_soc_and_model
//! ```

use h2p_models::graph::ModelGraph;
use h2p_models::layer::{f32_bytes, Layer, OpKind};
use h2p_models::zoo::ModelId;
use h2p_simulator::processor::{ProcessorKind, ProcessorSpec};
use h2p_simulator::SocSpec;
use hetero2pipe::planner::Planner;

/// A small custom audio-visual fusion network: conv front-end, a
/// transformer fusion block and an FC head.
fn fusion_net() -> ModelGraph {
    let d = 256u64;
    let seq = 64u64;
    let layers = vec![
        Layer::new(
            "conv_front",
            OpKind::Conv,
            2.0 * (9 * 32 * 64 * 56 * 56) as f64,
            f32_bytes(56 * 56 * 32),
            f32_bytes(56 * 56 * 64),
            f32_bytes(9 * 32 * 64),
        )
        .locality(0.9),
        Layer::new(
            "proj",
            OpKind::MatMul,
            2.0 * (seq * 56 * d) as f64,
            f32_bytes(56 * 56 * 64),
            f32_bytes(seq * d),
            f32_bytes(56 * d),
        )
        .locality(0.7),
        Layer::new(
            "fusion_attn",
            OpKind::Attention,
            (8 * seq * d * d + 4 * seq * seq * d) as f64,
            f32_bytes(seq * d),
            f32_bytes(seq * d),
            f32_bytes(4 * d * d),
        )
        .locality(0.6),
        Layer::new(
            "fusion_ffn",
            OpKind::MatMul,
            2.0 * (seq * d * 4 * d) as f64,
            f32_bytes(seq * d),
            f32_bytes(seq * 4 * d),
            f32_bytes(d * 4 * d),
        )
        .locality(0.65),
        Layer::new(
            "head",
            OpKind::Fc,
            2.0 * (4 * d * 32) as f64,
            f32_bytes(4 * d),
            f32_bytes(32),
            f32_bytes(4 * d * 32),
        )
        .locality(0.55),
    ];
    ModelGraph::new("FusionNet", f32_bytes(56 * 56 * 32), layers)
}

/// A hypothetical tablet SoC: 4 big cores, 4 small cores, a large GPU.
fn tablet_soc() -> SocSpec {
    SocSpec::new(
        "TabletChip X1",
        vec![
            ProcessorSpec {
                name: "CPU_B".to_owned(),
                kind: ProcessorKind::CpuBig,
                cores: 4,
                clock_ghz: 3.0,
                peak_gflops: 70.0,
                mem_bandwidth_gbps: 15.0,
                l2_kib: 1024,
                kernel_overhead_ms: 0.008,
                cluster: None,
            },
            ProcessorSpec {
                name: "CPU_S".to_owned(),
                kind: ProcessorKind::CpuSmall,
                cores: 4,
                clock_ghz: 2.0,
                peak_gflops: 14.0,
                mem_bandwidth_gbps: 7.0,
                l2_kib: 256,
                kernel_overhead_ms: 0.012,
                cluster: None,
            },
            ProcessorSpec {
                name: "GPU".to_owned(),
                kind: ProcessorKind::Gpu,
                cores: 12,
                clock_ghz: 0.9,
                peak_gflops: 180.0,
                mem_bandwidth_gbps: 18.0,
                l2_kib: 2048,
                kernel_overhead_ms: 0.30,
                cluster: None,
            },
        ],
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = tablet_soc();
    let planner = Planner::new(&soc)?;

    let custom = fusion_net();
    println!(
        "custom model {}: {} layers, {:.2} GFLOPs, {:.1} MB",
        custom.name(),
        custom.len(),
        custom.total_flops() / 1e9,
        custom.weight_bytes() as f64 / (1024.0 * 1024.0)
    );

    let requests = vec![
        custom.clone(),
        ModelId::MobileNetV2.graph(),
        custom.clone(),
        ModelId::ResNet50.graph(),
    ];
    let planned = planner.plan(&requests)?;
    let report = planned.execute(&soc)?;
    println!(
        "on {}: latency {:.1} ms, throughput {:.2} inf/s",
        soc.name, report.makespan_ms, report.throughput_per_sec
    );
    for (pos, req) in planned.plan.requests.iter().enumerate() {
        println!(
            "  #{pos} {:<12} {} stages, intensity {:.2} ({:?})",
            req.model,
            req.active_stage_count(),
            req.intensity,
            req.class
        );
    }
    Ok(())
}
