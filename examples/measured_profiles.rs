//! Plugging in measured profiles: on real hardware the planner consumes
//! per-layer latencies profiled on the device, not an analytical model.
//! This example shows the workflow — record measurements in a
//! `ProfileTable`, attach it to the cost model, and watch the plan adapt.
//!
//! Here we simulate the discovery that the GPU driver's conv kernels are
//! 2x slower than the analytical estimate (a common real-world finding
//! with OpenCL on mobile): the planner shifts layers off the GPU.
//!
//! ```text
//! cargo run --release --example measured_profiles
//! ```

use h2p_models::cost::CostModel;
use h2p_models::profile::ProfileTable;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::partition::min_max_partition;

fn gpu_share(soc: &SocSpec, cost_override: Option<ProfileTable>) -> (usize, f64) {
    let graph = ModelId::ResNet50.graph();
    let mut cost = CostModel::new(soc);
    if let Some(p) = cost_override {
        cost.set_profile(p);
    }
    // Plan over CPU_B + GPU, querying the (possibly profiled) cost model
    // directly through the same DP the planner uses.
    let procs = [
        soc.processor_by_name("CPU_B").expect("CPU_B"),
        soc.processor_by_name("GPU").expect("GPU"),
    ];
    let oracle = |slot: usize, i: usize, j: usize| {
        let mut total = 0.0;
        for idx in i..=j {
            total += cost.layer_latency_for(&graph, idx, procs[slot])?;
        }
        Some(total)
    };
    let p = min_max_partition(graph.len(), 2, oracle).expect("partition");
    let gpu_layers = graph.len() - p.splits[0];
    (gpu_layers, p.makespan_ms)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = SocSpec::kirin_990();
    let graph = ModelId::ResNet50.graph();

    // Baseline: analytical cost model.
    let (gpu_layers, makespan) = gpu_share(&soc, None);
    println!(
        "analytical model:   GPU stage gets {gpu_layers} of {} layers (stage makespan {makespan:.1} ms)",
        graph.len()
    );

    // "Measure" every conv layer on the GPU at 2x the analytical value.
    let cost = CostModel::new(&soc);
    let gpu = soc.processor_by_name("GPU").expect("GPU");
    let mut profile = ProfileTable::new();
    for (i, layer) in graph.layers().iter().enumerate() {
        if let Some(ms) = cost.layer_latency_for(&graph, i, gpu) {
            profile.record(graph.name(), &layer.name, gpu, ms * 2.0);
        }
    }
    println!("recorded {} measurements", profile.len());

    let (gpu_layers_slow, makespan_slow) = gpu_share(&soc, Some(profile));
    println!(
        "with measurements:  GPU stage gets {gpu_layers_slow} of {} layers (stage makespan {makespan_slow:.1} ms)",
        graph.len()
    );
    assert!(
        gpu_layers_slow < gpu_layers,
        "a slower GPU must receive fewer layers"
    );
    println!("\nThe DP rebalanced away from the GPU once the measurements disagreed\nwith the analytical model — the same workflow applies to real device\nprofiles serialized with serde.");
    Ok(())
}
