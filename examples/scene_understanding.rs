//! The paper's motivating application: a scene-understanding app that
//! fans one camera frame out to several DNNs — robust object detection
//! (YOLOv4), face/age/gender recognition (stand-ins: ResNet50 +
//! MobileNetV2), and scene-to-text captioning (ViT encoder + BERT-style
//! decoder) — and must sustain the whole bundle per frame.
//!
//! Compares the CPU-centric serial baseline against Band and Hetero²Pipe
//! over a burst of frames on the Kirin 990.
//!
//! ```text
//! cargo run --release --example scene_understanding
//! ```

use h2p_baselines::Scheme;
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;

/// One camera frame spawns this multi-DNN request bundle.
fn frame_bundle() -> Vec<ModelId> {
    vec![
        ModelId::YoloV4,      // object detection
        ModelId::ResNet50,    // face recognition stand-in
        ModelId::MobileNetV2, // age/gender stand-in
        ModelId::Vit,         // caption encoder
        ModelId::Bert,        // caption language model
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = SocSpec::kirin_990();
    let frames = 3;
    let requests: Vec<ModelGraph> = (0..frames)
        .flat_map(|_| frame_bundle())
        .map(|m| m.graph())
        .collect();
    println!(
        "scene understanding: {frames} frames x {} models = {} requests on {}",
        frame_bundle().len(),
        requests.len(),
        soc.name
    );

    let mut baseline_ms = None;
    for scheme in [
        Scheme::MnnSerial,
        Scheme::PipeIt,
        Scheme::Band,
        Scheme::Hetero2Pipe,
    ] {
        let report = scheme.run(&soc, &requests)?;
        let speedup = baseline_ms
            .map(|b: f64| format!("{:.2}x", b / report.makespan_ms))
            .unwrap_or_else(|| "1.00x".to_owned());
        if baseline_ms.is_none() {
            baseline_ms = Some(report.makespan_ms);
        }
        println!(
            "  {:<13} latency {:>8.1} ms  throughput {:>5.2} inf/s  frame rate {:>5.2} fps  speedup {speedup}",
            scheme.name(),
            report.makespan_ms,
            report.throughput_per_sec,
            frames as f64 * 1000.0 / report.makespan_ms,
        );
    }
    println!(
        "\nThe pipeline keeps the NPU on the CNN/transformer bodies while the\nCPU clusters absorb the NPU-unsupported operators of YOLOv4 and BERT."
    );
    Ok(())
}
