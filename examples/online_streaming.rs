//! Streaming deployment: requests arrive as a Poisson process and the
//! planner runs once per arrival window (the paper's note that "the
//! planner should be scheduled more frequently" as load grows).
//!
//! Compares window sizes by p50/p95 response time under the same arrival
//! trace on the Kirin 990.
//!
//! ```text
//! cargo run --release --example online_streaming
//! ```

use h2p_models::graph::ModelGraph;
use h2p_simulator::SocSpec;
use hetero2pipe::executor::{percentile, response_times};
use hetero2pipe::online::OnlinePlanner;
use hetero2pipe::planner::Planner;
use hetero2pipe::workload::{poisson_arrivals, random_models};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc)?;
    let n = 24;
    let models = random_models(77, n);
    let requests: Vec<ModelGraph> = models.iter().map(|m| m.graph()).collect();
    let arrivals = poisson_arrivals(77, n, 250.0);
    println!(
        "{n} requests, Poisson arrivals with 250 ms mean gap (span {:.0} ms)",
        arrivals.last().copied().unwrap_or(0.0)
    );

    for window in [4usize, 8, 24] {
        let online = OnlinePlanner::new(planner.clone(), window);
        let planned = online.plan(&requests)?;
        let report = planned.execute_with_arrivals(&soc, &arrivals)?;
        let resp = response_times(&report, &arrivals);
        println!(
            "  window {window:>2}: makespan {:>7.1} ms  response p50 {:>7.1} ms  p95 {:>7.1} ms",
            report.makespan_ms,
            percentile(&resp, 50.0),
            percentile(&resp, 95.0),
        );
    }
    println!(
        "\nSmaller windows bound planning latency and re-ordering scope; larger\nwindows give the vertical optimizer more room — the deployment trade-off\nthe paper's complexity analysis describes."
    );
    Ok(())
}
