//! Quickstart: plan and execute a multi-DNN workload on a simulated
//! Kirin 990 with the full Hetero²Pipe planner.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::Planner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a platform: the Kirin 990 preset has CPU Big/Small
    //    clusters, a Mali-G76 GPU and the DaVinci NPU.
    let soc = SocSpec::kirin_990();

    // 2. Create the planner. This profiles the model zoo's synthetic PMU
    //    counters and trains the contention-intensity regression (Eq. 1).
    let planner = Planner::new(&soc)?;

    // 3. Plan a stream of heterogeneous inference requests. YOLOv4 and
    //    BERT contain NPU-unsupported operators and exercise the
    //    operator-fallback path.
    let planned = planner.plan_models(&[
        ModelId::YoloV4,
        ModelId::MobileNetV2,
        ModelId::Bert,
        ModelId::ResNet50,
        ModelId::SqueezeNet,
    ])?;

    println!("pipeline depth: {} processors", planned.plan.depth());
    println!(
        "estimated makespan: {:.1} ms, planned bubbles: {:.1} ms",
        planned.plan.estimated_makespan_ms(),
        planned.plan.total_bubble_ms()
    );
    for (pos, req) in planned.plan.requests.iter().enumerate() {
        let stages: Vec<String> = req
            .stages
            .iter()
            .enumerate()
            .filter_map(|(slot, s)| {
                s.as_ref().map(|s| {
                    format!(
                        "{}:{}={:.1}ms",
                        soc.processor(planned.plan.procs[slot]).name,
                        s.range,
                        s.total_ms()
                    )
                })
            })
            .collect();
        println!(
            "  #{pos} {} [{:?}]: {}",
            req.model,
            req.class,
            stages.join(" -> ")
        );
    }

    // 4. Execute on the discrete-event SoC simulator, where co-execution
    //    slowdown, thermal throttling and memory pressure play out.
    let report = planned.execute(&soc)?;
    println!(
        "\nmeasured: latency {:.1} ms, throughput {:.2} inf/s, mean co-exec slowdown {:.1}%",
        report.makespan_ms,
        report.throughput_per_sec,
        report.mean_slowdown * 100.0
    );
    Ok(())
}
