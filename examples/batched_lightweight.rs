//! Appendix-D batching: a continuous-classification stream interleaves
//! bursts of lightweight MobileNetV2/SqueezeNet frames with heavyweight
//! requests. Aligning a single 6 ms lightweight inference against a
//! 400 ms BERT stage is hopeless, so the planner coalesces adjacent
//! lightweight requests into affine-latency batches before pipelining.
//!
//! ```text
//! cargo run --release --example batched_lightweight
//! ```

use h2p_models::graph::ModelGraph;
use h2p_simulator::SocSpec;
use hetero2pipe::batching::{coalesce, graphs_for_groups};
use hetero2pipe::planner::Planner;
use hetero2pipe::workload::lightweight_burst_stream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc)?;

    // 6 bursts of 8 lightweight frames, each followed by a heavy request.
    let stream = lightweight_burst_stream(2025, 6, 8);
    println!("stream: {} requests", stream.len());

    // Unbatched: every frame is its own pipeline request.
    let unbatched: Vec<ModelGraph> = stream.iter().map(|m| m.graph()).collect();
    let r1 = planner.plan(&unbatched)?.execute(&soc)?;

    // Batched: adjacent identical lightweight requests coalesce (max 8).
    let groups = coalesce(&stream, 8);
    let batched = graphs_for_groups(&groups);
    println!(
        "coalesced into {} pipeline requests: {:?}",
        batched.len(),
        groups
            .iter()
            .map(|g| format!("{}x{}", g.model, g.batch))
            .collect::<Vec<_>>()
    );
    let r2 = planner.plan(&batched)?.execute(&soc)?;

    // Per-inference throughput counts original frames, not batches.
    let frames = stream.len() as f64;
    println!(
        "\nunbatched: {:.1} ms total, {:.2} frames/s",
        r1.makespan_ms,
        frames * 1000.0 / r1.makespan_ms
    );
    println!(
        "batched:   {:.1} ms total, {:.2} frames/s  ({:.2}x speedup)",
        r2.makespan_ms,
        frames * 1000.0 / r2.makespan_ms,
        r1.makespan_ms / r2.makespan_ms
    );
    Ok(())
}
