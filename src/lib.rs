//! Workspace-level glue for examples and integration tests.
pub use h2p_baselines as baselines;
pub use h2p_contention as contention;
pub use h2p_models as models;
pub use h2p_simulator as simulator;
pub use hetero2pipe as core;
