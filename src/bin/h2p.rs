//! `h2p` — command-line front end for the Hetero²Pipe reproduction.
//!
//! ```text
//! h2p socs                               # list SoC presets
//! h2p zoo                                # list zoo models
//! h2p plan  --soc kirin990 bert yolov4   # print a pipeline plan
//! h2p run   --soc sd870 --scheme band resnet50 vit squeezenet
//! h2p gantt --soc kirin990 bert mobilenetv2 resnet50
//! ```

use h2p_baselines::Scheme;
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::Planner;
use hetero2pipe::report::{PlanSummary, ReportSummary};

fn parse_soc(name: &str) -> Option<SocSpec> {
    match name.to_ascii_lowercase().replace(['-', '_', ' '], "").as_str() {
        "kirin990" | "kirin" => Some(SocSpec::kirin_990()),
        "sd778g" | "snapdragon778g" | "778g" => Some(SocSpec::snapdragon_778g()),
        "sd870" | "snapdragon870" | "870" => Some(SocSpec::snapdragon_870()),
        _ => None,
    }
}

fn parse_model(name: &str) -> Option<ModelId> {
    let n = name.to_ascii_lowercase().replace(['-', '_'], "");
    ModelId::ALL
        .into_iter()
        .find(|m| m.name().to_ascii_lowercase().replace(['-', '_'], "") == n)
        .or(match n.as_str() {
            "yolo" | "yolov4" => Some(ModelId::YoloV4),
            "mobilenet" | "mobilenetv2" => Some(ModelId::MobileNetV2),
            "inception" | "inceptionv4" => Some(ModelId::InceptionV4),
            "vgg" | "vgg16" => Some(ModelId::Vgg16),
            _ => None,
        })
}

fn parse_scheme(name: &str) -> Option<Scheme> {
    match name.to_ascii_lowercase().as_str() {
        "mnn" | "serial" => Some(Scheme::MnnSerial),
        "pipeit" | "pipe-it" => Some(Scheme::PipeIt),
        "band" => Some(Scheme::Band),
        "dart" => Some(Scheme::Dart),
        "noct" | "no-ct" => Some(Scheme::NoCt),
        "h2p" | "hetero2pipe" => Some(Scheme::Hetero2Pipe),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  h2p socs\n  h2p zoo\n  h2p plan  [--soc NAME] MODEL...\n  h2p run   [--soc NAME] [--scheme NAME] MODEL...\n  h2p gantt [--soc NAME] MODEL...\n\nsocs: kirin990 (default), sd778g, sd870\nschemes: mnn, pipeit, band, noct, h2p (default)"
    );
    std::process::exit(2);
}

struct Args {
    soc: SocSpec,
    scheme: Scheme,
    models: Vec<ModelId>,
}

fn parse_args(rest: &[String]) -> Args {
    let mut soc = SocSpec::kirin_990();
    let mut scheme = Scheme::Hetero2Pipe;
    let mut models = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--soc" => {
                i += 1;
                soc = rest
                    .get(i)
                    .and_then(|s| parse_soc(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown soc");
                        usage()
                    });
            }
            "--scheme" => {
                i += 1;
                scheme = rest
                    .get(i)
                    .and_then(|s| parse_scheme(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown scheme");
                        usage()
                    });
            }
            m => match parse_model(m) {
                Some(id) => models.push(id),
                None => {
                    eprintln!("unknown model: {m}");
                    usage()
                }
            },
        }
        i += 1;
    }
    if models.is_empty() {
        eprintln!("no models given");
        usage()
    }
    Args { soc, scheme, models }
}

fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
    ids.iter().map(|m| m.graph()).collect()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "socs" => {
            for soc in SocSpec::evaluation_platforms() {
                let procs: Vec<String> = soc
                    .processors
                    .iter()
                    .map(|p| format!("{} ({:.0} GFLOPS)", p.name, p.peak_gflops))
                    .collect();
                println!("{:<16} {}", soc.name, procs.join(", "));
            }
        }
        "zoo" => {
            for id in ModelId::ALL {
                let g = id.graph();
                println!(
                    "{:<12} {:>3} layers  {:>7.1} MB  {:>6.2} GFLOPs  NPU: {}",
                    id.name(),
                    g.len(),
                    g.weight_bytes() as f64 / (1024.0 * 1024.0),
                    g.total_flops() / 1e9,
                    if g.fully_npu_supported() { "yes" } else { "fallback" }
                );
            }
        }
        "plan" => {
            let args = parse_args(&argv[1..]);
            let planner = Planner::new(&args.soc).expect("planner");
            let planned = planner.plan(&graphs(&args.models)).expect("plan");
            println!("plan on {}:", args.soc.name);
            print!("{}", PlanSummary::new(&planned.plan, &args.soc));
        }
        "run" => {
            let args = parse_args(&argv[1..]);
            let report = args
                .scheme
                .run(&args.soc, &graphs(&args.models))
                .expect("run");
            println!("{} on {}:", args.scheme.name(), args.soc.name);
            print!("{}", ReportSummary::new(&report));
        }
        "gantt" => {
            let args = parse_args(&argv[1..]);
            let planner = Planner::new(&args.soc).expect("planner");
            let planned = planner.plan(&graphs(&args.models)).expect("plan");
            let report = planned.execute(&args.soc).expect("execute");
            let names: Vec<&str> = args
                .soc
                .processors
                .iter()
                .map(|p| p.name.as_str())
                .collect();
            print!("{}", report.trace.render_gantt(&names, 100));
            println!(
                "latency {:.1} ms, throughput {:.2} inf/s",
                report.makespan_ms, report.throughput_per_sec
            );
        }
        _ => usage(),
    }
}
