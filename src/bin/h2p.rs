//! `h2p` — command-line front end for the Hetero²Pipe reproduction.
//!
//! ```text
//! h2p socs                               # list SoC presets
//! h2p zoo                                # list zoo models
//! h2p plan  --soc kirin990 bert yolov4   # print a pipeline plan
//! h2p plan  --threads 4 bert yolov4      # explicit planner threads
//! h2p run   --soc sd870 --scheme band resnet50 vit squeezenet
//! h2p gantt --soc kirin990 bert mobilenetv2 resnet50
//! h2p trace --soc kirin990 --audit bert resnet50
//! h2p trace --scheme band --audit bert   # audit a baseline's trace
//! h2p trace --audit --corrupt bert       # exits nonzero (audit demo)
//! h2p trace --events - mobilenetv2       # JSON-lines event log
//! h2p trace --summary bert resnet50      # per-processor metrics table
//! h2p lint  --soc kirin990 bert yolov4   # static plan verification
//! h2p lint  --json --deny-warnings bert  # machine-readable, strict
//! h2p lint  --corrupt drop-layer bert    # exits nonzero (lint demo)
//! h2p export --trace t.json --metrics m.json bert resnet50
//! ```

use std::sync::Arc;

use h2p_analyze::Mutation;
use h2p_baselines::{pipe_it, Scheme};
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::export::{
    add_audit_instants, add_planner_spans, chrome_trace, record_trace_metrics, ENGINE_PID,
};
use h2p_simulator::{audit, SocSpec};
use h2p_telemetry::{MetricsRegistry, Telemetry};
use hetero2pipe::executor::request_slices;
use hetero2pipe::planner::{Planner, PlannerConfig};
use hetero2pipe::report::{PlanSummary, ReportSummary};

fn parse_soc(name: &str) -> Option<SocSpec> {
    match name
        .to_ascii_lowercase()
        .replace(['-', '_', ' '], "")
        .as_str()
    {
        "kirin990" | "kirin" => Some(SocSpec::kirin_990()),
        "sd778g" | "snapdragon778g" | "778g" => Some(SocSpec::snapdragon_778g()),
        "sd870" | "snapdragon870" | "870" => Some(SocSpec::snapdragon_870()),
        _ => None,
    }
}

fn parse_model(name: &str) -> Option<ModelId> {
    let n = name.to_ascii_lowercase().replace(['-', '_'], "");
    ModelId::ALL
        .into_iter()
        .find(|m| m.name().to_ascii_lowercase().replace(['-', '_'], "") == n)
        .or(match n.as_str() {
            "yolo" | "yolov4" => Some(ModelId::YoloV4),
            "mobilenet" | "mobilenetv2" => Some(ModelId::MobileNetV2),
            "inception" | "inceptionv4" => Some(ModelId::InceptionV4),
            "vgg" | "vgg16" => Some(ModelId::Vgg16),
            _ => None,
        })
}

fn parse_scheme(name: &str) -> Option<Scheme> {
    match name.to_ascii_lowercase().as_str() {
        "mnn" | "serial" => Some(Scheme::MnnSerial),
        "pipeit" | "pipe-it" => Some(Scheme::PipeIt),
        "band" => Some(Scheme::Band),
        "dart" => Some(Scheme::Dart),
        "noct" | "no-ct" => Some(Scheme::NoCt),
        "h2p" | "hetero2pipe" => Some(Scheme::Hetero2Pipe),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  h2p socs\n  h2p zoo\n  h2p plan  [--soc NAME] [--threads N] MODEL...\n  h2p run   [--soc NAME] [--scheme NAME] MODEL...\n  h2p gantt [--soc NAME] MODEL...\n  h2p trace [--soc NAME] [--scheme NAME] [--audit] [--summary]\n            [--corrupt [CLASS]] [--events PATH|-] MODEL...\n  h2p lint  [--soc NAME] [--scheme NAME] [--json] [--deny-warnings]\n            [--corrupt CLASS] MODEL...\n  h2p export [--soc NAME] [--scheme NAME] [--trace PATH|-]\n            [--metrics PATH|-] MODEL...\n\nsocs: kirin990 (default), sd778g, sd870\nschemes: mnn, pipeit, band, noct, h2p (default)\n\nplan flags:\n  --threads N     planner worker threads; 0 or omitted = available\n                  parallelism (plans are identical for every N)\n\ntrace flags:\n  --scheme NAME   lower and trace the named scheme (default h2p)\n  --audit         validate the trace against the simulator contracts,\n                  including the event-log replay reconciliation; exit\n                  nonzero on any violation\n  --summary       print the per-processor metrics snapshot table\n                  (busy/idle/bubble/stretch ms)\n  --corrupt [CLASS] deliberately corrupt the trace before auditing\n                  (demo); CLASS is overlap (default) or stretch — an\n                  in-envelope duration corruption only the replay\n                  reconciliation catches\n  --events PATH   write the JSON-lines event log to PATH ('-' = stdout)\n\nlint flags:\n  --json            emit one JSON object per finding plus a summary line\n  --deny-warnings   exit nonzero on warnings, not just errors\n  --corrupt CLASS   corrupt the plan before linting (demo); CLASS is one\n                    of: drop-layer, duplicate-slot, bad-proc,\n                    inflate-makespan\n\nexport flags:\n  --trace PATH    write the run as Chrome Trace Event JSON, loadable in\n                  chrome://tracing or ui.perfetto.dev ('-' = stdout)\n  --metrics PATH  write the metrics snapshot JSON ('-' = stdout)"
    );
    std::process::exit(2);
}

/// Which trace corruption `h2p trace --corrupt [CLASS]` injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceCorruption {
    /// Overlap two spans and beat a solo time — the plain envelope
    /// audit catches this.
    Overlap,
    /// Stretch the last span towards (but within) the conservative
    /// duration bound — only the replay reconciliation catches this.
    Stretch,
}

struct Args {
    soc: SocSpec,
    scheme: Scheme,
    models: Vec<ModelId>,
    audit: bool,
    corrupt: Option<TraceCorruption>,
    events: Option<String>,
    json: bool,
    deny_warnings: bool,
    mutation: Option<Mutation>,
    threads: usize,
    summary: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

/// Parses the common tail of the argument list. `lint` switches
/// `--corrupt` from the trace subcommand's bare flag to the lint
/// subcommand's `--corrupt CLASS` form.
fn parse_args(rest: &[String], lint: bool) -> Args {
    let mut soc = SocSpec::kirin_990();
    let mut scheme = Scheme::Hetero2Pipe;
    let mut models = Vec::new();
    let mut audit = false;
    let mut corrupt = None;
    let mut events = None;
    let mut json = false;
    let mut deny_warnings = false;
    let mut mutation = None;
    let mut threads = 0usize;
    let mut summary = false;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--soc" => {
                i += 1;
                soc = rest.get(i).and_then(|s| parse_soc(s)).unwrap_or_else(|| {
                    eprintln!("unknown soc");
                    usage()
                });
            }
            "--scheme" => {
                i += 1;
                scheme = rest
                    .get(i)
                    .and_then(|s| parse_scheme(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown scheme");
                        usage()
                    });
            }
            "--threads" => {
                i += 1;
                threads = rest.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a non-negative integer");
                    usage()
                });
            }
            "--audit" => audit = true,
            "--corrupt" if lint => {
                i += 1;
                mutation = Some(rest.get(i).and_then(|s| Mutation::parse(s)).unwrap_or_else(
                    || {
                        eprintln!(
                            "--corrupt needs a class: {}",
                            Mutation::ALL.map(Mutation::name).join(", ")
                        );
                        usage()
                    },
                ));
            }
            // The class operand is optional (legacy `--corrupt MODEL...`
            // keeps meaning overlap), so peek before consuming it.
            "--corrupt" => {
                corrupt = Some(match rest.get(i + 1).map(String::as_str) {
                    Some("overlap") => {
                        i += 1;
                        TraceCorruption::Overlap
                    }
                    Some("stretch") => {
                        i += 1;
                        TraceCorruption::Stretch
                    }
                    _ => TraceCorruption::Overlap,
                });
            }
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--summary" => summary = true,
            "--events" => {
                i += 1;
                events = Some(rest.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--events needs a path (or '-')");
                    usage()
                }));
            }
            "--trace" => {
                i += 1;
                trace_out = Some(rest.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--trace needs a path (or '-')");
                    usage()
                }));
            }
            "--metrics" => {
                i += 1;
                metrics_out = Some(rest.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--metrics needs a path (or '-')");
                    usage()
                }));
            }
            m => match parse_model(m) {
                Some(id) => models.push(id),
                None => {
                    eprintln!("unknown model: {m}");
                    usage()
                }
            },
        }
        i += 1;
    }
    if models.is_empty() {
        eprintln!("no models given");
        usage()
    }
    Args {
        soc,
        scheme,
        models,
        audit,
        corrupt,
        events,
        json,
        deny_warnings,
        mutation,
        threads,
        summary,
        trace_out,
        metrics_out,
    }
}

/// Writes `content` to `path`, with `-` meaning stdout.
fn write_out(path: &str, content: &str, what: &str) {
    if path == "-" {
        println!("{content}");
    } else {
        std::fs::write(path, content).expect("write output file");
        eprintln!("{what} written to {path}");
    }
}

fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
    ids.iter().map(|m| m.graph()).collect()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "socs" => {
            for soc in SocSpec::evaluation_platforms() {
                let procs: Vec<String> = soc
                    .processors
                    .iter()
                    .map(|p| format!("{} ({:.0} GFLOPS)", p.name, p.peak_gflops))
                    .collect();
                println!("{:<16} {}", soc.name, procs.join(", "));
            }
        }
        "zoo" => {
            for id in ModelId::ALL {
                let g = id.graph();
                println!(
                    "{:<12} {:>3} layers  {:>7.1} MB  {:>6.2} GFLOPs  NPU: {}",
                    id.name(),
                    g.len(),
                    g.weight_bytes() as f64 / (1024.0 * 1024.0),
                    g.total_flops() / 1e9,
                    if g.fully_npu_supported() {
                        "yes"
                    } else {
                        "fallback"
                    }
                );
            }
        }
        "plan" => {
            let args = parse_args(&argv[1..], false);
            let config = hetero2pipe::planner::PlannerConfig {
                threads: args.threads,
                ..hetero2pipe::planner::PlannerConfig::default()
            };
            let planner = Planner::with_config(&args.soc, config).expect("planner");
            let planned = planner.plan(&graphs(&args.models)).expect("plan");
            println!(
                "plan on {} ({} planner thread{}):",
                args.soc.name,
                config.effective_threads(),
                if config.effective_threads() == 1 {
                    ""
                } else {
                    "s"
                }
            );
            print!("{}", PlanSummary::new(&planned.plan, &args.soc));
        }
        "run" => {
            let args = parse_args(&argv[1..], false);
            let report = args
                .scheme
                .run(&args.soc, &graphs(&args.models))
                .expect("run");
            println!("{} on {}:", args.scheme.name(), args.soc.name);
            print!("{}", ReportSummary::new(&report));
        }
        "gantt" => {
            let args = parse_args(&argv[1..], false);
            let planner = Planner::new(&args.soc).expect("planner");
            let planned = planner.plan(&graphs(&args.models)).expect("plan");
            let report = planned.execute(&args.soc).expect("execute");
            let names: Vec<&str> = args
                .soc
                .processors
                .iter()
                .map(|p| p.name.as_str())
                .collect();
            print!("{}", report.trace.render_gantt(&names, 100));
            println!(
                "latency {:.1} ms, throughput {:.2} inf/s",
                report.makespan_ms, report.throughput_per_sec
            );
        }
        "trace" => {
            let args = parse_args(&argv[1..], false);
            // Every scheme lowers through `Scheme::lower -> LoweredPlan`,
            // so the trace-audit gate covers the baselines too, not just
            // the Hetero²Pipe planner.
            let lowered = args
                .scheme
                .lower(&args.soc, &graphs(&args.models))
                .expect("lower");
            let tasks = lowered.simulation().tasks().to_vec();
            let (mut report, events) = lowered.execute_logged().expect("execute");

            match args.corrupt {
                Some(TraceCorruption::Overlap) => {
                    corrupt_trace(&mut report.trace);
                    eprintln!("trace deliberately corrupted (--corrupt overlap)");
                }
                Some(TraceCorruption::Stretch) => {
                    corrupt_stretch(&mut report.trace, &args.soc, &tasks);
                    eprintln!("trace deliberately corrupted (--corrupt stretch)");
                }
                None => {}
            }

            let names: Vec<&str> = args
                .soc
                .processors
                .iter()
                .map(|p| p.name.as_str())
                .collect();
            print!("{}", report.trace.render_gantt(&names, 100));
            for (p, name) in names.iter().enumerate() {
                let id = h2p_simulator::ProcessorId(p);
                println!(
                    "{:<8} busy {:>8.2} ms  util {:>5.1}%  spans {}",
                    name,
                    report.trace.busy_ms(id),
                    report.trace.utilization(id) * 100.0,
                    report
                        .trace
                        .spans
                        .iter()
                        .filter(|s| s.processor == id)
                        .count()
                );
            }
            println!(
                "latency {:.1} ms, throughput {:.2} inf/s, bubbles {:.1} ms, {} events",
                report.makespan_ms,
                report.throughput_per_sec,
                report.trace.idle_bubble_ms(),
                events.len()
            );

            if args.summary {
                let metrics = MetricsRegistry::new();
                record_trace_metrics(&args.soc, &report.trace, &metrics);
                print!("{}", metrics.snapshot().render_table());
            }

            if let Some(path) = &args.events {
                let mut lines = String::new();
                for (i, t) in tasks.iter().enumerate() {
                    lines.push_str(&format!(
                        "{{\"event\":\"task\",\"task\":{i},\"label\":\"{}\",\"processor\":{},\"solo_ms\":{}}}\n",
                        t.label,
                        t.processor.index(),
                        t.solo_ms
                    ));
                }
                for e in &events {
                    lines.push_str(&e.json_line());
                    lines.push('\n');
                }
                if path == "-" {
                    print!("{lines}");
                } else {
                    std::fs::write(path, lines).expect("write events");
                    eprintln!("event log written to {path}");
                }
            }

            if args.audit {
                // The reconciled audit: envelope checks plus the replay
                // of the logged piecewise interference rates, which also
                // catches in-envelope corruption (--corrupt stretch).
                let audit_report =
                    audit::audit_with_events(&args.soc, &tasks, &events, &report.trace);
                print!("{audit_report}");
                if !audit_report.is_clean() {
                    std::process::exit(1);
                }
            }
        }
        "export" => {
            let args = parse_args(&argv[1..], false);
            if args.trace_out.is_none() && args.metrics_out.is_none() {
                eprintln!("export needs --trace PATH and/or --metrics PATH");
                usage()
            }
            let reqs = graphs(&args.models);
            let telemetry = Arc::new(Telemetry::new());
            // Plan-producing schemes run through a planner that shares
            // this telemetry sink, so the export carries planner phase
            // spans and planning metrics; task-graph schemes lower
            // directly and export engine-side telemetry only.
            let (lowered, mitigation) = match args.scheme {
                Scheme::Hetero2Pipe | Scheme::NoCt => {
                    let config = if args.scheme == Scheme::NoCt {
                        PlannerConfig::no_ct()
                    } else {
                        PlannerConfig::default()
                    };
                    let mut planner = Planner::with_config(&args.soc, config).expect("planner");
                    planner.set_telemetry(Arc::clone(&telemetry));
                    let planned = planner.plan(&reqs).expect("plan");
                    let mit = planned.mitigation.clone();
                    (planned.lower(&args.soc).expect("lower"), mit)
                }
                _ => (args.scheme.lower(&args.soc, &reqs).expect("lower"), None),
            };
            let tasks = lowered.simulation().tasks().to_vec();
            let (report, events) = lowered.execute_logged().expect("execute");

            let audit_report = audit::audit_with_events(&args.soc, &tasks, &events, &report.trace);
            telemetry
                .metrics
                .add("audit.checks", audit_report.checks as u64);
            telemetry
                .metrics
                .add("audit.violations", audit_report.violations.len() as u64);

            let mut doc = chrome_trace(&args.soc, &tasks, &events);
            add_planner_spans(&mut doc, &telemetry.spans.records());
            // One async slice per request: first dispatch to completion.
            let slices = request_slices(&report.trace);
            for (r, slice) in slices.iter().enumerate() {
                let Some((start, end)) = slice else { continue };
                let name = args.models.get(r).map_or_else(
                    || format!("request:{r}"),
                    |m| format!("request:{r}:{}", m.name()),
                );
                doc.async_slice(
                    ENGINE_PID,
                    0,
                    r as u64,
                    name,
                    "request",
                    start * 1000.0,
                    end * 1000.0,
                );
            }
            // Instant markers for the mitigation pass's relocations,
            // anchored where the moved request actually started.
            if let Some(m) = &mitigation {
                for (pos, &orig) in m.order.iter().enumerate() {
                    if pos == orig {
                        continue;
                    }
                    let ts_us = slices
                        .get(orig)
                        .copied()
                        .flatten()
                        .map_or(0.0, |(s, _)| s * 1000.0);
                    doc.instant(
                        ENGINE_PID,
                        0,
                        format!("relocated:{orig}->{pos}"),
                        "relocation",
                        ts_us,
                        'g',
                        Vec::new(),
                    );
                }
            }
            add_audit_instants(&mut doc, &audit_report, &report.trace);
            record_trace_metrics(&args.soc, &report.trace, &telemetry.metrics);

            if let Err(err) = doc.validate() {
                eprintln!("internal error: exported trace fails its schema check: {err}");
                std::process::exit(1);
            }
            if let Some(path) = &args.trace_out {
                write_out(path, &doc.to_json(), "chrome trace");
            }
            if let Some(path) = &args.metrics_out {
                write_out(
                    path,
                    &telemetry.metrics.snapshot().to_json(),
                    "metrics snapshot",
                );
            }
            if !audit_report.is_clean() {
                print!("{audit_report}");
                std::process::exit(1);
            }
        }
        "lint" => {
            let args = parse_args(&argv[1..], true);
            let diags = run_lint(&args);
            if args.json {
                print!("{}", diags.to_json_lines());
            } else {
                print!("{diags}");
            }
            if diags.should_fail(args.deny_warnings) {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}

/// Builds the requested scheme's plan (or lowered task graph) without
/// executing it and runs the static verifier over the result.
///
/// Plan-producing schemes (h2p, noct, pipeit) are linted at the
/// pipeline-plan level, where `--corrupt` can inject damage before the
/// checks run. Task-graph schemes (mnn, band, dart) never build a
/// `PipelinePlan`, so they are linted at the lowered task-graph level
/// and do not support `--corrupt`.
fn run_lint(args: &Args) -> h2p_analyze::Diagnostics {
    let reqs = graphs(&args.models);
    match args.scheme {
        Scheme::Hetero2Pipe | Scheme::NoCt => {
            let planner = if args.scheme == Scheme::NoCt {
                Planner::with_config(&args.soc, hetero2pipe::planner::PlannerConfig::no_ct())
            } else {
                Planner::new(&args.soc)
            }
            .expect("planner");
            let planned = planner.plan(&reqs).expect("plan");
            match args.mutation {
                Some(m) => lint_corrupted(&args.soc, planned.plan_ir(), m),
                None => planned.lint(&args.soc),
            }
        }
        Scheme::PipeIt => {
            let plan = pipe_it::plan(&args.soc, &reqs).expect("plan");
            let refs: Vec<&ModelGraph> = reqs.iter().collect();
            let ir = hetero2pipe::lint::plan_ir(&plan, &refs);
            match args.mutation {
                Some(m) => lint_corrupted(&args.soc, ir, m),
                None => h2p_analyze::lint_plan(&args.soc, &ir),
            }
        }
        Scheme::MnnSerial | Scheme::Band | Scheme::Dart => {
            if args.mutation.is_some() {
                eprintln!(
                    "--corrupt needs a plan-producing scheme (h2p, noct or pipeit); {} \
                     lowers straight to a task graph",
                    args.scheme.name()
                );
                usage()
            }
            let lowered = args.scheme.lower(&args.soc, &reqs).expect("lower");
            lowered.lint()
        }
    }
}

/// Applies `m` to the plan IR, then lints the damaged plan.
fn lint_corrupted(
    soc: &SocSpec,
    mut ir: h2p_analyze::PlanIr,
    m: Mutation,
) -> h2p_analyze::Diagnostics {
    if !h2p_analyze::apply(&mut ir, m) {
        eprintln!("plan has no structure for --corrupt {}", m.name());
        std::process::exit(2);
    }
    eprintln!("plan deliberately corrupted (--corrupt {})", m.name());
    h2p_analyze::lint_plan(soc, &ir)
}

/// Deliberately violates the simulator contracts in a finished trace so
/// `trace --audit --corrupt` demonstrates a nonzero exit: overlaps the
/// two earliest spans on the busiest processor and makes one span beat
/// its solo time.
fn corrupt_trace(trace: &mut h2p_simulator::Trace) {
    let busiest = (0..trace.processor_count).max_by_key(|&p| {
        trace
            .spans
            .iter()
            .filter(|s| s.processor.index() == p)
            .count()
    });
    if let Some(p) = busiest {
        let mut on_proc: Vec<usize> = (0..trace.spans.len())
            .filter(|&i| trace.spans[i].processor.index() == p)
            .collect();
        on_proc.sort_by(|&a, &b| trace.spans[a].start_ms.total_cmp(&trace.spans[b].start_ms));
        if let [first, second, ..] = on_proc[..] {
            let duration = trace.spans[second].end_ms - trace.spans[second].start_ms;
            trace.spans[second].start_ms = trace.spans[first].start_ms;
            trace.spans[second].end_ms = trace.spans[second].start_ms + duration;
        }
    }
    if let Some(span) = trace.spans.first_mut() {
        span.end_ms = span.start_ms + span.solo_ms * 0.5;
    }
}

/// In-envelope duration corruption for `trace --audit --corrupt
/// stretch`: lengthens the globally-last span towards — but strictly
/// within — the audit's conservative duration upper bound. The plain
/// envelope audit waves the stretched trace through; only the
/// event-log replay reconciliation exposes it, which is exactly the
/// gap ROADMAP's "tighten the conservative bound" item describes.
fn corrupt_stretch(
    trace: &mut h2p_simulator::Trace,
    soc: &SocSpec,
    tasks: &[h2p_simulator::TaskSpec],
) {
    let Some(last) = (0..trace.spans.len())
        .max_by(|&a, &b| trace.spans[a].end_ms.total_cmp(&trace.spans[b].end_ms))
    else {
        return;
    };
    let bound = audit::conservative_bound_ms(soc, tasks, trace, last);
    let span = &mut trace.spans[last];
    let duration = span.end_ms - span.start_ms;
    // Midway between the real duration and the envelope bound; if the
    // envelope is already tight, fall back to an unmistakable stretch.
    let target = if bound - duration < 1e-3 {
        duration * 1.5
    } else {
        (duration + bound) / 2.0
    };
    span.end_ms = span.start_ms + target;
}
