//! `h2p` — command-line front end for the Hetero²Pipe reproduction.
//!
//! ```text
//! h2p socs                               # list SoC presets
//! h2p zoo                                # list zoo models
//! h2p plan  --soc kirin990 bert yolov4   # print a pipeline plan
//! h2p plan  --threads 4 bert yolov4      # explicit planner threads
//! h2p run   --soc sd870 --scheme band resnet50 vit squeezenet
//! h2p gantt --soc kirin990 bert mobilenetv2 resnet50
//! h2p trace --soc kirin990 --audit bert resnet50
//! h2p trace --scheme band --audit bert   # audit a baseline's trace
//! h2p trace --audit --corrupt bert       # exits nonzero (audit demo)
//! h2p trace --events - mobilenetv2       # JSON-lines event log
//! h2p lint  --soc kirin990 bert yolov4   # static plan verification
//! h2p lint  --json --deny-warnings bert  # machine-readable, strict
//! h2p lint  --corrupt drop-layer bert    # exits nonzero (lint demo)
//! ```

use h2p_analyze::Mutation;
use h2p_baselines::{pipe_it, Scheme};
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::{audit, SocSpec};
use hetero2pipe::planner::Planner;
use hetero2pipe::report::{PlanSummary, ReportSummary};

fn parse_soc(name: &str) -> Option<SocSpec> {
    match name
        .to_ascii_lowercase()
        .replace(['-', '_', ' '], "")
        .as_str()
    {
        "kirin990" | "kirin" => Some(SocSpec::kirin_990()),
        "sd778g" | "snapdragon778g" | "778g" => Some(SocSpec::snapdragon_778g()),
        "sd870" | "snapdragon870" | "870" => Some(SocSpec::snapdragon_870()),
        _ => None,
    }
}

fn parse_model(name: &str) -> Option<ModelId> {
    let n = name.to_ascii_lowercase().replace(['-', '_'], "");
    ModelId::ALL
        .into_iter()
        .find(|m| m.name().to_ascii_lowercase().replace(['-', '_'], "") == n)
        .or(match n.as_str() {
            "yolo" | "yolov4" => Some(ModelId::YoloV4),
            "mobilenet" | "mobilenetv2" => Some(ModelId::MobileNetV2),
            "inception" | "inceptionv4" => Some(ModelId::InceptionV4),
            "vgg" | "vgg16" => Some(ModelId::Vgg16),
            _ => None,
        })
}

fn parse_scheme(name: &str) -> Option<Scheme> {
    match name.to_ascii_lowercase().as_str() {
        "mnn" | "serial" => Some(Scheme::MnnSerial),
        "pipeit" | "pipe-it" => Some(Scheme::PipeIt),
        "band" => Some(Scheme::Band),
        "dart" => Some(Scheme::Dart),
        "noct" | "no-ct" => Some(Scheme::NoCt),
        "h2p" | "hetero2pipe" => Some(Scheme::Hetero2Pipe),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  h2p socs\n  h2p zoo\n  h2p plan  [--soc NAME] [--threads N] MODEL...\n  h2p run   [--soc NAME] [--scheme NAME] MODEL...\n  h2p gantt [--soc NAME] MODEL...\n  h2p trace [--soc NAME] [--scheme NAME] [--audit] [--corrupt]\n            [--events PATH|-] MODEL...\n  h2p lint  [--soc NAME] [--scheme NAME] [--json] [--deny-warnings]\n            [--corrupt CLASS] MODEL...\n\nsocs: kirin990 (default), sd778g, sd870\nschemes: mnn, pipeit, band, noct, h2p (default)\n\nplan flags:\n  --threads N     planner worker threads; 0 or omitted = available\n                  parallelism (plans are identical for every N)\n\ntrace flags:\n  --scheme NAME   lower and trace the named scheme (default h2p)\n  --audit         validate the trace against the simulator contracts;\n                  exit nonzero on any violation\n  --corrupt       deliberately corrupt the trace before auditing (demo)\n  --events PATH   write the JSON-lines event log to PATH ('-' = stdout)\n\nlint flags:\n  --json            emit one JSON object per finding plus a summary line\n  --deny-warnings   exit nonzero on warnings, not just errors\n  --corrupt CLASS   corrupt the plan before linting (demo); CLASS is one\n                    of: drop-layer, duplicate-slot, bad-proc,\n                    inflate-makespan"
    );
    std::process::exit(2);
}

struct Args {
    soc: SocSpec,
    scheme: Scheme,
    models: Vec<ModelId>,
    audit: bool,
    corrupt: bool,
    events: Option<String>,
    json: bool,
    deny_warnings: bool,
    mutation: Option<Mutation>,
    threads: usize,
}

/// Parses the common tail of the argument list. `lint` switches
/// `--corrupt` from the trace subcommand's bare flag to the lint
/// subcommand's `--corrupt CLASS` form.
fn parse_args(rest: &[String], lint: bool) -> Args {
    let mut soc = SocSpec::kirin_990();
    let mut scheme = Scheme::Hetero2Pipe;
    let mut models = Vec::new();
    let mut audit = false;
    let mut corrupt = false;
    let mut events = None;
    let mut json = false;
    let mut deny_warnings = false;
    let mut mutation = None;
    let mut threads = 0usize;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--soc" => {
                i += 1;
                soc = rest.get(i).and_then(|s| parse_soc(s)).unwrap_or_else(|| {
                    eprintln!("unknown soc");
                    usage()
                });
            }
            "--scheme" => {
                i += 1;
                scheme = rest
                    .get(i)
                    .and_then(|s| parse_scheme(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown scheme");
                        usage()
                    });
            }
            "--threads" => {
                i += 1;
                threads = rest.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a non-negative integer");
                    usage()
                });
            }
            "--audit" => audit = true,
            "--corrupt" if lint => {
                i += 1;
                mutation = Some(rest.get(i).and_then(|s| Mutation::parse(s)).unwrap_or_else(
                    || {
                        eprintln!(
                            "--corrupt needs a class: {}",
                            Mutation::ALL.map(Mutation::name).join(", ")
                        );
                        usage()
                    },
                ));
            }
            "--corrupt" => corrupt = true,
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--events" => {
                i += 1;
                events = Some(rest.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--events needs a path (or '-')");
                    usage()
                }));
            }
            m => match parse_model(m) {
                Some(id) => models.push(id),
                None => {
                    eprintln!("unknown model: {m}");
                    usage()
                }
            },
        }
        i += 1;
    }
    if models.is_empty() {
        eprintln!("no models given");
        usage()
    }
    Args {
        soc,
        scheme,
        models,
        audit,
        corrupt,
        events,
        json,
        deny_warnings,
        mutation,
        threads,
    }
}

fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
    ids.iter().map(|m| m.graph()).collect()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "socs" => {
            for soc in SocSpec::evaluation_platforms() {
                let procs: Vec<String> = soc
                    .processors
                    .iter()
                    .map(|p| format!("{} ({:.0} GFLOPS)", p.name, p.peak_gflops))
                    .collect();
                println!("{:<16} {}", soc.name, procs.join(", "));
            }
        }
        "zoo" => {
            for id in ModelId::ALL {
                let g = id.graph();
                println!(
                    "{:<12} {:>3} layers  {:>7.1} MB  {:>6.2} GFLOPs  NPU: {}",
                    id.name(),
                    g.len(),
                    g.weight_bytes() as f64 / (1024.0 * 1024.0),
                    g.total_flops() / 1e9,
                    if g.fully_npu_supported() {
                        "yes"
                    } else {
                        "fallback"
                    }
                );
            }
        }
        "plan" => {
            let args = parse_args(&argv[1..], false);
            let config = hetero2pipe::planner::PlannerConfig {
                threads: args.threads,
                ..hetero2pipe::planner::PlannerConfig::default()
            };
            let planner = Planner::with_config(&args.soc, config).expect("planner");
            let planned = planner.plan(&graphs(&args.models)).expect("plan");
            println!(
                "plan on {} ({} planner thread{}):",
                args.soc.name,
                config.effective_threads(),
                if config.effective_threads() == 1 {
                    ""
                } else {
                    "s"
                }
            );
            print!("{}", PlanSummary::new(&planned.plan, &args.soc));
        }
        "run" => {
            let args = parse_args(&argv[1..], false);
            let report = args
                .scheme
                .run(&args.soc, &graphs(&args.models))
                .expect("run");
            println!("{} on {}:", args.scheme.name(), args.soc.name);
            print!("{}", ReportSummary::new(&report));
        }
        "gantt" => {
            let args = parse_args(&argv[1..], false);
            let planner = Planner::new(&args.soc).expect("planner");
            let planned = planner.plan(&graphs(&args.models)).expect("plan");
            let report = planned.execute(&args.soc).expect("execute");
            let names: Vec<&str> = args
                .soc
                .processors
                .iter()
                .map(|p| p.name.as_str())
                .collect();
            print!("{}", report.trace.render_gantt(&names, 100));
            println!(
                "latency {:.1} ms, throughput {:.2} inf/s",
                report.makespan_ms, report.throughput_per_sec
            );
        }
        "trace" => {
            let args = parse_args(&argv[1..], false);
            // Every scheme lowers through `Scheme::lower -> LoweredPlan`,
            // so the trace-audit gate covers the baselines too, not just
            // the Hetero²Pipe planner.
            let lowered = args
                .scheme
                .lower(&args.soc, &graphs(&args.models))
                .expect("lower");
            let tasks = lowered.simulation().tasks().to_vec();
            let (mut report, events) = lowered.execute_logged().expect("execute");

            if args.corrupt {
                corrupt_trace(&mut report.trace);
                eprintln!("trace deliberately corrupted (--corrupt)");
            }

            let names: Vec<&str> = args
                .soc
                .processors
                .iter()
                .map(|p| p.name.as_str())
                .collect();
            print!("{}", report.trace.render_gantt(&names, 100));
            for (p, name) in names.iter().enumerate() {
                let id = h2p_simulator::ProcessorId(p);
                println!(
                    "{:<8} busy {:>8.2} ms  util {:>5.1}%  spans {}",
                    name,
                    report.trace.busy_ms(id),
                    report.trace.utilization(id) * 100.0,
                    report
                        .trace
                        .spans
                        .iter()
                        .filter(|s| s.processor == id)
                        .count()
                );
            }
            println!(
                "latency {:.1} ms, throughput {:.2} inf/s, bubbles {:.1} ms, {} events",
                report.makespan_ms,
                report.throughput_per_sec,
                report.trace.idle_bubble_ms(),
                events.len()
            );

            if let Some(path) = &args.events {
                let mut lines = String::new();
                for (i, t) in tasks.iter().enumerate() {
                    lines.push_str(&format!(
                        "{{\"event\":\"task\",\"task\":{i},\"label\":\"{}\",\"processor\":{},\"solo_ms\":{}}}\n",
                        t.label,
                        t.processor.index(),
                        t.solo_ms
                    ));
                }
                for e in &events {
                    lines.push_str(&e.json_line());
                    lines.push('\n');
                }
                if path == "-" {
                    print!("{lines}");
                } else {
                    std::fs::write(path, lines).expect("write events");
                    eprintln!("event log written to {path}");
                }
            }

            if args.audit {
                let audit_report = audit::audit(&args.soc, &tasks, &report.trace);
                print!("{audit_report}");
                if !audit_report.is_clean() {
                    std::process::exit(1);
                }
            }
        }
        "lint" => {
            let args = parse_args(&argv[1..], true);
            let diags = run_lint(&args);
            if args.json {
                print!("{}", diags.to_json_lines());
            } else {
                print!("{diags}");
            }
            if diags.should_fail(args.deny_warnings) {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}

/// Builds the requested scheme's plan (or lowered task graph) without
/// executing it and runs the static verifier over the result.
///
/// Plan-producing schemes (h2p, noct, pipeit) are linted at the
/// pipeline-plan level, where `--corrupt` can inject damage before the
/// checks run. Task-graph schemes (mnn, band, dart) never build a
/// `PipelinePlan`, so they are linted at the lowered task-graph level
/// and do not support `--corrupt`.
fn run_lint(args: &Args) -> h2p_analyze::Diagnostics {
    let reqs = graphs(&args.models);
    match args.scheme {
        Scheme::Hetero2Pipe | Scheme::NoCt => {
            let planner = if args.scheme == Scheme::NoCt {
                Planner::with_config(&args.soc, hetero2pipe::planner::PlannerConfig::no_ct())
            } else {
                Planner::new(&args.soc)
            }
            .expect("planner");
            let planned = planner.plan(&reqs).expect("plan");
            match args.mutation {
                Some(m) => lint_corrupted(&args.soc, planned.plan_ir(), m),
                None => planned.lint(&args.soc),
            }
        }
        Scheme::PipeIt => {
            let plan = pipe_it::plan(&args.soc, &reqs).expect("plan");
            let refs: Vec<&ModelGraph> = reqs.iter().collect();
            let ir = hetero2pipe::lint::plan_ir(&plan, &refs);
            match args.mutation {
                Some(m) => lint_corrupted(&args.soc, ir, m),
                None => h2p_analyze::lint_plan(&args.soc, &ir),
            }
        }
        Scheme::MnnSerial | Scheme::Band | Scheme::Dart => {
            if args.mutation.is_some() {
                eprintln!(
                    "--corrupt needs a plan-producing scheme (h2p, noct or pipeit); {} \
                     lowers straight to a task graph",
                    args.scheme.name()
                );
                usage()
            }
            let lowered = args.scheme.lower(&args.soc, &reqs).expect("lower");
            lowered.lint()
        }
    }
}

/// Applies `m` to the plan IR, then lints the damaged plan.
fn lint_corrupted(
    soc: &SocSpec,
    mut ir: h2p_analyze::PlanIr,
    m: Mutation,
) -> h2p_analyze::Diagnostics {
    if !h2p_analyze::apply(&mut ir, m) {
        eprintln!("plan has no structure for --corrupt {}", m.name());
        std::process::exit(2);
    }
    eprintln!("plan deliberately corrupted (--corrupt {})", m.name());
    h2p_analyze::lint_plan(soc, &ir)
}

/// Deliberately violates the simulator contracts in a finished trace so
/// `trace --audit --corrupt` demonstrates a nonzero exit: overlaps the
/// two earliest spans on the busiest processor and makes one span beat
/// its solo time.
fn corrupt_trace(trace: &mut h2p_simulator::Trace) {
    let busiest = (0..trace.processor_count).max_by_key(|&p| {
        trace
            .spans
            .iter()
            .filter(|s| s.processor.index() == p)
            .count()
    });
    if let Some(p) = busiest {
        let mut on_proc: Vec<usize> = (0..trace.spans.len())
            .filter(|&i| trace.spans[i].processor.index() == p)
            .collect();
        on_proc.sort_by(|&a, &b| trace.spans[a].start_ms.total_cmp(&trace.spans[b].start_ms));
        if let [first, second, ..] = on_proc[..] {
            let duration = trace.spans[second].end_ms - trace.spans[second].start_ms;
            trace.spans[second].start_ms = trace.spans[first].start_ms;
            trace.spans[second].end_ms = trace.spans[second].start_ms + duration;
        }
    }
    if let Some(span) = trace.spans.first_mut() {
        span.end_ms = span.start_ms + span.solo_ms * 0.5;
    }
}
