//! `h2p` — command-line front end for the Hetero²Pipe reproduction.
//!
//! ```text
//! h2p socs                               # list SoC presets
//! h2p zoo                                # list zoo models
//! h2p plan  --soc kirin990 bert yolov4   # print a pipeline plan
//! h2p plan  --threads 4 bert yolov4      # explicit planner threads
//! h2p run   --soc sd870 --scheme band resnet50 vit squeezenet
//! h2p gantt --soc kirin990 bert mobilenetv2 resnet50
//! h2p trace --soc kirin990 --audit bert resnet50
//! h2p trace --scheme band --audit bert   # audit a baseline's trace
//! h2p trace --audit --corrupt bert       # exits nonzero (audit demo)
//! h2p trace --events - mobilenetv2       # JSON-lines event log
//! h2p trace --summary bert resnet50      # per-processor metrics table
//! h2p lint  --soc kirin990 bert yolov4   # static plan verification
//! h2p lint  --json --deny-warnings bert  # machine-readable, strict
//! h2p lint  --corrupt drop-layer bert    # exits nonzero (lint demo)
//! h2p export --trace t.json --metrics m.json bert resnet50
//! h2p trace --faults drop:NPU@5 bert resnet50   # fault-injected run
//! h2p report --soc kirin990 bert resnet50 mobilenetv2  # serving report
//! h2p report --chaos-seed 3 --json       # report on a chaos scenario
//! h2p report --from log.jsonl            # report from an event log
//! h2p chaos --seeds 8                    # seeded fault-recovery sweep
//! h2p chaos --seeds 8 --json             # machine-readable per-seed
//! h2p events log.jsonl                   # parse + replay an event log
//! h2p lint --source --deny-warnings      # workspace determinism lints
//! h2p lint --source --mutant wall-clock  # exits nonzero (lint demo)
//! h2p modelcheck --exhaustive            # schedule-space model checker
//! h2p modelcheck --inject skip-claim --expect-violation
//! ```

use std::path::Path;
use std::sync::Arc;

use h2p_analyze::{Mutation, SourceMutation};
use h2p_baselines::{pipe_it, Scheme};
use h2p_check::{CheckOptions, InjectedFault};
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::engine::request_of_label;
use h2p_simulator::eventlog::{self, json_escape};
use h2p_simulator::export::{
    add_audit_instants, add_planner_spans, chrome_trace, record_trace_metrics, ENGINE_PID,
};
use h2p_simulator::faults::parse_fault_specs;
use h2p_simulator::{audit, EngineEvent, FaultSpec, SocSpec, TaskSpec};
use h2p_telemetry::analytics::{
    ExecSpan, LatencyProfile, OccupancyProfile, SloEntry, SloSummary, UtilizationTimeline,
};
use h2p_telemetry::lifecycle::{self, LifecycleLog, LifecycleStage, QosClass, RequestId, TraceId};
use h2p_telemetry::{MetricsRegistry, Telemetry};
use hetero2pipe::executor::{record_request_lifecycle, request_slices};
use hetero2pipe::planner::{Planner, PlannerConfig};
use hetero2pipe::recovery::{chaos_faults, run_with_recovery, RecoveryOutcome, RecoveryPolicy};
use hetero2pipe::report::{PlanSummary, ReportSummary};
use hetero2pipe::workload::random_models;
use hetero2pipe::PlanError;

fn parse_soc(name: &str) -> Option<SocSpec> {
    match name
        .to_ascii_lowercase()
        .replace(['-', '_', ' '], "")
        .as_str()
    {
        "kirin990" | "kirin" => Some(SocSpec::kirin_990()),
        "sd778g" | "snapdragon778g" | "778g" => Some(SocSpec::snapdragon_778g()),
        "sd870" | "snapdragon870" | "870" => Some(SocSpec::snapdragon_870()),
        _ => None,
    }
}

fn parse_model(name: &str) -> Option<ModelId> {
    let n = name.to_ascii_lowercase().replace(['-', '_'], "");
    ModelId::ALL
        .into_iter()
        .find(|m| m.name().to_ascii_lowercase().replace(['-', '_'], "") == n)
        .or(match n.as_str() {
            "yolo" | "yolov4" => Some(ModelId::YoloV4),
            "mobilenet" | "mobilenetv2" => Some(ModelId::MobileNetV2),
            "inception" | "inceptionv4" => Some(ModelId::InceptionV4),
            "vgg" | "vgg16" => Some(ModelId::Vgg16),
            _ => None,
        })
}

fn parse_scheme(name: &str) -> Option<Scheme> {
    match name.to_ascii_lowercase().as_str() {
        "mnn" | "serial" => Some(Scheme::MnnSerial),
        "pipeit" | "pipe-it" => Some(Scheme::PipeIt),
        "band" => Some(Scheme::Band),
        "dart" => Some(Scheme::Dart),
        "noct" | "no-ct" => Some(Scheme::NoCt),
        "h2p" | "hetero2pipe" => Some(Scheme::Hetero2Pipe),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  h2p socs\n  h2p zoo\n  h2p plan  [--soc NAME] [--threads N] MODEL...\n  h2p run   [--soc NAME] [--scheme NAME] MODEL...\n  h2p gantt [--soc NAME] MODEL...\n  h2p trace [--soc NAME] [--scheme NAME] [--audit] [--summary]\n            [--corrupt [CLASS]] [--events PATH|-] [--faults SPEC] MODEL...\n  h2p report [--soc NAME] [--scheme NAME] [--json] [--slo-budget F] MODEL...\n  h2p report --chaos-seed N [--soc NAME] [--json]\n  h2p report --faults SPEC [--soc NAME] [--json] MODEL...\n  h2p report --from PATH|- [--soc NAME] [--json]\n  h2p chaos [--soc NAME] --seeds N [--json]\n  h2p serve [--soc NAME] [--qps F | --qps-sweep LO..HI] [--steps N]\n            [--seed N] [--requests N] [--window N] [--max-batch N]\n            [--chaos] [--json] [--events PATH|-]\n  h2p events PATH|-\n  h2p lint  [--soc NAME] [--scheme NAME] [--json] [--deny-warnings]\n            [--corrupt CLASS] MODEL...\n  h2p lint  --source [--deny-warnings] [--json] [--mutant CLASS] [ROOT]\n  h2p modelcheck [--exhaustive] [--seeds N] [--min-schedules N]\n            [--inject CLASS] [--expect-violation]\n  h2p export [--soc NAME] [--scheme NAME] [--trace PATH|-]\n            [--metrics PATH|-] MODEL...\n\nsocs: kirin990 (default), sd778g, sd870\nschemes: mnn, pipeit, band, noct, h2p (default)\n\nplan flags:\n  --threads N     planner worker threads; 0 or omitted = available\n                  parallelism (plans are identical for every N)\n\ntrace flags:\n  --scheme NAME   lower and trace the named scheme (default h2p)\n  --audit         validate the trace against the simulator contracts,\n                  including the event-log replay reconciliation; exit\n                  nonzero on any violation\n  --summary       print the per-processor metrics snapshot table\n                  (busy/idle/bubble/stretch ms)\n  --corrupt [CLASS] deliberately corrupt the trace before auditing\n                  (demo); CLASS is overlap (default) or stretch — an\n                  in-envelope duration corruption only the replay\n                  reconciliation catches\n  --events PATH   write the JSON-lines event log to PATH ('-' = stdout)\n  --faults SPEC   run under scripted faults with recovery (h2p scheme\n                  only); SPEC is comma-separated:\n                    drop:<PROC>@<t>                   processor dropout\n                    throttle:<PROC>@<from>..<until>x<f>  rate throttle\n                    flaky:<request>x<count>           transient failures\n                    mispredict:<scale>                cost misprediction\n\nreport flags:\n  Serving-grade observability: per-QoS-class latency quantiles\n  (p50/p95/p99), per-processor utilization and bubble timelines,\n  contention-window occupancy, and deadline/SLO burn-rate accounting.\n  Every number is cross-checked against the audit replay of the run's\n  event log — a reconciliation mismatch or a causally invalid request\n  lifecycle exits nonzero.\n  --chaos-seed N  report on chaos scenario N (same workload and faults\n                  as seed N of `h2p chaos`), through the recovery\n                  runner\n  --faults SPEC   report on a scripted-fault recovery run (spec syntax\n                  as under `h2p trace --faults`)\n  --from PATH     report from a saved `--events` JSON-lines log instead\n                  of a live run ('-' = stdin)\n  --slo-budget F  allowed deadline-miss fraction per class (default\n                  0.01, i.e. a 99% on-deadline objective)\n  --json          one `h2p-report/v1` JSON object instead of the tables\n\nchaos flags:\n  --seeds N       run N seeded random fault scenarios through the\n                  recovery runner; every scenario must end recovered\n                  with audit-clean rounds or in a typed degraded\n                  outcome — exit nonzero otherwise\n  --json          one JSON object per seed plus a summary object\n\nserve flags:\n  Overload-robust virtual-time serving loop: seeded open-loop arrivals\n  flow through admission control (per-class token buckets + queue depth\n  limits), deadline-aware load shedding, lightweight-model batching,\n  incremental window planning, and bounded retry. Every request ends in\n  exactly one typed outcome; any invariant violation exits nonzero.\n  --qps F         offered load for a single point (default 50)\n  --qps-sweep LO..HI  sweep offered load from LO to HI qps\n  --steps N       sweep points, linearly spaced (default 6)\n  --seed N        load-generator / chaos seed (default 42); a fixed\n                  seed makes the whole run bit-identical\n  --requests N    requests per sweep point (default 64)\n  --window N      dispatch window / batch drain quantum (default 4)\n  --max-batch N   batching cap for adjacent identical lightweight\n                  models (default 8)\n  --chaos         inject seeded faults; execution runs through the\n                  recovery machinery and failures degrade, typed\n  --events PATH   write the last point's lifecycle event log as JSON\n                  lines ('-' = stdout), ingestible by `h2p report\n                  --from` and `h2p events`\n  --json          one `h2p-serve/v1` JSON object per point plus a\n                  summary object\n\nlint flags:\n  --json            emit one JSON object per finding plus a summary line\n  --deny-warnings   exit nonzero on warnings, not just errors\n  --corrupt CLASS   corrupt the plan before linting (demo); CLASS is one\n                    of: drop-layer, duplicate-slot, bad-proc,\n                    inflate-makespan\n  --source          lint workspace sources for determinism hazards\n                    (H2P010-H2P013) instead of linting a plan; ROOT\n                    defaults to '.'\n  --mutant CLASS    lint a seeded hazard snippet instead of the\n                    workspace (demo; must exit nonzero); CLASS is one\n                    of: hash-iteration, wall-clock, unordered-reduction,\n                    unseeded-rng\n\nmodelcheck flags:\n  --exhaustive      full DFS enumeration of the standard model suite\n                    (cursor partition/error-rule, tables cache, DP\n                    scratch pool, planner bit-identity, intra-request\n                    fan-out, recovery rounds)\n  --seeds N         PCT schedules for the randomized models (default 24)\n  --min-schedules N exit nonzero unless at least N distinct schedules\n                    were explored in total\n  --inject CLASS    seed a claim bug into the cursor path; CLASS is\n                    skip-claim (dropped claim) or split-claim (torn\n                    claim)\n  --expect-violation invert the exit code: succeed only if the injected\n                    bug was caught (self-test of the checker)\n\nexport flags:\n  --trace PATH    write the run as Chrome Trace Event JSON, loadable in\n                  chrome://tracing or ui.perfetto.dev ('-' = stdout)\n  --metrics PATH  write the metrics snapshot JSON ('-' = stdout)"
    );
    std::process::exit(2);
}

/// Which trace corruption `h2p trace --corrupt [CLASS]` injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceCorruption {
    /// Overlap two spans and beat a solo time — the plain envelope
    /// audit catches this.
    Overlap,
    /// Stretch the last span towards (but within) the conservative
    /// duration bound — only the replay reconciliation catches this.
    Stretch,
}

struct Args {
    soc: SocSpec,
    scheme: Scheme,
    models: Vec<ModelId>,
    audit: bool,
    corrupt: Option<TraceCorruption>,
    events: Option<String>,
    json: bool,
    deny_warnings: bool,
    mutation: Option<Mutation>,
    threads: usize,
    summary: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    faults: Option<String>,
}

/// Parses the common tail of the argument list. `lint` switches
/// `--corrupt` from the trace subcommand's bare flag to the lint
/// subcommand's `--corrupt CLASS` form.
fn parse_args(rest: &[String], lint: bool) -> Args {
    let mut soc = SocSpec::kirin_990();
    let mut scheme = Scheme::Hetero2Pipe;
    let mut models = Vec::new();
    let mut audit = false;
    let mut corrupt = None;
    let mut events = None;
    let mut json = false;
    let mut deny_warnings = false;
    let mut mutation = None;
    let mut threads = 0usize;
    let mut summary = false;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut faults = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--soc" => {
                i += 1;
                soc = rest.get(i).and_then(|s| parse_soc(s)).unwrap_or_else(|| {
                    eprintln!("unknown soc");
                    usage()
                });
            }
            "--scheme" => {
                i += 1;
                scheme = rest
                    .get(i)
                    .and_then(|s| parse_scheme(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown scheme");
                        usage()
                    });
            }
            "--threads" => {
                i += 1;
                threads = rest.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a non-negative integer");
                    usage()
                });
            }
            "--audit" => audit = true,
            "--corrupt" if lint => {
                i += 1;
                mutation = Some(rest.get(i).and_then(|s| Mutation::parse(s)).unwrap_or_else(
                    || {
                        eprintln!(
                            "--corrupt needs a class: {}",
                            Mutation::ALL.map(Mutation::name).join(", ")
                        );
                        usage()
                    },
                ));
            }
            // The class operand is optional (legacy `--corrupt MODEL...`
            // keeps meaning overlap), so peek before consuming it.
            "--corrupt" => {
                corrupt = Some(match rest.get(i + 1).map(String::as_str) {
                    Some("overlap") => {
                        i += 1;
                        TraceCorruption::Overlap
                    }
                    Some("stretch") => {
                        i += 1;
                        TraceCorruption::Stretch
                    }
                    _ => TraceCorruption::Overlap,
                });
            }
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--summary" => summary = true,
            "--events" => {
                i += 1;
                events = Some(rest.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--events needs a path (or '-')");
                    usage()
                }));
            }
            "--trace" => {
                i += 1;
                trace_out = Some(rest.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--trace needs a path (or '-')");
                    usage()
                }));
            }
            "--metrics" => {
                i += 1;
                metrics_out = Some(rest.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--metrics needs a path (or '-')");
                    usage()
                }));
            }
            "--faults" => {
                i += 1;
                faults = Some(rest.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--faults needs a comma-separated fault spec");
                    usage()
                }));
            }
            m => match parse_model(m) {
                Some(id) => models.push(id),
                None => {
                    eprintln!("unknown model: {m}");
                    usage()
                }
            },
        }
        i += 1;
    }
    if models.is_empty() {
        eprintln!("no models given");
        usage()
    }
    Args {
        soc,
        scheme,
        models,
        audit,
        corrupt,
        events,
        json,
        deny_warnings,
        mutation,
        threads,
        summary,
        trace_out,
        metrics_out,
        faults,
    }
}

/// Writes `content` to `path`, with `-` meaning stdout.
fn write_out(path: &str, content: &str, what: &str) {
    if path == "-" {
        println!("{content}");
    } else {
        std::fs::write(path, content).expect("write output file");
        eprintln!("{what} written to {path}");
    }
}

fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
    ids.iter().map(|m| m.graph()).collect()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "socs" => {
            for soc in SocSpec::evaluation_platforms() {
                let procs: Vec<String> = soc
                    .processors
                    .iter()
                    .map(|p| format!("{} ({:.0} GFLOPS)", p.name, p.peak_gflops))
                    .collect();
                println!("{:<16} {}", soc.name, procs.join(", "));
            }
        }
        "zoo" => {
            for id in ModelId::ALL {
                let g = id.graph();
                println!(
                    "{:<12} {:>3} layers  {:>7.1} MB  {:>6.2} GFLOPs  NPU: {}",
                    id.name(),
                    g.len(),
                    g.weight_bytes() as f64 / (1024.0 * 1024.0),
                    g.total_flops() / 1e9,
                    if g.fully_npu_supported() {
                        "yes"
                    } else {
                        "fallback"
                    }
                );
            }
        }
        "plan" => {
            let args = parse_args(&argv[1..], false);
            let config = hetero2pipe::planner::PlannerConfig {
                threads: args.threads,
                ..hetero2pipe::planner::PlannerConfig::default()
            };
            let planner = Planner::with_config(&args.soc, config).expect("planner");
            let planned = planner.plan(&graphs(&args.models)).expect("plan");
            println!(
                "plan on {} ({} planner thread{}):",
                args.soc.name,
                config.effective_threads(),
                if config.effective_threads() == 1 {
                    ""
                } else {
                    "s"
                }
            );
            print!("{}", PlanSummary::new(&planned.plan, &args.soc));
        }
        "run" => {
            let args = parse_args(&argv[1..], false);
            let report = args
                .scheme
                .run(&args.soc, &graphs(&args.models))
                .expect("run");
            println!("{} on {}:", args.scheme.name(), args.soc.name);
            print!("{}", ReportSummary::new(&report));
        }
        "gantt" => {
            let args = parse_args(&argv[1..], false);
            let planner = Planner::new(&args.soc).expect("planner");
            let planned = planner.plan(&graphs(&args.models)).expect("plan");
            let report = planned.execute(&args.soc).expect("execute");
            let names: Vec<&str> = args
                .soc
                .processors
                .iter()
                .map(|p| p.name.as_str())
                .collect();
            print!("{}", report.trace.render_gantt(&names, 100));
            println!(
                "latency {:.1} ms, throughput {:.2} inf/s",
                report.makespan_ms, report.throughput_per_sec
            );
        }
        "trace" => {
            let args = parse_args(&argv[1..], false);
            if let Some(spec) = args.faults.clone() {
                run_trace_faulted(&args, &spec);
                return;
            }
            // Every scheme lowers through `Scheme::lower -> LoweredPlan`,
            // so the trace-audit gate covers the baselines too, not just
            // the Hetero²Pipe planner.
            let lowered = args
                .scheme
                .lower(&args.soc, &graphs(&args.models))
                .expect("lower");
            let tasks = lowered.simulation().tasks().to_vec();
            let (mut report, events) = lowered.execute_logged().expect("execute");

            match args.corrupt {
                Some(TraceCorruption::Overlap) => {
                    corrupt_trace(&mut report.trace);
                    eprintln!("trace deliberately corrupted (--corrupt overlap)");
                }
                Some(TraceCorruption::Stretch) => {
                    corrupt_stretch(&mut report.trace, &args.soc, &tasks);
                    eprintln!("trace deliberately corrupted (--corrupt stretch)");
                }
                None => {}
            }

            let names: Vec<&str> = args
                .soc
                .processors
                .iter()
                .map(|p| p.name.as_str())
                .collect();
            print!("{}", report.trace.render_gantt(&names, 100));
            for (p, name) in names.iter().enumerate() {
                let id = h2p_simulator::ProcessorId(p);
                println!(
                    "{:<8} busy {:>8.2} ms  util {:>5.1}%  spans {}",
                    name,
                    report.trace.busy_ms(id),
                    report.trace.utilization(id) * 100.0,
                    report
                        .trace
                        .spans
                        .iter()
                        .filter(|s| s.processor == id)
                        .count()
                );
            }
            println!(
                "latency {:.1} ms, throughput {:.2} inf/s, bubbles {:.1} ms, {} events",
                report.makespan_ms,
                report.throughput_per_sec,
                report.trace.idle_bubble_ms(),
                events.len()
            );

            if args.summary {
                let metrics = MetricsRegistry::new();
                record_trace_metrics(&args.soc, &report.trace, &metrics);
                print!("{}", metrics.snapshot().render_table());
            }

            if let Some(path) = &args.events {
                let mut lines = String::new();
                for (i, t) in tasks.iter().enumerate() {
                    lines.push_str(&format!(
                        "{{\"event\":\"task\",\"task\":{i},\"label\":\"{}\",\"processor\":{},\"solo_ms\":{}}}\n",
                        json_escape(&t.label),
                        t.processor.index(),
                        t.solo_ms
                    ));
                }
                for e in &events {
                    lines.push_str(&e.json_line());
                    lines.push('\n');
                }
                // The causal request lifecycle for the same run, so a
                // saved log carries enough history for `h2p report
                // --from` to rebuild latency and SLO accounting.
                let lifecycle_log = LifecycleLog::new();
                let trace_id = TraceId::of_names(args.models.iter().map(|m| m.name()));
                for r in 0..args.models.len() {
                    lifecycle_log.record(trace_id, RequestId(r), 0.0, LifecycleStage::Admit);
                    lifecycle_log.record(trace_id, RequestId(r), 0.0, LifecycleStage::Plan);
                }
                record_request_lifecycle(&lifecycle_log, trace_id, &report, 0.0);
                for line in lifecycle_log.json_lines() {
                    lines.push_str(&line);
                    lines.push('\n');
                }
                if path == "-" {
                    print!("{lines}");
                } else {
                    std::fs::write(path, lines).expect("write events");
                    eprintln!("event log written to {path}");
                }
            }

            if args.audit {
                // The reconciled audit: envelope checks plus the replay
                // of the logged piecewise interference rates, which also
                // catches in-envelope corruption (--corrupt stretch).
                let audit_report =
                    audit::audit_with_events(&args.soc, &tasks, &events, &report.trace);
                print!("{audit_report}");
                if !audit_report.is_clean() {
                    std::process::exit(1);
                }
            }
        }
        "export" => {
            let args = parse_args(&argv[1..], false);
            if args.trace_out.is_none() && args.metrics_out.is_none() {
                eprintln!("export needs --trace PATH and/or --metrics PATH");
                usage()
            }
            let reqs = graphs(&args.models);
            let telemetry = Arc::new(Telemetry::new());
            // Plan-producing schemes run through a planner that shares
            // this telemetry sink, so the export carries planner phase
            // spans and planning metrics; task-graph schemes lower
            // directly and export engine-side telemetry only.
            let (lowered, mitigation) = match args.scheme {
                Scheme::Hetero2Pipe | Scheme::NoCt => {
                    let config = if args.scheme == Scheme::NoCt {
                        PlannerConfig::no_ct()
                    } else {
                        PlannerConfig::default()
                    };
                    let mut planner = Planner::with_config(&args.soc, config).expect("planner");
                    planner.set_telemetry(Arc::clone(&telemetry));
                    let planned = planner.plan(&reqs).expect("plan");
                    let mit = planned.mitigation.clone();
                    (planned.lower(&args.soc).expect("lower"), mit)
                }
                _ => (args.scheme.lower(&args.soc, &reqs).expect("lower"), None),
            };
            let tasks = lowered.simulation().tasks().to_vec();
            let (report, events) = lowered.execute_logged().expect("execute");

            let audit_report = audit::audit_with_events(&args.soc, &tasks, &events, &report.trace);
            telemetry
                .metrics
                .add("audit.checks", audit_report.checks as u64);
            telemetry
                .metrics
                .add("audit.violations", audit_report.violations.len() as u64);

            let mut doc = chrome_trace(&args.soc, &tasks, &events);
            add_planner_spans(&mut doc, &telemetry.spans.records());
            // One async slice per request: first dispatch to completion.
            let slices = request_slices(&report.trace);
            for (r, slice) in slices.iter().enumerate() {
                let Some((start, end)) = slice else { continue };
                let name = args.models.get(r).map_or_else(
                    || format!("request:{r}"),
                    |m| format!("request:{r}:{}", m.name()),
                );
                doc.async_slice(
                    ENGINE_PID,
                    0,
                    r as u64,
                    name,
                    "request",
                    start * 1000.0,
                    end * 1000.0,
                );
            }
            // Instant markers for the mitigation pass's relocations,
            // anchored where the moved request actually started.
            if let Some(m) = &mitigation {
                for (pos, &orig) in m.order.iter().enumerate() {
                    if pos == orig {
                        continue;
                    }
                    let ts_us = slices
                        .get(orig)
                        .copied()
                        .flatten()
                        .map_or(0.0, |(s, _)| s * 1000.0);
                    doc.instant(
                        ENGINE_PID,
                        0,
                        format!("relocated:{orig}->{pos}"),
                        "relocation",
                        ts_us,
                        'g',
                        Vec::new(),
                    );
                }
            }
            add_audit_instants(&mut doc, &audit_report, &report.trace);
            record_trace_metrics(&args.soc, &report.trace, &telemetry.metrics);

            if let Err(err) = doc.validate() {
                eprintln!("internal error: exported trace fails its schema check: {err}");
                std::process::exit(1);
            }
            if let Some(path) = &args.trace_out {
                write_out(path, &doc.to_json(), "chrome trace");
            }
            if let Some(path) = &args.metrics_out {
                write_out(
                    path,
                    &telemetry.metrics.snapshot().to_json(),
                    "metrics snapshot",
                );
            }
            if !audit_report.is_clean() {
                print!("{audit_report}");
                std::process::exit(1);
            }
        }
        "report" => {
            run_report(&argv[1..]);
        }
        "chaos" => {
            run_chaos(&argv[1..]);
        }
        "events" => {
            run_events(&argv[1..]);
        }
        "serve" => {
            run_serve(&argv[1..]);
        }
        "lint" => {
            // `--source` switches to the workspace determinism lints,
            // which take no models — intercept before the common parser
            // (it requires at least one model).
            if argv[1..].iter().any(|a| a == "--source") {
                run_source_lint(&argv[1..]);
            }
            let args = parse_args(&argv[1..], true);
            let diags = run_lint(&args);
            if args.json {
                print!("{}", diags.to_json_lines());
            } else {
                print!("{diags}");
            }
            if diags.should_fail(args.deny_warnings) {
                std::process::exit(1);
            }
        }
        "modelcheck" => {
            run_modelcheck(&argv[1..]);
        }
        _ => usage(),
    }
}

/// Human-readable description of one scripted fault, with processor
/// names resolved against the target SoC.
fn fault_desc(soc: &SocSpec, f: &FaultSpec) -> String {
    let proc_name = |p: h2p_simulator::ProcessorId| {
        soc.processors
            .get(p.index())
            .map_or_else(|| format!("processor {}", p.index()), |s| s.name.clone())
    };
    match f {
        FaultSpec::ProcessorDropout { processor, at_ms } => {
            format!("drop {} at {at_ms:.1} ms", proc_name(*processor))
        }
        FaultSpec::ThermalThrottle {
            processor,
            from_ms,
            until_ms,
            factor,
        } => format!(
            "throttle {} to {factor:.2}x over {from_ms:.1}..{until_ms:.1} ms",
            proc_name(*processor)
        ),
        FaultSpec::TransientFailure { request, failures } => {
            format!("fail request {request} transiently {failures} time(s)")
        }
        FaultSpec::CostMisprediction { scale } => {
            format!("scale every real task duration by {scale:.2}x")
        }
    }
}

/// Returns a copy of `e` with its timestamp shifted by `offset_ms`,
/// used to splice per-round (time-zero-based) recovery logs onto the
/// global timeline.
fn shift_event(e: &EngineEvent, offset_ms: f64) -> EngineEvent {
    let mut e = e.clone();
    match &mut e {
        EngineEvent::Ready { time_ms, .. }
        | EngineEvent::Start { time_ms, .. }
        | EngineEvent::Rate { time_ms, .. }
        | EngineEvent::Finish { time_ms, .. }
        | EngineEvent::ProcessorDown { time_ms, .. }
        | EngineEvent::Throttle { time_ms, .. }
        | EngineEvent::TaskFailed { time_ms, .. } => *time_ms += offset_ms,
    }
    e
}

/// `h2p trace --faults SPEC`: run the request set through the recovery
/// runner under scripted faults, print the per-round recovery story,
/// and exit nonzero only if any round's faulted audit found a contract
/// violation (a typed degraded outcome is a valid, reported terminal
/// state).
fn run_trace_faulted(args: &Args, spec: &str) {
    if args.scheme != Scheme::Hetero2Pipe {
        eprintln!(
            "--faults recovers through the h2p planner; --scheme {} is not supported",
            args.scheme.name()
        );
        usage()
    }
    let faults = match parse_fault_specs(spec, &args.soc) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("bad --faults spec: {err}");
            usage()
        }
    };
    println!(
        "injecting {} scripted fault(s) on {}:",
        faults.len(),
        args.soc.name
    );
    for f in &faults {
        println!("  - {}", fault_desc(&args.soc, f));
    }
    let planner = Planner::new(&args.soc).expect("planner");
    let report = run_with_recovery(
        &planner,
        &graphs(&args.models),
        &faults,
        &RecoveryPolicy::default(),
    )
    .expect("recovery");
    for (i, round) in report.rounds.iter().enumerate() {
        println!(
            "round {i}: starts at {:.2} ms, {} events, {} request(s) completed, \
             {} fault(s), audit {}",
            round.offset_ms,
            round.events.len(),
            round.completed,
            round.faults,
            if round.audit_clean { "clean" } else { "DIRTY" }
        );
    }
    let completed = report.completed.iter().filter(|&&c| c).count();
    println!(
        "{} replan(s), {} retry(ies), {} fault(s), {:.2} ms elapsed, {}/{} requests completed",
        report.replans,
        report.retries,
        report.faults,
        report.elapsed_ms,
        completed,
        report.completed.len()
    );
    match &report.outcome {
        RecoveryOutcome::Recovered => println!("outcome: recovered"),
        RecoveryOutcome::Degraded(e) => println!("outcome: degraded — {e}"),
    }
    if let Some(path) = &args.events {
        // Concatenate the per-round logs on the global timeline. Task
        // ids restart per round, so the log documents the recovery
        // story rather than a single replayable run.
        let mut lines = String::new();
        for round in &report.rounds {
            for e in &round.events {
                lines.push_str(&shift_event(e, round.offset_ms).json_line());
                lines.push('\n');
            }
        }
        // The recovery runner records the causal request lifecycle
        // (admit → plan → recover → execute → complete/degrade) into the
        // planner's telemetry; append it so the log tells the whole
        // per-request story, not just the engine's task view.
        for line in planner.telemetry().lifecycle.json_lines() {
            lines.push_str(&line);
            lines.push('\n');
        }
        if path == "-" {
            print!("{lines}");
        } else {
            std::fs::write(path, lines).expect("write events");
            eprintln!("event log written to {path}");
        }
    }
    if !report.all_rounds_audit_clean() {
        eprintln!("audit violation in at least one recovery round");
        std::process::exit(1);
    }
}

/// Checks one chaos scenario's report against the sweep's invariants;
/// returns a violation description, or `None` if the scenario is
/// acceptable (recovered audit-clean, or degraded with a typed reason).
fn chaos_violation(
    report: &hetero2pipe::recovery::RecoveryReport,
    policy: &RecoveryPolicy,
    n_req: usize,
) -> Option<String> {
    if !report.all_rounds_audit_clean() {
        return Some("a recovery round failed its faulted audit".to_owned());
    }
    if let RecoveryOutcome::Degraded(e) = &report.outcome {
        let typed = matches!(
            e,
            PlanError::RetriesExhausted { .. }
                | PlanError::DeadlineExceeded { .. }
                | PlanError::NoSurvivingProcessors
        );
        if !typed {
            return Some(format!("untyped degraded outcome: {e}"));
        }
    }
    if report.retries > policy.max_retries * n_req {
        return Some(format!(
            "retry budget breached: {} retries granted for {} request(s)",
            report.retries, n_req
        ));
    }
    // No task may ever start on a processor that dropped out — within a
    // round or in any later round.
    let mut down_before: Vec<bool> = Vec::new();
    for round in &report.rounds {
        let mut down = down_before.clone();
        for e in &round.events {
            match e {
                EngineEvent::ProcessorDown { processor, .. } => {
                    let p = processor.index();
                    if down.len() <= p {
                        down.resize(p + 1, false);
                    }
                    down[p] = true;
                }
                EngineEvent::Start {
                    processor, task, ..
                } if down.get(processor.index()).copied().unwrap_or(false) => {
                    return Some(format!(
                        "task {task} started on down processor {}",
                        processor.index()
                    ));
                }
                _ => {}
            }
        }
        down_before = down;
    }
    None
}

/// `h2p chaos --seeds N`: run N seeded random fault scenarios through
/// the recovery runner and assert every one ends recovered audit-clean
/// or in a typed degraded outcome — never a panic, an audit violation,
/// an unbounded retry storm, or a task on a down processor.
fn run_chaos(rest: &[String]) {
    let mut soc = SocSpec::kirin_990();
    let mut seeds: Option<u64> = None;
    let mut json = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--soc" => {
                i += 1;
                soc = rest.get(i).and_then(|s| parse_soc(s)).unwrap_or_else(|| {
                    eprintln!("unknown soc");
                    usage()
                });
            }
            "--seeds" => {
                i += 1;
                seeds = Some(
                    rest.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| {
                            eprintln!("--seeds needs a positive integer");
                            usage()
                        }),
                );
            }
            "--json" => json = true,
            other => {
                eprintln!("unknown chaos flag: {other}");
                usage()
            }
        }
        i += 1;
    }
    let Some(seeds) = seeds else {
        eprintln!("chaos needs --seeds N");
        usage()
    };
    let planner = Planner::new(&soc).expect("planner");
    let policy = RecoveryPolicy::default();
    let mut failures = 0usize;
    for seed in 0..seeds {
        let len = 2 + (seed % 3) as usize;
        let models = random_models(seed.wrapping_mul(0x9E37).wrapping_add(17), len);
        let reqs = graphs(&models);
        let faults = chaos_faults(&soc, reqs.len(), seed);
        let verdict = match run_with_recovery(&planner, &reqs, &faults, &policy) {
            Err(e) => Some(format!("hard planning error: {e}")),
            Ok(report) => {
                let violation = chaos_violation(&report, &policy, reqs.len());
                if violation.is_none() {
                    let outcome = match &report.outcome {
                        RecoveryOutcome::Recovered => "recovered".to_owned(),
                        RecoveryOutcome::Degraded(e) => format!("degraded ({e})"),
                    };
                    if json {
                        println!(
                            "{{\"seed\":{seed},\"ok\":true,\"requests\":{},\
                             \"faults\":{},\"rounds\":{},\"replans\":{},\
                             \"retries\":{},\"outcome\":\"{}\"}}",
                            reqs.len(),
                            faults.len(),
                            report.rounds.len(),
                            report.replans,
                            report.retries,
                            json_escape(&outcome),
                        );
                    } else {
                        println!(
                            "seed {seed:>3}: {} request(s), {} fault(s), {} round(s), \
                             {} replan(s), {} retry(ies) — {outcome}",
                            reqs.len(),
                            faults.len(),
                            report.rounds.len(),
                            report.replans,
                            report.retries,
                        );
                    }
                }
                violation
            }
        };
        if let Some(why) = verdict {
            if json {
                println!(
                    "{{\"seed\":{seed},\"ok\":false,\"why\":\"{}\"}}",
                    json_escape(&why)
                );
            } else {
                println!("seed {seed:>3}: FAIL — {why}");
            }
            failures += 1;
        }
    }
    if json {
        println!(
            "{{\"summary\":true,\"soc\":\"{}\",\"seeds\":{seeds},\"failures\":{failures}}}",
            json_escape(&soc.name)
        );
    } else {
        println!(
            "chaos sweep on {}: {}/{} scenario(s) ok",
            soc.name,
            seeds - failures as u64,
            seeds
        );
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Tolerance for reconciling replayed completions against the trace's
/// and lifecycle's completion times: both derive from the same engine
/// floats, so anything beyond rounding noise is a real discrepancy.
const RECONCILE_EPS: f64 = 1e-6;

/// QoS class a request serves, by model compute size. Delegates to the
/// serving front-end's classifier so `h2p serve` and `h2p report`
/// classify a model identically.
fn qos_class(flops: f64) -> QosClass {
    h2p_serve::qos_class(flops)
}

/// Deadline slack per class, as a multiple of the request's summed solo
/// time (its zero-contention service time). Shared with the serving
/// front-end's admission policy.
fn slo_multiplier(class: QosClass) -> f64 {
    h2p_serve::slo_multiplier(class)
}

/// Per-request deadlines from a lowered task graph: each request's solo
/// time sum scaled by its class multiplier. Requests that lowered to
/// nothing get no deadline.
fn deadlines_from_tasks(tasks: &[TaskSpec], classes: &[QosClass]) -> Vec<Option<f64>> {
    let mut solo = vec![0.0f64; classes.len()];
    for t in tasks {
        if let Some(r) = request_of_label(&t.label) {
            if r < solo.len() {
                solo[r] += t.solo_ms;
            }
        }
    }
    classes
        .iter()
        .zip(&solo)
        .map(|(&c, &s)| (s > 0.0).then(|| slo_multiplier(c) * s))
        .collect()
}

/// Everything `h2p report` renders, assembled per source mode (live
/// run, recovery run, or saved event log).
struct ReportData {
    /// One-line description of where the numbers came from.
    source: String,
    processor_names: Vec<String>,
    /// Replayed execution spans (global timeline).
    spans: Vec<ExecSpan>,
    /// Per-request model names.
    names: Vec<String>,
    classes: Vec<QosClass>,
    /// Completion time per request; `None` = never completed.
    latencies: Vec<Option<f64>>,
    deadlines: Vec<Option<f64>>,
    /// Audit-replay totals: tasks reconstructed / tasks described, and
    /// the last replayed finish instant.
    replay_done: usize,
    replay_total: usize,
    replay_last_ms: f64,
    lifecycle_events: usize,
    lifecycle_violations: Vec<String>,
    /// Reconciliation failures between the replay, the trace, and the
    /// lifecycle stream (empty = everything reconciles).
    mismatches: Vec<String>,
    /// Non-fatal caveats (e.g. a log without task headers).
    notes: Vec<String>,
}

/// Folds a span's end into the per-request completion envelope.
fn fold_request_ends(ends: &mut [Option<f64>], spans: &[ExecSpan]) {
    for s in spans {
        if let Some(r) = s.request {
            if let Some(slot) = ends.get_mut(r) {
                *slot = Some(slot.map_or(s.end_ms, |e| e.max(s.end_ms)));
            }
        }
    }
}

/// Report source: one live batch run (any scheme), reconciled three
/// ways — trace completions, audit-replayed spans, and the lifecycle
/// stream must all agree.
fn report_from_live(soc: &SocSpec, scheme: Scheme, models: &[ModelId]) -> ReportData {
    let reqs = graphs(models);
    let lowered = scheme.lower(soc, &reqs).expect("lower");
    let tasks = lowered.simulation().tasks().to_vec();
    let (report, events) = lowered.execute_logged().expect("execute");
    let replayed = match audit::replay(tasks.len(), &events) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("report: event-log replay failed: {e}");
            std::process::exit(1);
        }
    };
    let mut spans = Vec::new();
    let mut replay_done = 0usize;
    let mut replay_last_ms = 0.0f64;
    for (t, rs) in replayed.iter().enumerate() {
        let Some(rs) = rs else { continue };
        replay_done += 1;
        replay_last_ms = replay_last_ms.max(rs.end_ms);
        spans.push(ExecSpan {
            request: request_of_label(&tasks[t].label),
            processor: tasks[t].processor.index(),
            start_ms: rs.start_ms,
            end_ms: rs.end_ms,
        });
    }
    let n = reqs.len();
    let mut latencies: Vec<Option<f64>> = vec![None; n];
    fold_request_ends(&mut latencies, &spans);
    let mut mismatches = Vec::new();
    for (r, lat) in latencies.iter().enumerate() {
        let reported = report.request_latency_ms.get(r).copied().unwrap_or(0.0);
        match lat {
            Some(l) if (l - reported).abs() > RECONCILE_EPS => mismatches.push(format!(
                "request {r}: replayed completion {l:.6} ms != trace completion {reported:.6} ms"
            )),
            None => mismatches.push(format!(
                "request {r}: no replayed spans but trace completed at {reported:.6} ms"
            )),
            _ => {}
        }
    }

    // The same lifecycle stream the `--events` writer emits, validated
    // and reconciled against the replay.
    let lifecycle_log = LifecycleLog::new();
    let trace_id = TraceId::of_names(models.iter().map(|m| m.name()));
    for r in 0..n {
        lifecycle_log.record(trace_id, RequestId(r), 0.0, LifecycleStage::Admit);
        lifecycle_log.record(trace_id, RequestId(r), 0.0, LifecycleStage::Plan);
    }
    record_request_lifecycle(&lifecycle_log, trace_id, &report, 0.0);
    let lf = lifecycle_log.records();
    let lifecycle_violations: Vec<String> = lifecycle::validate(&lf)
        .iter()
        .map(ToString::to_string)
        .collect();
    for e in &lf {
        if let LifecycleStage::Complete { latency_ms } = e.stage {
            match latencies.get(e.request.0).copied().flatten() {
                Some(l) if (l - latency_ms).abs() <= RECONCILE_EPS => {}
                _ => mismatches.push(format!(
                    "request {}: lifecycle completion {latency_ms:.6} ms does not \
                     reconcile with the replay",
                    e.request.0
                )),
            }
        }
    }

    let classes: Vec<QosClass> = reqs.iter().map(|g| qos_class(g.total_flops())).collect();
    let deadlines = deadlines_from_tasks(&tasks, &classes);
    ReportData {
        source: format!("{} on {} ({} request(s))", scheme.name(), soc.name, n),
        processor_names: soc.processors.iter().map(|p| p.name.clone()).collect(),
        spans,
        names: models.iter().map(|m| m.name().to_owned()).collect(),
        classes,
        latencies,
        deadlines,
        replay_done,
        replay_total: tasks.len(),
        replay_last_ms,
        lifecycle_events: lf.len(),
        lifecycle_violations,
        mismatches,
        notes: Vec::new(),
    }
}

/// Report source: a recovery run under faults (scripted or chaos).
/// Every round's event log is replayed independently and spliced onto
/// the global timeline through the round offsets; the lifecycle stream
/// the recovery runner recorded is the authority for completions and
/// must reconcile with the replayed span envelopes exactly.
fn report_from_recovery(
    soc: &SocSpec,
    models: &[ModelId],
    faults: &[FaultSpec],
    source: String,
) -> ReportData {
    let reqs = graphs(models);
    let planner = Planner::new(soc).expect("planner");
    let report =
        run_with_recovery(&planner, &reqs, faults, &RecoveryPolicy::default()).expect("recovery");
    let lf = planner.telemetry().lifecycle.records();
    let lifecycle_violations: Vec<String> = lifecycle::validate(&lf)
        .iter()
        .map(ToString::to_string)
        .collect();

    let mut spans = Vec::new();
    let mut replay_done = 0usize;
    let mut replay_total = 0usize;
    let mut replay_last_ms = 0.0f64;
    let mut mismatches = Vec::new();
    for (i, round) in report.rounds.iter().enumerate() {
        let replayed = match audit::replay(round.labels.len(), &round.events) {
            Ok(r) => r,
            Err(e) => {
                mismatches.push(format!("round {i}: event-log replay failed: {e}"));
                continue;
            }
        };
        let mut proc_of = vec![0usize; round.labels.len()];
        for e in &round.events {
            if let EngineEvent::Start {
                task, processor, ..
            } = e
            {
                if let Some(slot) = proc_of.get_mut(*task) {
                    *slot = processor.index();
                }
            }
        }
        replay_total += replayed.len();
        for (t, rs) in replayed.iter().enumerate() {
            let Some(rs) = rs else { continue };
            replay_done += 1;
            let end = round.offset_ms + rs.end_ms;
            replay_last_ms = replay_last_ms.max(end);
            spans.push(ExecSpan {
                request: round.labels.get(t).and_then(|l| request_of_label(l)),
                processor: proc_of[t],
                start_ms: round.offset_ms + rs.start_ms,
                end_ms: end,
            });
        }
    }

    let n = reqs.len();
    let mut latencies: Vec<Option<f64>> = vec![None; n];
    for e in &lf {
        if let LifecycleStage::Complete { latency_ms } = e.stage {
            if let Some(slot) = latencies.get_mut(e.request.0) {
                *slot = Some(latency_ms);
            }
        }
    }
    // Reconcile the lifecycle completions against the per-round replay
    // envelopes and the runner's own completion flags.
    let mut span_ends: Vec<Option<f64>> = vec![None; n];
    fold_request_ends(&mut span_ends, &spans);
    for r in 0..n {
        match (latencies[r], span_ends[r]) {
            (Some(c), Some(e)) if (c - e).abs() > RECONCILE_EPS => mismatches.push(format!(
                "request {r}: lifecycle completion {c:.6} ms != replayed last span end {e:.6} ms"
            )),
            (Some(c), None) => mismatches.push(format!(
                "request {r}: lifecycle completion {c:.6} ms but no replayed spans"
            )),
            _ => {}
        }
        if report.completed.get(r).copied().unwrap_or(false) != latencies[r].is_some() {
            mismatches.push(format!(
                "request {r}: recovery runner and lifecycle disagree on completion"
            ));
        }
    }

    // Deadline basis: the fault-free lowering of the same workload (a
    // separate planner so its lifecycle stream stays untouched).
    let classes: Vec<QosClass> = reqs.iter().map(|g| qos_class(g.total_flops())).collect();
    let basis = Planner::new(soc)
        .expect("planner")
        .plan(&reqs)
        .expect("plan")
        .lower(soc)
        .expect("lower");
    let deadlines = deadlines_from_tasks(basis.simulation().tasks(), &classes);

    let mut notes = Vec::new();
    match &report.outcome {
        RecoveryOutcome::Recovered => {}
        RecoveryOutcome::Degraded(e) => notes.push(format!("degraded outcome: {e}")),
    }
    ReportData {
        source,
        processor_names: soc.processors.iter().map(|p| p.name.clone()).collect(),
        spans,
        names: models.iter().map(|m| m.name().to_owned()).collect(),
        classes,
        latencies,
        deadlines,
        replay_done,
        replay_total,
        replay_last_ms,
        lifecycle_events: lf.len(),
        lifecycle_violations,
        mismatches,
        notes,
    }
}

/// Report source: a saved `--events` JSON-lines log. Batch logs replay
/// fully (task headers + engine events + lifecycle). Recovery logs
/// concatenate rounds with restarting task ids, so their engine stream
/// is not replayable — the report then falls back to the lifecycle
/// completions and says so.
fn report_from_log(soc: &SocSpec, path: &str) -> ReportData {
    let text = if path == "-" {
        let mut s = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut s).expect("read stdin");
        s
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let log = match eventlog::parse_event_log(&text) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    for w in &log.warnings {
        eprintln!("warning: {w}");
    }
    let n_tasks = log.task_count();
    let mut headers: Vec<Option<&eventlog::TaskHeader>> = vec![None; n_tasks];
    for h in &log.tasks {
        if let Some(slot) = headers.get_mut(h.task) {
            *slot = Some(h);
        }
    }
    let lifecycle_violations: Vec<String> = lifecycle::validate(&log.lifecycle)
        .iter()
        .map(ToString::to_string)
        .collect();

    // Request universe: everything the labels or the lifecycle mention.
    let mut n = log
        .lifecycle
        .iter()
        .map(|e| e.request.0 + 1)
        .max()
        .unwrap_or(0);
    for h in log.tasks.iter() {
        if let Some(r) = request_of_label(&h.label) {
            n = n.max(r + 1);
        }
    }
    let mut names: Vec<String> = (0..n).map(|r| format!("request{r}")).collect();
    let mut classes: Vec<QosClass> = vec![QosClass::Standard; n];
    let mut solo_known = false;
    for h in &log.tasks {
        if let Some(r) = request_of_label(&h.label) {
            if r < n {
                solo_known = true;
                let model = h.label.split('#').next().unwrap_or("");
                names[r] = model.to_owned();
                if let Some(id) = parse_model(model) {
                    classes[r] = qos_class(id.graph().total_flops());
                }
            }
        }
    }
    let header_specs: Vec<TaskSpec> = log
        .tasks
        .iter()
        .map(|h| TaskSpec::new(h.label.clone(), h.processor, h.solo_ms))
        .collect();
    let deadlines = if solo_known {
        deadlines_from_tasks(&header_specs, &classes)
    } else {
        vec![None; n]
    };

    let mut notes = Vec::new();
    let mut mismatches = Vec::new();
    let mut spans = Vec::new();
    let mut replay_done = 0usize;
    let mut replay_last_ms = 0.0f64;
    let mut latencies: Vec<Option<f64>> = vec![None; n];
    for e in &log.lifecycle {
        if let LifecycleStage::Complete { latency_ms } = e.stage {
            if let Some(slot) = latencies.get_mut(e.request.0) {
                *slot = Some(latency_ms);
            }
        }
    }
    if log.tasks.is_empty() && log.events.is_empty() && !log.lifecycle.is_empty() {
        // Lifecycle-only log (e.g. `h2p serve --events`): there is no
        // engine stream to reconcile against, so the lifecycle
        // completions stand on their own.
        notes.push(
            "lifecycle-only log (no engine stream); completions from the lifecycle stream"
                .to_owned(),
        );
    } else {
        match audit::replay(n_tasks, &log.events) {
            Ok(replayed) => {
                let mut proc_of: Vec<usize> = headers
                    .iter()
                    .map(|h| h.map_or(0, |h| h.processor.index()))
                    .collect();
                for e in &log.events {
                    if let EngineEvent::Start {
                        task, processor, ..
                    } = e
                    {
                        if let Some(slot) = proc_of.get_mut(*task) {
                            *slot = processor.index();
                        }
                    }
                }
                for (t, rs) in replayed.iter().enumerate() {
                    let Some(rs) = rs else { continue };
                    replay_done += 1;
                    replay_last_ms = replay_last_ms.max(rs.end_ms);
                    spans.push(ExecSpan {
                        request: headers
                            .get(t)
                            .copied()
                            .flatten()
                            .and_then(|h| request_of_label(&h.label)),
                        processor: proc_of.get(t).copied().unwrap_or(0),
                        start_ms: rs.start_ms,
                        end_ms: rs.end_ms,
                    });
                }
                let mut span_ends: Vec<Option<f64>> = vec![None; n];
                fold_request_ends(&mut span_ends, &spans);
                if log.lifecycle.is_empty() {
                    // Pre-lifecycle log: the replay envelopes are all there is.
                    latencies = span_ends;
                    notes.push("log has no lifecycle stream; completions from replay".to_owned());
                } else {
                    for r in 0..n {
                        match (latencies[r], span_ends[r]) {
                            (Some(c), Some(e)) if (c - e).abs() > RECONCILE_EPS => {
                                mismatches.push(format!(
                                    "request {r}: lifecycle completion {c:.6} ms != replayed \
                                 last span end {e:.6} ms"
                                ));
                            }
                            (Some(c), None) => mismatches.push(format!(
                                "request {r}: lifecycle completion {c:.6} ms but no replayed spans"
                            )),
                            _ => {}
                        }
                    }
                }
            }
            Err(e) => {
                notes.push(format!(
                    "engine stream not replayable ({e}); utilization omitted, \
                     completions from the lifecycle stream"
                ));
            }
        }
    }

    // Without task headers there is no solo-time basis for deadlines.
    if !solo_known && n > 0 {
        notes.push("log has no task headers; no deadline basis, QoS class defaults".to_owned());
    }
    let proc_count = spans.iter().map(|s| s.processor + 1).max().unwrap_or(0);
    let processor_names: Vec<String> = (0..proc_count)
        .map(|p| {
            soc.processors
                .get(p)
                .map_or_else(|| format!("proc{p}"), |s| s.name.clone())
        })
        .collect();
    ReportData {
        source: format!("event log {path} ({n} request(s))"),
        processor_names,
        spans,
        names,
        classes,
        latencies,
        deadlines,
        replay_done,
        replay_total: n_tasks,
        replay_last_ms,
        lifecycle_events: log.lifecycle.len(),
        lifecycle_violations,
        mismatches,
        notes,
    }
}

/// `h2p report`: the serving-grade observability report — per-QoS-class
/// latency quantiles, per-processor utilization/bubble timelines,
/// occupancy, and deadline/SLO accounting, every number cross-checked
/// against the audit replay. Exits nonzero on a reconciliation mismatch
/// or a causally invalid lifecycle stream.
fn run_report(rest: &[String]) -> ! {
    let mut soc = SocSpec::kirin_990();
    let mut scheme = Scheme::Hetero2Pipe;
    let mut models: Vec<ModelId> = Vec::new();
    let mut json = false;
    let mut from: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut faults: Option<String> = None;
    let mut budget = SloSummary::DEFAULT_BUDGET;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--soc" => {
                i += 1;
                soc = rest.get(i).and_then(|s| parse_soc(s)).unwrap_or_else(|| {
                    eprintln!("unknown soc");
                    usage()
                });
            }
            "--scheme" => {
                i += 1;
                scheme = rest
                    .get(i)
                    .and_then(|s| parse_scheme(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown scheme");
                        usage()
                    });
            }
            "--json" => json = true,
            "--from" => {
                i += 1;
                from = Some(rest.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--from needs a path (or '-')");
                    usage()
                }));
            }
            "--chaos-seed" => {
                i += 1;
                chaos_seed = Some(rest.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--chaos-seed needs a non-negative integer");
                    usage()
                }));
            }
            "--faults" => {
                i += 1;
                faults = Some(rest.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--faults needs a comma-separated fault spec");
                    usage()
                }));
            }
            "--slo-budget" => {
                i += 1;
                budget = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&b: &f64| b > 0.0 && b <= 1.0)
                    .unwrap_or_else(|| {
                        eprintln!("--slo-budget needs a fraction in (0, 1]");
                        usage()
                    });
            }
            m => match parse_model(m) {
                Some(id) => models.push(id),
                None => {
                    eprintln!("unknown model: {m}");
                    usage()
                }
            },
        }
        i += 1;
    }

    let data = if let Some(path) = from {
        if !models.is_empty() || faults.is_some() || chaos_seed.is_some() {
            eprintln!("--from reports on a saved log; drop the models/faults flags");
            usage()
        }
        report_from_log(&soc, &path)
    } else if let Some(seed) = chaos_seed {
        if !models.is_empty() || faults.is_some() {
            eprintln!("--chaos-seed derives its workload from the seed; drop the models");
            usage()
        }
        // Exactly the scenario `h2p chaos` runs for this seed.
        let len = 2 + (seed % 3) as usize;
        let models = random_models(seed.wrapping_mul(0x9E37).wrapping_add(17), len);
        let fault_list = chaos_faults(&soc, models.len(), seed);
        let source = format!(
            "chaos seed {seed} on {} ({} request(s), {} fault(s))",
            soc.name,
            models.len(),
            fault_list.len()
        );
        report_from_recovery(&soc, &models, &fault_list, source)
    } else if let Some(spec) = faults {
        if models.is_empty() {
            eprintln!("no models given");
            usage()
        }
        let fault_list = match parse_fault_specs(&spec, &soc) {
            Ok(f) => f,
            Err(err) => {
                eprintln!("bad --faults spec: {err}");
                usage()
            }
        };
        let source = format!(
            "faulted h2p on {} ({} request(s), {} scripted fault(s))",
            soc.name,
            models.len(),
            fault_list.len()
        );
        report_from_recovery(&soc, &models, &fault_list, source)
    } else {
        if models.is_empty() {
            eprintln!("no models given");
            usage()
        }
        report_from_live(&soc, scheme, &models)
    };

    if json {
        println!("{}", render_report_json(&data, budget));
    } else {
        print_report_text(&data, budget);
    }
    let ok = data.mismatches.is_empty() && data.lifecycle_violations.is_empty();
    if !ok {
        for m in &data.mismatches {
            eprintln!("report: reconciliation: {m}");
        }
        for v in &data.lifecycle_violations {
            eprintln!("report: lifecycle: {v}");
        }
    }
    std::process::exit(i32::from(!ok));
}

/// Per-class completed-latency samples, in [`QosClass::ALL`] order.
fn class_samples(data: &ReportData) -> Vec<(QosClass, Vec<f64>)> {
    QosClass::ALL
        .iter()
        .map(|&class| {
            let sample: Vec<f64> = data
                .classes
                .iter()
                .zip(&data.latencies)
                .filter(|&(&c, _)| c == class)
                .filter_map(|(_, l)| *l)
                .collect();
            (class, sample)
        })
        .collect()
}

/// SLO entries for [`SloSummary::compute`], one per request.
fn slo_entries(data: &ReportData) -> Vec<SloEntry> {
    data.classes
        .iter()
        .zip(&data.latencies)
        .zip(&data.deadlines)
        .map(|((&class, &latency_ms), &deadline_ms)| SloEntry {
            class,
            latency_ms,
            deadline_ms,
        })
        .collect()
}

/// Renders the human-readable report tables.
fn print_report_text(data: &ReportData, budget: f64) {
    println!("report: {}", data.source);
    for note in &data.notes {
        println!("note: {note}");
    }

    println!("requests:");
    for r in 0..data.names.len() {
        let deadline = data.deadlines[r].map_or_else(
            || "no deadline".to_owned(),
            |d| format!("{d:>9.2} ms deadline"),
        );
        let (latency, verdict) = match data.latencies[r] {
            Some(l) => {
                let miss = data.deadlines[r].is_some_and(|d| l > d + RECONCILE_EPS);
                (format!("{l:>9.2} ms"), if miss { "MISS" } else { "ok" })
            }
            None => ("  degraded —".to_owned(), "MISS"),
        };
        println!(
            "  r{r:<3} {:<14} {:<12} {latency}  {deadline}  {verdict}",
            data.names[r],
            data.classes[r].name(),
        );
    }

    println!("latency quantiles by QoS class (ms):");
    println!(
        "  {:<12} {:>4} {:>9} {:>9} {:>9} {:>9}",
        "class", "n", "p50", "p95", "p99", "max"
    );
    for (class, sample) in class_samples(data) {
        match LatencyProfile::compute(&sample) {
            Some(p) => println!(
                "  {:<12} {:>4} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                class.name(),
                p.count,
                p.p50_ms,
                p.p95_ms,
                p.p99_ms,
                p.max_ms
            ),
            None => println!(
                "  {:<12} {:>4}         —         —         —         —",
                class.name(),
                0
            ),
        }
    }

    let slo = SloSummary::compute(&slo_entries(data), budget);
    println!("slo (budget {budget}):");
    println!(
        "  {:<12} {:>9} {:>7} {:>8} {:>8}",
        "class", "deadlines", "misses", "miss%", "burn"
    );
    for s in &slo {
        println!(
            "  {:<12} {:>9} {:>7} {:>7.1}% {:>7.2}x",
            s.class.name(),
            s.with_deadline,
            s.misses,
            s.miss_rate * 100.0,
            s.burn_rate
        );
    }
    let total_misses: usize = slo.iter().map(|s| s.misses).sum();
    let total_deadlines: usize = slo.iter().map(|s| s.with_deadline).sum();
    println!("  total: {total_misses} miss(es) across {total_deadlines} deadline(s)");

    let timeline = UtilizationTimeline::compute(&data.spans, data.processor_names.len());
    if !data.spans.is_empty() {
        println!("utilization:");
        for u in &timeline.processors {
            let bubble: f64 = timeline
                .bubbles
                .iter()
                .filter(|b| b.processor == u.processor)
                .fold(0.0, |a, b| a + b.duration_ms());
            println!(
                "  {:<8} busy {:>9.2} ms  util {:>5.1}%  spans {:>3}  bubble {:>8.2} ms",
                data.processor_names[u.processor],
                u.busy_ms,
                u.utilization * 100.0,
                u.span_count,
                bubble
            );
        }
        let top = timeline.top_bubbles(5);
        if top.is_empty() {
            println!("top bubbles: none");
        } else {
            println!("top bubbles:");
            for b in top {
                println!(
                    "  {:<8} {:>9.2} .. {:>9.2} ms  ({:>7.2} ms)",
                    data.processor_names[b.processor],
                    b.start_ms,
                    b.end_ms,
                    b.duration_ms()
                );
            }
        }
        let occ = OccupancyProfile::compute(&data.spans, data.processor_names.len());
        println!(
            "occupancy: co-execution {:.1}%, idle {:.1}%, horizon {:.2} ms, \
             total bubble {:.2} ms",
            occ.co_execution_fraction() * 100.0,
            occ.idle_fraction() * 100.0,
            occ.horizon_ms,
            timeline.total_bubble_ms()
        );
    }

    println!(
        "replay: {}/{} task(s) reconstructed, last finish {:.2} ms",
        data.replay_done, data.replay_total, data.replay_last_ms
    );
    println!(
        "lifecycle: {} event(s), {} violation(s); {}",
        data.lifecycle_events,
        data.lifecycle_violations.len(),
        if data.mismatches.is_empty() {
            "replay and lifecycle reconcile"
        } else {
            "RECONCILIATION FAILED"
        }
    );
}

/// Renders a float for JSON: finite values verbatim, everything else
/// `null`.
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Renders `Option<f64>` for JSON.
fn jopt(x: Option<f64>) -> String {
    x.map_or_else(|| "null".to_owned(), jnum)
}

/// Renders the machine-readable `h2p-report/v1` object.
fn render_report_json(data: &ReportData, budget: f64) -> String {
    let mut out = String::from("{\"schema\":\"h2p-report/v1\"");
    out.push_str(&format!(",\"source\":\"{}\"", json_escape(&data.source)));

    out.push_str(",\"requests\":[");
    for r in 0..data.names.len() {
        if r > 0 {
            out.push(',');
        }
        let miss = match (data.latencies[r], data.deadlines[r]) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some(l), Some(d)) => l > d + RECONCILE_EPS,
        };
        out.push_str(&format!(
            "{{\"request\":{r},\"model\":\"{}\",\"class\":\"{}\",\"latency_ms\":{},\
             \"deadline_ms\":{},\"miss\":{miss}}}",
            json_escape(&data.names[r]),
            data.classes[r].name(),
            jopt(data.latencies[r]),
            jopt(data.deadlines[r]),
        ));
    }
    out.push(']');

    let slo = SloSummary::compute(&slo_entries(data), budget);
    out.push_str(",\"classes\":[");
    for (i, ((class, sample), s)) in class_samples(data).iter().zip(&slo).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let p = LatencyProfile::compute(sample);
        out.push_str(&format!(
            "{{\"class\":\"{}\",\"count\":{},\"completed\":{},\"p50_ms\":{},\"p95_ms\":{},\
             \"p99_ms\":{},\"max_ms\":{},\"with_deadline\":{},\"misses\":{},\
             \"miss_rate\":{},\"burn_rate\":{}}}",
            class.name(),
            s.total,
            sample.len(),
            jopt(p.as_ref().map(|p| p.p50_ms)),
            jopt(p.as_ref().map(|p| p.p95_ms)),
            jopt(p.as_ref().map(|p| p.p99_ms)),
            jopt(p.as_ref().map(|p| p.max_ms)),
            s.with_deadline,
            s.misses,
            jnum(s.miss_rate),
            jnum(s.burn_rate),
        ));
    }
    out.push(']');

    let timeline = UtilizationTimeline::compute(&data.spans, data.processor_names.len());
    out.push_str(",\"processors\":[");
    for (i, u) in timeline.processors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"processor\":{},\"name\":\"{}\",\"busy_ms\":{},\"utilization\":{},\
             \"spans\":{}}}",
            u.processor,
            json_escape(&data.processor_names[u.processor]),
            jnum(u.busy_ms),
            jnum(u.utilization),
            u.span_count,
        ));
    }
    out.push(']');

    out.push_str(",\"top_bubbles\":[");
    for (i, b) in timeline.top_bubbles(5).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"processor\":{},\"start_ms\":{},\"end_ms\":{}}}",
            b.processor,
            jnum(b.start_ms),
            jnum(b.end_ms),
        ));
    }
    out.push(']');

    let occ = OccupancyProfile::compute(&data.spans, data.processor_names.len());
    out.push_str(&format!(
        ",\"total_bubble_ms\":{},\"co_execution_fraction\":{},\"idle_fraction\":{},\
         \"horizon_ms\":{}",
        jnum(timeline.total_bubble_ms()),
        jnum(occ.co_execution_fraction()),
        jnum(occ.idle_fraction()),
        jnum(occ.horizon_ms),
    ));

    out.push_str(&format!(
        ",\"replay\":{{\"tasks_done\":{},\"task_count\":{},\"last_finish_ms\":{}}}",
        data.replay_done,
        data.replay_total,
        jnum(data.replay_last_ms),
    ));
    out.push_str(&format!(
        ",\"lifecycle\":{{\"events\":{},\"violations\":{}}}",
        data.lifecycle_events,
        data.lifecycle_violations.len(),
    ));
    out.push_str(&format!(
        ",\"slo_budget\":{},\"reconciled\":{}}}",
        jnum(budget),
        data.mismatches.is_empty(),
    ));
    out
}

/// `h2p lint --source`: the workspace determinism lint pass
/// (H2P010–H2P013), or — with `--mutant CLASS` — a seeded hazard
/// snippet that must make the lint exit nonzero.
fn run_source_lint(rest: &[String]) -> ! {
    let mut deny_warnings = false;
    let mut json = false;
    let mut mutant: Option<SourceMutation> = None;
    let mut root: Option<String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--source" => {}
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--mutant" => {
                i += 1;
                mutant = Some(
                    rest.get(i)
                        .and_then(|s| SourceMutation::parse(s))
                        .unwrap_or_else(|| {
                            eprintln!(
                                "unknown source mutant class (want hash-iteration, \
                                 wall-clock, unordered-reduction or unseeded-rng)"
                            );
                            usage()
                        }),
                );
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown lint --source flag: {other}");
                usage()
            }
        }
        i += 1;
    }
    let diags = if let Some(m) = mutant {
        eprintln!(
            "linting seeded '{}' hazard (expecting {})",
            m.name(),
            m.expected_code().code()
        );
        h2p_analyze::lint_source(&format!("<mutant:{}>", m.name()), "core", m.snippet())
    } else {
        let root = root.unwrap_or_else(|| ".".to_owned());
        match h2p_analyze::lint_workspace(Path::new(&root)) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("source lint failed reading {root}: {e}");
                std::process::exit(2);
            }
        }
    };
    if json {
        print!("{}", diags.to_json_lines());
    } else {
        print!("{diags}");
    }
    std::process::exit(i32::from(diags.should_fail(deny_warnings)));
}

/// `h2p modelcheck`: run the schedule-space model suite (cursor
/// partition/error rule, tables cache, DP scratch pool, planner
/// bit-identity, intra-request fan-out, recovery rounds) under the
/// controlled scheduler, or — with `--inject` — seed a claim bug and
/// verify the checker catches it.
fn run_modelcheck(rest: &[String]) -> ! {
    let mut exhaustive = false;
    let mut seeds: Option<u64> = None;
    let mut min_schedules = 0usize;
    let mut inject: Option<InjectedFault> = None;
    let mut expect_violation = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--exhaustive" => exhaustive = true,
            "--expect-violation" => expect_violation = true,
            "--seeds" => {
                i += 1;
                seeds = Some(
                    rest.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| {
                            eprintln!("--seeds needs a positive integer");
                            usage()
                        }),
                );
            }
            "--min-schedules" => {
                i += 1;
                min_schedules = rest.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--min-schedules needs an integer");
                    usage()
                });
            }
            "--inject" => {
                i += 1;
                inject = Some(
                    rest.get(i)
                        .and_then(|s| InjectedFault::parse(s))
                        .unwrap_or_else(|| {
                            eprintln!("unknown fault (want skip-claim or split-claim)");
                            usage()
                        }),
                );
            }
            other => {
                eprintln!("unknown modelcheck flag: {other}");
                usage()
            }
        }
        i += 1;
    }
    let mut opts = if exhaustive {
        CheckOptions::default()
    } else {
        // Quick mode: capped DFS plus a lean PCT pass.
        CheckOptions {
            exhaustive_cap: 2_000,
            pct_seeds: 8,
            ..CheckOptions::default()
        }
    };
    if let Some(s) = seeds {
        opts.pct_seeds = s;
    }

    if let Some(fault) = inject {
        let report = h2p_check::run_injected(fault, opts);
        print_model_report(&report);
        let caught = report.violations > 0;
        if expect_violation {
            if caught {
                println!(
                    "injected '{}' bug caught after {} schedule(s) — checker is live",
                    fault.name(),
                    report.schedules
                );
                std::process::exit(0);
            }
            println!(
                "injected '{}' bug was NOT caught in {} schedule(s)",
                fault.name(),
                report.schedules
            );
            std::process::exit(1);
        }
        std::process::exit(i32::from(caught));
    }

    let reports = h2p_check::run_standard(opts);
    let mut schedules = 0usize;
    let mut steps = 0usize;
    let mut violations = 0usize;
    for r in &reports {
        print_model_report(r);
        schedules += r.schedules;
        steps += r.steps;
        violations += r.violations;
    }
    println!(
        "model check: {schedules} schedule(s), {steps} step(s), \
         {violations} violation(s) across {} model(s)",
        reports.len()
    );
    if violations > 0 {
        std::process::exit(1);
    }
    if schedules < min_schedules {
        eprintln!("model check explored {schedules} schedule(s) < required {min_schedules}");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn print_model_report(r: &h2p_check::ModelReport) {
    println!(
        "{:<36} {:>7} schedule(s) {:>9} step(s)  {}  {} violation(s)",
        r.name,
        r.schedules,
        r.steps,
        if r.complete { "complete" } else { "capped  " },
        r.violations,
    );
    for s in &r.samples {
        println!("    sample: {s}");
    }
}

/// `h2p events PATH|-`: parse a JSON-lines event log with the hardened
/// typed parser and reconcile it through the audit replay. Exits
/// nonzero on any parse error (with its line number).
fn run_events(rest: &[String]) {
    let Some(path) = rest.first() else {
        eprintln!("events needs a path (or '-')");
        usage()
    };
    let text = if path == "-" {
        let mut s = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut s).expect("read stdin");
        s
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let log = match eventlog::parse_event_log(&text) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    for w in &log.warnings {
        eprintln!("warning: {w}");
    }
    println!(
        "{} task header(s), {} event(s), {} task id(s), {} lifecycle event(s)",
        log.tasks.len(),
        log.events.len(),
        log.task_count(),
        log.lifecycle.len()
    );
    let violations = lifecycle::validate(&log.lifecycle);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("lifecycle: {v}");
        }
        eprintln!("{} lifecycle violation(s)", violations.len());
        std::process::exit(1);
    }
    match audit::replay(log.task_count(), &log.events) {
        Ok(spans) => {
            let done: Vec<_> = spans.iter().flatten().collect();
            let last = done.iter().map(|s| s.end_ms).fold(0.0f64, f64::max);
            println!(
                "replay: {} of {} task(s) completed, last finish at {last:.2} ms",
                done.len(),
                log.task_count()
            );
        }
        Err(e) => println!("replay: not reconstructible ({e})"),
    }
}

/// `h2p serve`: run the overload-robust serving front-end over a
/// seeded arrival stream, optionally sweeping offered load, and print
/// the saturation curve. Exits nonzero if any sweep point violates the
/// robustness invariants.
fn run_serve(rest: &[String]) {
    let mut soc = SocSpec::kirin_990();
    let mut lo = 50.0f64;
    let mut hi = 50.0f64;
    let mut steps = 1usize;
    let mut steps_set = false;
    let mut seed = 42u64;
    let mut requests = 64usize;
    let mut window = 4usize;
    let mut max_batch = 8u32;
    let mut chaos = false;
    let mut json = false;
    let mut events: Option<String> = None;
    let mut i = 0;
    let missing = |flag: &str| -> ! {
        eprintln!("{flag} needs a value");
        usage()
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--soc" => {
                i += 1;
                let name = rest.get(i).unwrap_or_else(|| missing("--soc"));
                soc = parse_soc(name).unwrap_or_else(|| {
                    eprintln!("unknown SoC {name}");
                    usage()
                });
            }
            "--qps" => {
                i += 1;
                let v: f64 = rest
                    .get(i)
                    .unwrap_or_else(|| missing("--qps"))
                    .parse()
                    .unwrap_or_else(|_| missing("--qps"));
                lo = v;
                hi = v;
            }
            "--qps-sweep" => {
                i += 1;
                let spec = rest.get(i).unwrap_or_else(|| missing("--qps-sweep"));
                let Some((a, b)) = spec.split_once("..") else {
                    eprintln!("--qps-sweep wants LO..HI, got {spec}");
                    usage()
                };
                lo = a.parse().unwrap_or_else(|_| missing("--qps-sweep"));
                hi = b.parse().unwrap_or_else(|_| missing("--qps-sweep"));
                if !steps_set {
                    steps = 6;
                }
            }
            "--steps" => {
                i += 1;
                steps = rest
                    .get(i)
                    .unwrap_or_else(|| missing("--steps"))
                    .parse()
                    .unwrap_or_else(|_| missing("--steps"));
                steps_set = true;
            }
            "--seed" => {
                i += 1;
                seed = rest
                    .get(i)
                    .unwrap_or_else(|| missing("--seed"))
                    .parse()
                    .unwrap_or_else(|_| missing("--seed"));
            }
            "--requests" => {
                i += 1;
                requests = rest
                    .get(i)
                    .unwrap_or_else(|| missing("--requests"))
                    .parse()
                    .unwrap_or_else(|_| missing("--requests"));
            }
            "--window" => {
                i += 1;
                window = rest
                    .get(i)
                    .unwrap_or_else(|| missing("--window"))
                    .parse()
                    .unwrap_or_else(|_| missing("--window"));
            }
            "--max-batch" => {
                i += 1;
                max_batch = rest
                    .get(i)
                    .unwrap_or_else(|| missing("--max-batch"))
                    .parse()
                    .unwrap_or_else(|_| missing("--max-batch"));
            }
            "--chaos" => chaos = true,
            "--json" => json = true,
            "--events" => {
                i += 1;
                events = Some(rest.get(i).unwrap_or_else(|| missing("--events")).clone());
            }
            other => {
                eprintln!("unknown serve flag {other}");
                usage()
            }
        }
        i += 1;
    }
    if !(lo > 0.0 && lo.is_finite() && hi >= lo && hi.is_finite()) || steps == 0 || requests == 0 {
        eprintln!("serve wants 0 < LO <= HI, steps >= 1, requests >= 1");
        usage()
    }

    let server = h2p_serve::Server::new(&soc, window).expect("planner");
    let base = h2p_serve::ServeConfig {
        qps: lo,
        requests,
        seed,
        max_batch,
        chaos,
        policy: RecoveryPolicy::default(),
        slo_budget: SloSummary::DEFAULT_BUDGET,
    };
    let points = h2p_serve::sweep(&server, &base, lo, hi, steps).expect("serve");

    let mut total_violations = 0usize;
    let mut all_violations: Vec<(f64, String)> = Vec::new();
    let mut saturation_qps: Option<f64> = None;
    for p in &points {
        let v = p.report.verify_invariants();
        total_violations += v.len();
        for s in v {
            all_violations.push((p.qps, s));
        }
        if saturation_qps.is_none() && p.report.counts.rejected() + p.report.counts.shed > 0 {
            saturation_qps = Some(p.qps);
        }
    }

    if json {
        for p in &points {
            let c = &p.report.counts;
            let (p50, p99) = p
                .report
                .latency
                .as_ref()
                .map_or(("null".to_owned(), "null".to_owned()), |l| {
                    (format!("{:.3}", l.p50_ms), format!("{:.3}", l.p99_ms))
                });
            println!(
                "{{\"v\":\"h2p-serve/v1\",\"qps\":{:.3},\"seed\":{},\"chaos\":{},\"requests\":{},\
                 \"complete\":{},\"timed_out\":{},\"degraded\":{},\
                 \"rejected\":{{\"queue_full\":{},\"deadline_infeasible\":{},\"shedding\":{}}},\
                 \"shed\":{},\"p50_ms\":{p50},\"p99_ms\":{p99},\
                 \"deadline_miss_rate\":{:.4},\"rejection_rate\":{:.4},\
                 \"served_per_sec\":{:.3},\"max_queue_depth\":{},\"queue_limits\":[{},{},{}],\
                 \"max_dispatch_retries\":{},\"dispatches\":{},\"violations\":{}}}",
                p.qps,
                p.report.seed,
                p.report.chaos,
                p.report.records.len(),
                c.complete,
                c.timed_out,
                c.degraded,
                c.rejected_queue_full,
                c.rejected_deadline_infeasible,
                c.rejected_shedding,
                c.shed,
                c.deadline_miss_rate(),
                c.rejection_rate(),
                p.report.served_per_sec,
                p.report.max_queue_depth,
                p.report.queue_limits[0],
                p.report.queue_limits[1],
                p.report.queue_limits[2],
                p.report.max_dispatch_retries,
                p.report.dispatches,
                p.report.verify_invariants().len(),
            );
        }
        let sat = saturation_qps.map_or("null".to_owned(), |q| format!("{q:.3}"));
        println!(
            "{{\"v\":\"h2p-serve/v1\",\"summary\":true,\"points\":{},\"violations\":{},\
             \"saturation_qps\":{sat}}}",
            points.len(),
            total_violations,
        );
    } else {
        let limits = points.first().map_or([0, 0, 0], |p| p.report.queue_limits);
        println!(
            "serve on {} (window {window}, seed {seed}, {requests} request(s)/point{})",
            soc.name,
            if chaos { ", chaos" } else { "" }
        );
        println!("queue limits [interactive, standard, batch]: {limits:?}");
        println!(
            "{:>9} {:>6} {:>6} {:>6} {:>6} {:>5} {:>9} {:>9} {:>6} {:>6} {:>9} {:>5}",
            "qps",
            "ok",
            "late",
            "degr",
            "rej",
            "shed",
            "p50 ms",
            "p99 ms",
            "miss%",
            "rej%",
            "served/s",
            "depth"
        );
        for p in &points {
            let c = &p.report.counts;
            let (p50, p99) = p
                .report
                .latency
                .as_ref()
                .map_or(("-".to_owned(), "-".to_owned()), |l| {
                    (format!("{:.1}", l.p50_ms), format!("{:.1}", l.p99_ms))
                });
            println!(
                "{:>9.1} {:>6} {:>6} {:>6} {:>6} {:>5} {:>9} {:>9} {:>6.1} {:>6.1} {:>9.2} {:>5}",
                p.qps,
                c.complete,
                c.timed_out,
                c.degraded,
                c.rejected(),
                c.shed,
                p50,
                p99,
                100.0 * c.deadline_miss_rate(),
                100.0 * c.rejection_rate(),
                p.report.served_per_sec,
                p.report.max_queue_depth,
            );
        }
        match saturation_qps {
            Some(q) => println!("backpressure first engaged at {q:.1} qps"),
            None => println!("backpressure never engaged over this range"),
        }
    }

    if let Some(path) = events {
        let Some(last) = points.last() else {
            unreachable!("sweep returned no points despite steps >= 1")
        };
        let mut lines = String::new();
        for line in last.report.json_event_lines() {
            lines.push_str(&line);
            lines.push('\n');
        }
        write_out(&path, lines.trim_end(), "serve event log");
    }

    if total_violations > 0 {
        for (qps, v) in &all_violations {
            eprintln!("invariant violation at {qps:.1} qps: {v}");
        }
        eprintln!("{total_violations} invariant violation(s)");
        std::process::exit(1);
    }
}

/// Builds the requested scheme's plan (or lowered task graph) without
/// executing it and runs the static verifier over the result.
///
/// Plan-producing schemes (h2p, noct, pipeit) are linted at the
/// pipeline-plan level, where `--corrupt` can inject damage before the
/// checks run. Task-graph schemes (mnn, band, dart) never build a
/// `PipelinePlan`, so they are linted at the lowered task-graph level
/// and do not support `--corrupt`.
fn run_lint(args: &Args) -> h2p_analyze::Diagnostics {
    let reqs = graphs(&args.models);
    match args.scheme {
        Scheme::Hetero2Pipe | Scheme::NoCt => {
            let planner = if args.scheme == Scheme::NoCt {
                Planner::with_config(&args.soc, hetero2pipe::planner::PlannerConfig::no_ct())
            } else {
                Planner::new(&args.soc)
            }
            .expect("planner");
            let planned = planner.plan(&reqs).expect("plan");
            match args.mutation {
                Some(m) => lint_corrupted(&args.soc, planned.plan_ir(), m),
                None => planned.lint(&args.soc),
            }
        }
        Scheme::PipeIt => {
            let plan = pipe_it::plan(&args.soc, &reqs).expect("plan");
            let refs: Vec<&ModelGraph> = reqs.iter().collect();
            let ir = hetero2pipe::lint::plan_ir(&plan, &refs);
            match args.mutation {
                Some(m) => lint_corrupted(&args.soc, ir, m),
                None => h2p_analyze::lint_plan(&args.soc, &ir),
            }
        }
        Scheme::MnnSerial | Scheme::Band | Scheme::Dart => {
            if args.mutation.is_some() {
                eprintln!(
                    "--corrupt needs a plan-producing scheme (h2p, noct or pipeit); {} \
                     lowers straight to a task graph",
                    args.scheme.name()
                );
                usage()
            }
            let lowered = args.scheme.lower(&args.soc, &reqs).expect("lower");
            lowered.lint()
        }
    }
}

/// Applies `m` to the plan IR, then lints the damaged plan.
fn lint_corrupted(
    soc: &SocSpec,
    mut ir: h2p_analyze::PlanIr,
    m: Mutation,
) -> h2p_analyze::Diagnostics {
    if !h2p_analyze::apply(&mut ir, m) {
        eprintln!("plan has no structure for --corrupt {}", m.name());
        std::process::exit(2);
    }
    eprintln!("plan deliberately corrupted (--corrupt {})", m.name());
    h2p_analyze::lint_plan(soc, &ir)
}

/// Deliberately violates the simulator contracts in a finished trace so
/// `trace --audit --corrupt` demonstrates a nonzero exit: overlaps the
/// two earliest spans on the busiest processor and makes one span beat
/// its solo time.
fn corrupt_trace(trace: &mut h2p_simulator::Trace) {
    let busiest = (0..trace.processor_count).max_by_key(|&p| {
        trace
            .spans
            .iter()
            .filter(|s| s.processor.index() == p)
            .count()
    });
    if let Some(p) = busiest {
        let mut on_proc: Vec<usize> = (0..trace.spans.len())
            .filter(|&i| trace.spans[i].processor.index() == p)
            .collect();
        on_proc.sort_by(|&a, &b| trace.spans[a].start_ms.total_cmp(&trace.spans[b].start_ms));
        if let [first, second, ..] = on_proc[..] {
            let duration = trace.spans[second].end_ms - trace.spans[second].start_ms;
            trace.spans[second].start_ms = trace.spans[first].start_ms;
            trace.spans[second].end_ms = trace.spans[second].start_ms + duration;
        }
    }
    if let Some(span) = trace.spans.first_mut() {
        span.end_ms = span.start_ms + span.solo_ms * 0.5;
    }
}

/// In-envelope duration corruption for `trace --audit --corrupt
/// stretch`: lengthens the globally-last span towards — but strictly
/// within — the audit's conservative duration upper bound. The plain
/// envelope audit waves the stretched trace through; only the
/// event-log replay reconciliation exposes it, which is exactly the
/// gap ROADMAP's "tighten the conservative bound" item describes.
fn corrupt_stretch(
    trace: &mut h2p_simulator::Trace,
    soc: &SocSpec,
    tasks: &[h2p_simulator::TaskSpec],
) {
    let Some(last) = (0..trace.spans.len())
        .max_by(|&a, &b| trace.spans[a].end_ms.total_cmp(&trace.spans[b].end_ms))
    else {
        return;
    };
    let bound = audit::conservative_bound_ms(soc, tasks, trace, last);
    let span = &mut trace.spans[last];
    let duration = span.end_ms - span.start_ms;
    // Midway between the real duration and the envelope bound; if the
    // envelope is already tight, fall back to an unmistakable stretch.
    let target = if bound - duration < 1e-3 {
        duration * 1.5
    } else {
        (duration + bound) / 2.0
    };
    span.end_ms = span.start_ms + target;
}
