#!/usr/bin/env bash
# Regenerates every table and figure of the paper and stores the raw
# output under experiments/. Used to populate EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p experiments

COMBOS="${COMBOS:-100}"

bins=(
  zoo_summary
  fig01_processor_latency
  fig02a_queueing
  fig02b_counters
  tab01_related
  tab02_slowdown
  fig09_memory
  fig10_intracluster
  fig11_thermal
  fig12_bubble_latency
  fig13_batching
  app_searchspace
  ext_streaming
  ext_energy
  ext_precision
  ext_scaling
  ext_granularity
)
for b in "${bins[@]}"; do
  echo "== running $b"
  cargo run --release -q -p h2p-bench --bin "$b" >"experiments/$b.txt" 2>&1
done

echo "== running fig07_overall (--combos $COMBOS)"
cargo run --release -q -p h2p-bench --bin fig07_overall -- --combos "$COMBOS" \
  >"experiments/fig07_overall.txt" 2>&1

echo "== running fig08_ablation (--combos $COMBOS)"
cargo run --release -q -p h2p-bench --bin fig08_ablation -- --combos "$COMBOS" \
  >"experiments/fig08_ablation.txt" 2>&1

echo "done; outputs in experiments/"
