#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Mirrors what reviewers run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== h2p lint (static plan verifier)"
H2P=target/release/h2p
# Every scheme must produce a lint-clean plan / task graph.
for scheme in mnn pipeit band dart noct h2p; do
    $H2P lint --scheme "$scheme" --json --deny-warnings \
        bert yolov4 mobilenetv2 > /dev/null
done
# Every corruption class must be caught with a nonzero exit.
for class in drop-layer duplicate-slot bad-proc inflate-makespan; do
    if $H2P lint --corrupt "$class" bert yolov4 > /dev/null 2>&1; then
        echo "lint MISSED corruption class: $class" >&2
        exit 1
    fi
done

echo "== h2p lint --source (workspace determinism lints)"
# The workspace must be free of determinism hazards (H2P010-H2P013):
# hash-order iteration, wall-clock reads in planning paths, unordered
# float reductions, unseeded RNG. Waivers require a justification.
$H2P lint --source --deny-warnings > /dev/null
# Every seeded source-hazard class must be caught with a nonzero exit.
for class in hash-iteration wall-clock unordered-reduction unseeded-rng; do
    if $H2P lint --source --mutant "$class" > /dev/null 2>&1; then
        echo "source lint MISSED hazard class: $class" >&2
        exit 1
    fi
done

echo "== h2p modelcheck --exhaustive (schedule-space model checker)"
# Exhaustive DFS over the cursor/partition, error-rule, tables-cache,
# scratch-pool, planner bit-identity and recovery-round models: every
# explored interleaving must satisfy the determinism invariants, and the
# sweep must cover at least 1000 distinct schedules. The report must
# list the DP scratch-pool model and the intra-request fan-out model —
# a registry regression that silently drops either must fail here, not
# pass by omission.
MODELCHECK_OUT=$(mktemp)
$H2P modelcheck --exhaustive --min-schedules 1000 > "$MODELCHECK_OUT"
for model in scratch_pool intra_request serve_admit_shed; do
    grep -q "$model" "$MODELCHECK_OUT" || {
        echo "modelcheck report is missing the $model model" >&2
        rm -f "$MODELCHECK_OUT"; exit 1; }
done
rm -f "$MODELCHECK_OUT"
# The checker must catch both seeded cursor-claim bugs: the dropped
# claim (skip-claim) and the torn claim (split-claim, which only
# misbehaves under an adversarial interleaving).
$H2P modelcheck --inject skip-claim --expect-violation > /dev/null
$H2P modelcheck --inject split-claim --expect-violation > /dev/null

echo "== h2p trace --audit (baselines included)"
# Every scheme lowers through Scheme::lower -> LoweredPlan, so the
# post-execution trace audit gates the baselines too.
for scheme in mnn pipeit band dart noct h2p; do
    $H2P trace --scheme "$scheme" --audit bert yolov4 mobilenetv2 > /dev/null
done
# The corrupted-trace demos must still fail the audit: "overlap"
# violates the plain envelope contracts, "stretch" stays inside the
# conservative envelope and is only caught by the event-log replay.
for class in overlap stretch; do
    if $H2P trace --audit --corrupt "$class" bert > /dev/null 2>&1; then
        echo "trace audit MISSED corruption class: $class" >&2
        exit 1
    fi
done

echo "== h2p trace --faults (one scenario per fault class)"
# Every fault class must run to a recovered-or-typed-degraded end with
# every recovery round passing its faulted audit (nonzero exit means an
# audit violation, a panic, or a hang — none are acceptable).
for spec in "drop:NPU@5" "throttle:CPU_B@2..60x0.4" "flaky:0x2" "mispredict:1.5"; do
    $H2P trace --faults "$spec" bert resnet50 > /dev/null || {
        echo "fault scenario failed: $spec" >&2; exit 1; }
done

echo "== h2p chaos --seeds 8 --json (seeded fault-recovery sweep)"
# Random fault scenarios: every seed must end recovered audit-clean or
# in a typed degraded outcome, with bounded retries and no task ever
# starting on a down processor. The machine-readable output must carry
# a per-seed object for every seed plus a clean summary object.
CHAOS_OUT=$(mktemp)
$H2P chaos --seeds 8 --json > "$CHAOS_OUT"
grep -q '"summary":true,"soc":"Kirin 990","seeds":8,"failures":0' "$CHAOS_OUT" || {
    echo "chaos --json summary missing or reported failures" >&2
    rm -f "$CHAOS_OUT"; exit 1; }
[ "$(grep -c '"seed":' "$CHAOS_OUT")" -eq 8 ] || {
    echo "chaos --json did not emit one object per seed" >&2
    rm -f "$CHAOS_OUT"; exit 1; }
rm -f "$CHAOS_OUT"

echo "== h2p events (hardened event-log ingestion)"
# A real event log round-trips through the typed parser and the replay
# reconciliation; a log with a non-finite timestamp is rejected with a
# line-numbered error and nonzero exit.
EVENTS_OUT=$(mktemp)
$H2P trace --events "$EVENTS_OUT" bert > /dev/null 2>&1
$H2P events "$EVENTS_OUT" > /dev/null
echo '{"event":"finish","time_ms":NaN,"task":0,"processor":1,"duration_ms":3,"slowdown":0}' > "$EVENTS_OUT"
if $H2P events "$EVENTS_OUT" > /dev/null 2>&1; then
    echo "event-log parser accepted a non-finite timestamp" >&2
    rm -f "$EVENTS_OUT"
    exit 1
fi
rm -f "$EVENTS_OUT"

echo "== h2p export (chrome trace + metrics snapshot)"
# The exporter must emit schema-valid Chrome Trace JSON and a non-empty
# metrics snapshot for the full pipeline scheme.
TRACE_OUT=$(mktemp)
METRICS_OUT=$(mktemp)
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT"' EXIT
$H2P export --scheme h2p --trace "$TRACE_OUT" --metrics "$METRICS_OUT" \
    bert yolov4 mobilenetv2 > /dev/null
grep -q '"traceEvents"' "$TRACE_OUT" || {
    echo "exported trace lacks a traceEvents array" >&2; exit 1; }
grep -q '"ph":"X"' "$TRACE_OUT" || {
    echo "exported trace has no complete (ph=X) slices" >&2; exit 1; }
grep -q '"counters"' "$METRICS_OUT" || {
    echo "exported metrics snapshot is empty" >&2; exit 1; }

echo "== h2p report (serving report + three-way reconciliation)"
# The report must reconcile the audit replay, the engine trace and the
# lifecycle stream on a live run (nonzero exit means the three
# accountings disagree), and the machine-readable form must carry the
# schema stamp and a clean reconciliation verdict.
REPORT_OUT=$(mktemp)
$H2P report bert resnet50 mobilenetv2 > "$REPORT_OUT"
grep -q "replay and lifecycle reconcile" "$REPORT_OUT" || {
    echo "report did not declare reconciliation" >&2
    rm -f "$REPORT_OUT"; exit 1; }
$H2P report --json bert resnet50 > "$REPORT_OUT"
for field in '"schema":"h2p-report/v1"' '"reconciled":true' '"p99_ms":' '"burn_rate":'; do
    grep -q "$field" "$REPORT_OUT" || {
        echo "report --json is missing $field" >&2
        rm -f "$REPORT_OUT"; exit 1; }
done
# A chaos scenario (faults + recovery rounds) must also reconcile, and a
# saved event log must replay into a clean report.
$H2P report --chaos-seed 3 > /dev/null
$H2P trace --events "$REPORT_OUT" bert resnet50 > /dev/null 2>&1
$H2P report --from "$REPORT_OUT" > /dev/null
rm -f "$REPORT_OUT"

echo "== h2p serve (overload robustness gate)"
# Fixed-seed saturation sweep past 5x the measured capacity
# (~1.5 served/s on Kirin 990): every swept point must satisfy the
# overload invariants (exactly one typed terminal outcome per request,
# bounded queue depth and retries, causally valid lifecycle) — any
# violation exits nonzero — and typed backpressure must actually engage
# somewhere in the range, or the admission layer is asleep.
SERVE_A=$(mktemp)
SERVE_B=$(mktemp)
SERVE_LOG_A=$(mktemp)
SERVE_LOG_B=$(mktemp)
serve_cleanup() { rm -f "$SERVE_A" "$SERVE_B" "$SERVE_LOG_A" "$SERVE_LOG_B"; }
$H2P serve --qps-sweep 1..10 --steps 3 --seed 7 --requests 32 --json \
    --events "$SERVE_LOG_A" > "$SERVE_A"
grep -q '"summary":true,"points":3,"violations":0' "$SERVE_A" || {
    echo "serve sweep summary missing or reported invariant violations" >&2
    serve_cleanup; exit 1; }
if grep -q '"saturation_qps":null' "$SERVE_A"; then
    echo "serve sweep never engaged backpressure at 5x+ overload" >&2
    serve_cleanup; exit 1
fi
# Determinism: the identical invocation must be bit-identical, both the
# per-point JSON and the emitted lifecycle event log (H2P011).
$H2P serve --qps-sweep 1..10 --steps 3 --seed 7 --requests 32 --json \
    --events "$SERVE_LOG_B" > "$SERVE_B"
cmp -s "$SERVE_A" "$SERVE_B" || {
    echo "serve sweep is not bit-identical at a fixed seed" >&2
    serve_cleanup; exit 1; }
cmp -s "$SERVE_LOG_A" "$SERVE_LOG_B" || {
    echo "serve lifecycle log is not bit-identical at a fixed seed" >&2
    serve_cleanup; exit 1; }
# The emitted lifecycle log must round-trip through the hardened parser
# and replay into a clean report (reject/shed stages included).
$H2P events "$SERVE_LOG_A" > /dev/null
$H2P report --from "$SERVE_LOG_A" --json > /dev/null
# Chaos serving: seeded faults through the recovery machinery must still
# leave every request with exactly one typed outcome (nonzero exit means
# an invariant violation).
$H2P serve --qps 3 --seed 11 --requests 24 --chaos --json > /dev/null
serve_cleanup

echo "== bench_check --diff (perf-regression sentinel self-test)"
# Identical snapshots must pass; a 20% median regression must be caught
# with a nonzero exit; an advisory stamp downgrades the verdict to
# report-only.
DIFF_OLD=$(mktemp)
DIFF_NEW=$(mktemp)
DIFF_ADV=$(mktemp)
BENCH_CHECK="cargo run --release -q -p h2p-bench --bin bench_check --"
cat > "$DIFF_OLD" <<'EOF'
{
  "schema": "h2p-bench-planner/v1",
  "cases": [
    { "name": "plan_3x", "median_ns": 100000.0 },
    { "name": "replan_window", "median_ns": 40000.0 }
  ]
}
EOF
sed 's/100000.0/101000.0/' "$DIFF_OLD" > "$DIFF_NEW"
$BENCH_CHECK --diff "$DIFF_OLD" "$DIFF_NEW" > /dev/null || {
    echo "bench_check --diff flagged a within-threshold change" >&2
    rm -f "$DIFF_OLD" "$DIFF_NEW" "$DIFF_ADV"; exit 1; }
sed 's/100000.0/120001.0/' "$DIFF_OLD" > "$DIFF_NEW"
if $BENCH_CHECK --diff "$DIFF_OLD" "$DIFF_NEW" > /dev/null 2>&1; then
    echo "bench_check --diff MISSED a 20% median regression" >&2
    rm -f "$DIFF_OLD" "$DIFF_NEW" "$DIFF_ADV"; exit 1
fi
sed 's/"schema"/"advisory": true, "schema"/' "$DIFF_NEW" > "$DIFF_ADV"
$BENCH_CHECK --diff "$DIFF_OLD" "$DIFF_ADV" > /dev/null || {
    echo "bench_check --diff gated an advisory snapshot" >&2
    rm -f "$DIFF_OLD" "$DIFF_NEW" "$DIFF_ADV"; exit 1; }
rm -f "$DIFF_OLD" "$DIFF_NEW" "$DIFF_ADV"

echo "== planner bench (quick) + BENCH_planner.json gate"
# Runs the perf-trajectory suite, validates the JSON schema, and gates
# the incremental-replan win (>= 3x vs from-scratch windows — an
# algorithmic ratio, valid on any host). The committed snapshot is saved
# first so the perf-regression sentinel below can diff the fresh quick
# run against it: a >20% median regression on any shared case fails,
# unless either snapshot carries the advisory stamp (1-core hosts),
# which downgrades the diff to report-only.
BENCH_OLD=$(mktemp)
cp BENCH_planner.json "$BENCH_OLD"
scripts/bench.sh --quick

echo "== bench_check --diff vs committed BENCH_planner.json"
cargo run --release -q -p h2p-bench --bin bench_check -- \
    --diff "$BENCH_OLD" BENCH_planner.json
rm -f "$BENCH_OLD"

echo "== bench-sanity gate"
# On hosts that can actually run the benched 4 workers concurrently, the
# parallel gates become hard failures: t4 must beat the sequential
# reference and must not lose to t1. On smaller hosts the speedup block
# is recorded advisory-only (bench_check already skipped its gates above)
# and this step records the host class instead of asserting.
CORES=$(nproc)
if [ "$CORES" -ge 4 ]; then
    cargo run --release -q -p h2p-bench --bin bench_check -- \
        BENCH_planner.json --require-parallel
else
    echo "   host has $CORES core(s) < 4: parallel speedup recorded" \
         "advisory-only; replan gate already enforced"
fi

echo "CI gate passed."
