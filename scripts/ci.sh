#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Mirrors what reviewers run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== h2p lint (static plan verifier)"
H2P=target/release/h2p
# Every scheme must produce a lint-clean plan / task graph.
for scheme in mnn pipeit band dart noct h2p; do
    $H2P lint --scheme "$scheme" --json --deny-warnings \
        bert yolov4 mobilenetv2 > /dev/null
done
# Every corruption class must be caught with a nonzero exit.
for class in drop-layer duplicate-slot bad-proc inflate-makespan; do
    if $H2P lint --corrupt "$class" bert yolov4 > /dev/null 2>&1; then
        echo "lint MISSED corruption class: $class" >&2
        exit 1
    fi
done

echo "== h2p trace --audit (baselines included)"
# Every scheme lowers through Scheme::lower -> LoweredPlan, so the
# post-execution trace audit gates the baselines too.
for scheme in mnn pipeit band dart noct h2p; do
    $H2P trace --scheme "$scheme" --audit bert yolov4 mobilenetv2 > /dev/null
done
# The corrupted-trace demo must still fail the audit.
if $H2P trace --audit --corrupt bert > /dev/null 2>&1; then
    echo "trace audit MISSED a corrupted trace" >&2
    exit 1
fi

echo "== planner bench (quick) + BENCH_planner.json gate"
# Runs the perf-trajectory suite, validates the JSON schema, and fails
# if the parallel planner is slower than the sequential reference on the
# 8-request workload (bench_check's default gate).
scripts/bench.sh --quick

echo "CI gate passed."
