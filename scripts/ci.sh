#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Mirrors what reviewers run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "CI gate passed."
