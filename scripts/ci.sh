#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Mirrors what reviewers run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== h2p lint (static plan verifier)"
H2P=target/release/h2p
# Every scheme must produce a lint-clean plan / task graph.
for scheme in mnn pipeit band dart noct h2p; do
    $H2P lint --scheme "$scheme" --json --deny-warnings \
        bert yolov4 mobilenetv2 > /dev/null
done
# Every corruption class must be caught with a nonzero exit.
for class in drop-layer duplicate-slot bad-proc inflate-makespan; do
    if $H2P lint --corrupt "$class" bert yolov4 > /dev/null 2>&1; then
        echo "lint MISSED corruption class: $class" >&2
        exit 1
    fi
done

echo "CI gate passed."
