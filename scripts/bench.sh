#!/usr/bin/env bash
# Runs the planner perf-trajectory suite and writes BENCH_planner.json at
# the workspace root (median ns/iter per case, thread counts, the
# parallel-vs-sequential speedup, and the recovery re-plan latency after
# a processor dropout — case "recovery/replan_drop1/8" — all measured in
# the same run).
#
#   scripts/bench.sh           # full sampling (local profiling)
#   scripts/bench.sh --quick   # shrunk sampling (CI; finishes in seconds)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

export H2P_BENCH_OUT="$PWD/BENCH_planner.json"
if [ "$QUICK" = "1" ]; then
    export H2P_BENCH_QUICK=1
    echo "== planner_scaling bench (quick mode) -> $H2P_BENCH_OUT"
else
    unset H2P_BENCH_QUICK || true
    echo "== planner_scaling bench (full sampling) -> $H2P_BENCH_OUT"
fi

cargo bench -p h2p-bench --bench planner_scaling

# Stamp the snapshot's host class into the JSON itself: a speedup block
# measured with available_parallelism < threads is advisory — scoped
# threads time-slicing one core cannot demonstrate a parallel win — and
# the flag must travel WITH the committed snapshot so a later reader
# (bench_check, a reviewer, CI on a different host) sees it without
# having to reconstruct the producing host. bench_check prints the flag
# loudly and ci.sh refuses advisory snapshots under --require-parallel.
AP=$(sed -n 's/.*"available_parallelism": \([0-9][0-9]*\).*/\1/p' "$H2P_BENCH_OUT" | head -n1)
THREADS=$(sed -n 's/.*"threads": \([0-9][0-9]*\).*/\1/p' "$H2P_BENCH_OUT" | head -n1)
if [ -n "${AP:-}" ] && [ -n "${THREADS:-}" ] && [ "$AP" -lt "$THREADS" ]; then
    REASON="available_parallelism=$AP < threads=$THREADS: thread-vs-thread ratios measure time-slicing, not parallelism"
    sed -i "s|^  \"quick\":|  \"advisory\": true,\n  \"advisory_reason\": \"$REASON\",\n  \"quick\":|" "$H2P_BENCH_OUT"
    echo "== NOTE: snapshot stamped ADVISORY ($REASON)"
else
    sed -i 's|^  "quick":|  "advisory": false,\n  "quick":|' "$H2P_BENCH_OUT"
fi

echo "== validating $H2P_BENCH_OUT"
cargo run --release -q -p h2p-bench --bin bench_check -- "$H2P_BENCH_OUT"

echo "== planner_phases (telemetry phase timings + cache counters) -> $PWD/BENCH_planner_phases.json"
cargo run --release -q -p h2p-bench --bin planner_phases -- \
    --out "$PWD/BENCH_planner_phases.json"
