//! Smoke tests for the `h2p` command-line front end, exercising the
//! compiled binary end to end.

use std::process::Command;

fn h2p(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_h2p"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn socs_lists_all_three_platforms() {
    let (stdout, _, ok) = h2p(&["socs"]);
    assert!(ok);
    for name in ["Kirin 990", "Snapdragon 778G", "Snapdragon 870"] {
        assert!(stdout.contains(name), "{stdout}");
    }
}

#[test]
fn zoo_lists_all_ten_models() {
    let (stdout, _, ok) = h2p(&["zoo"]);
    assert!(ok);
    for name in ["AlexNet", "VGG16", "YOLOv4", "BERT", "ViT", "SqueezeNet"] {
        assert!(stdout.contains(name), "{stdout}");
    }
    assert!(stdout.contains("fallback"), "NPU fallback column shown");
}

#[test]
fn plan_prints_stage_layout() {
    let (stdout, _, ok) = h2p(&["plan", "--soc", "kirin990", "bert", "resnet50"]);
    assert!(ok);
    assert!(stdout.contains("BERT"));
    assert!(stdout.contains("ResNet50"));
    assert!(stdout.contains("est. makespan"));
}

#[test]
fn run_reports_latency_for_every_scheme() {
    for scheme in ["mnn", "pipeit", "dart", "band", "noct", "h2p"] {
        let (stdout, _, ok) = h2p(&["run", "--scheme", scheme, "resnet50", "squeezenet"]);
        assert!(ok, "{scheme} failed");
        assert!(stdout.contains("latency"), "{scheme}: {stdout}");
    }
}

#[test]
fn gantt_renders_one_row_per_processor() {
    let (stdout, _, ok) = h2p(&["gantt", "--soc", "sd870", "resnet50", "vgg16"]);
    assert!(ok);
    for name in ["CPU_B", "CPU_S", "GPU"] {
        assert!(stdout.contains(name), "{stdout}");
    }
}

#[test]
fn trace_audit_is_clean_on_planned_runs() {
    let (stdout, _, ok) = h2p(&["trace", "--audit", "bert", "mobilenetv2"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("audit: clean"), "{stdout}");
    assert!(stdout.contains("latency"), "{stdout}");
}

#[test]
fn trace_audit_rejects_corrupted_traces() {
    let (stdout, stderr, ok) = h2p(&["trace", "--audit", "--corrupt", "bert", "mobilenetv2"]);
    assert!(!ok, "corrupted trace must exit nonzero: {stdout}");
    assert!(stdout.contains("violation"), "{stdout}");
    assert!(stderr.contains("corrupted"), "{stderr}");
}

#[test]
fn trace_audit_replay_catches_stretch_corruption() {
    // The stretch class stays inside the conservative slowdown envelope
    // and is only caught by the event-log replay reconciliation.
    let (stdout, stderr, ok) = h2p(&[
        "trace",
        "--audit",
        "--corrupt",
        "stretch",
        "bert",
        "resnet50",
    ]);
    assert!(!ok, "stretched trace must exit nonzero: {stdout}");
    assert!(stdout.contains("replay"), "{stdout}");
    assert!(stderr.contains("--corrupt stretch"), "{stderr}");
}

#[test]
fn trace_summary_prints_metrics_table() {
    let (stdout, _, ok) = h2p(&["trace", "--summary", "bert", "mobilenetv2"]);
    assert!(ok, "{stdout}");
    for metric in ["busy_ms", "bubble_ms", "engine.makespan_ms", "engine.spans"] {
        assert!(stdout.contains(metric), "missing {metric} in {stdout}");
    }
}

#[test]
fn export_writes_chrome_trace_and_metrics() {
    let dir = std::env::temp_dir();
    let trace_path = dir.join("h2p_cli_test_trace.json");
    let metrics_path = dir.join("h2p_cli_test_metrics.json");
    let (stdout, _, ok) = h2p(&[
        "export",
        "--trace",
        trace_path.to_str().expect("utf-8 path"),
        "--metrics",
        metrics_path.to_str().expect("utf-8 path"),
        "bert",
        "mobilenetv2",
    ]);
    assert!(ok, "{stdout}");
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics written");
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&metrics_path);
    for field in ["\"traceEvents\"", "\"ph\":\"X\"", "\"ph\":\"M\""] {
        assert!(trace.contains(field), "missing {field} in trace JSON");
    }
    assert!(metrics.contains("\"counters\""), "{metrics}");
    assert!(metrics.contains("planner.plans"), "{metrics}");
}

#[test]
fn export_requires_an_output_path() {
    let (_, stderr, ok) = h2p(&["export", "bert"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn trace_emits_json_lines_event_log() {
    let (stdout, _, ok) = h2p(&["trace", "--events", "-", "mobilenetv2"]);
    assert!(ok);
    for event in [
        "\"event\":\"task\"",
        "\"event\":\"ready\"",
        "\"event\":\"start\"",
        "\"event\":\"finish\"",
    ] {
        assert!(stdout.contains(event), "missing {event} in {stdout}");
    }
}

#[test]
fn lint_is_clean_for_every_scheme() {
    for scheme in ["mnn", "pipeit", "dart", "band", "noct", "h2p"] {
        let (stdout, _, ok) = h2p(&["lint", "--scheme", scheme, "bert", "mobilenetv2"]);
        assert!(ok, "{scheme} lint failed: {stdout}");
        assert!(stdout.contains("0 error(s)"), "{scheme}: {stdout}");
    }
}

#[test]
fn lint_json_emits_summary_line() {
    let (stdout, _, ok) = h2p(&["lint", "--json", "--deny-warnings", "bert", "yolov4"]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("{\"summary\":true,\"errors\":0,\"warnings\":0,"),
        "{stdout}"
    );
}

#[test]
fn lint_catches_every_corruption_class() {
    for class in [
        "drop-layer",
        "duplicate-slot",
        "bad-proc",
        "inflate-makespan",
    ] {
        let (stdout, stderr, ok) = h2p(&["lint", "--corrupt", class, "bert", "yolov4"]);
        assert!(!ok, "{class} must exit nonzero: {stdout}");
        assert!(stdout.contains("error"), "{class}: {stdout}");
        assert!(stderr.contains("corrupted"), "{class}: {stderr}");
    }
}

#[test]
fn lint_rejects_bad_corrupt_usage() {
    let (_, stderr, ok) = h2p(&["lint", "--corrupt", "not-a-class", "bert"]);
    assert!(!ok);
    assert!(stderr.contains("--corrupt needs a class"), "{stderr}");
    let (_, stderr, ok) = h2p(&["lint", "--scheme", "mnn", "--corrupt", "drop-layer", "bert"]);
    assert!(!ok);
    assert!(stderr.contains("plan-producing scheme"), "{stderr}");
}

#[test]
fn unknown_inputs_exit_with_usage() {
    let (_, stderr, ok) = h2p(&["run", "not-a-model"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"));
    let (_, stderr, ok) = h2p(&["plan", "--soc", "exynos"]);
    assert!(!ok);
    assert!(stderr.contains("unknown soc"));
    let (_, stderr, ok) = h2p(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}
