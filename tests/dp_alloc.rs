//! Pins the "allocation-free after warmup" contract of the flat DP
//! path with a counting global allocator: once a [`DpScratch`] arena
//! has seen its high-water shape, repeated `partition_into` sweeps over
//! processor subsets must perform **zero** heap allocations, and the
//! planner's scratch pool must recycle its arenas across consecutive
//! plans instead of allocating fresh ones.
//!
//! The counting shim lives here (and not in a library crate) because
//! `GlobalAlloc` is an `unsafe` trait: the workspace `unsafe_code =
//! "forbid"` lint binds the `crates/*` members, while this root test
//! package deliberately stays outside it for exactly this kind of
//! instrumentation.
//!
//! Everything runs in ONE `#[test]` so no sibling test's allocations
//! bleed into the counter window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::partition::DpScratch;
use hetero2pipe::planner::Planner;

/// Counts every `alloc`/`realloc` passed through to the system
/// allocator. `dealloc` is uncounted: the contract under test is "no
/// new memory", not "no frees".
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn warm_dp_path_is_allocation_free_and_pool_recycles() {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let procs = soc.processors_by_power();

    // --- Steady-state kernel: zero allocations once the arena is warm.
    let tables = planner
        .estimator()
        .tables(Arc::new(ModelId::Bert.graph()), &procs);
    let mut scratch = DpScratch::new();
    // Warm at the high-water shape first (largest subset), then touch a
    // couple of smaller shapes so later sweeps never grow anything.
    for slots in [&[1usize, 2, 3] as &[usize], &[1], &[2, 3]] {
        tables
            .partition_into(slots, 1, &mut scratch)
            .expect("feasible");
    }
    scratch.take_cells();

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..32 {
        for slots in [&[1usize, 2, 3] as &[usize], &[1], &[2, 3], &[0, 1, 2]] {
            tables
                .partition_into(slots, 1, &mut scratch)
                .expect("feasible");
        }
    }
    scratch.take_cells();
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "warm partition_into sweep allocated {delta} time(s); the flat \
         DP path must be allocation-free after warmup"
    );

    // --- Planner scratch pool: a second identical plan must be served
    // entirely from recycled arenas (`planner.dp.scratch_allocs` flat).
    let graphs = [ModelId::Bert.graph(), ModelId::Vgg16.graph()];
    planner.plan_with_threads(&graphs, 1).expect("plan");
    let after_first = planner
        .telemetry()
        .metrics
        .snapshot()
        .counter("planner.dp.scratch_allocs")
        .unwrap_or(0);
    assert!(
        after_first > 0,
        "first plan should have populated the scratch pool"
    );
    planner.plan_with_threads(&graphs, 1).expect("plan");
    let after_second = planner
        .telemetry()
        .metrics
        .snapshot()
        .counter("planner.dp.scratch_allocs")
        .unwrap_or(0);
    assert_eq!(
        after_first, after_second,
        "second plan allocated new DP scratches instead of recycling the pool"
    );
}
