//! The parallel planning runtime's determinism contract, property-tested:
//! for random workloads, [`Planner::plan_with_threads`] must produce a
//! `PlannedPipeline` **bit-identical** to the frozen sequential reference
//! ([`Planner::plan_reference`]) at every thread count — same splits,
//! same request order, same makespan bits — and the windowed
//! [`OnlinePlanner`] must be equally thread-count invariant.

use proptest::prelude::*;

use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::online::OnlinePlanner;
use hetero2pipe::planner::{Planner, PlannerConfig};

/// Deterministically picks `m` zoo models from `seed` (an LCG, as in the
/// other proptest suites, so failures replay exactly).
fn pick_workload(seed: u64, m: usize) -> Vec<ModelGraph> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    (0..m)
        .map(|_| ModelId::ALL[next() % ModelId::ALL.len()].graph())
        .collect()
}

fn pick_soc(seed: u64) -> SocSpec {
    // Cover both an NPU SoC (operator fallback paths) and a CPU/GPU-only
    // one (no fallback slot at all).
    if seed.is_multiple_of(2) {
        SocSpec::kirin_990()
    } else {
        SocSpec::snapdragon_870()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Offline planning: parallel (threads 1/2/4) == sequential reference,
    /// bit for bit.
    #[test]
    fn parallel_planning_matches_sequential_reference(
        m in 1usize..8,
        seed in any::<u64>(),
    ) {
        let soc = pick_soc(seed);
        let graphs = pick_workload(seed, m);
        let planner = Planner::new(&soc).expect("planner");
        let reference = planner.plan_reference(&graphs).expect("reference plan");
        for threads in [1usize, 2, 4] {
            let out = planner.plan_with_threads(&graphs, threads).expect("plan");
            // Identical splits, processors, order, stage times.
            prop_assert_eq!(&out.plan, &reference.plan, "threads={}", threads);
            // Identical makespan down to the last bit.
            prop_assert_eq!(
                out.plan.estimated_makespan_ms().to_bits(),
                reference.plan.estimated_makespan_ms().to_bits(),
                "threads={}", threads
            );
            prop_assert_eq!(
                out.plan.estimated_makespan_contention_ms(&soc).to_bits(),
                reference.plan.estimated_makespan_contention_ms(&soc).to_bits(),
                "threads={}", threads
            );
            // Identical pass outcomes.
            prop_assert_eq!(out.tail_merges, reference.tail_merges);
            prop_assert_eq!(out.steal, reference.steal);
            prop_assert_eq!(
                out.mitigation.is_some(),
                reference.mitigation.is_some()
            );
        }
    }

    /// The "No C/T" ablation configuration obeys the same contract (it
    /// exercises the single-assembly move path).
    #[test]
    fn no_ct_parallel_matches_reference(
        m in 1usize..6,
        seed in any::<u64>(),
    ) {
        let soc = pick_soc(seed);
        let graphs = pick_workload(seed, m);
        let planner = Planner::with_config(&soc, PlannerConfig::no_ct()).expect("planner");
        let reference = planner.plan_reference(&graphs).expect("reference plan");
        for threads in [1usize, 2, 4] {
            let out = planner.plan_with_threads(&graphs, threads).expect("plan");
            prop_assert_eq!(&out.plan, &reference.plan, "threads={}", threads);
        }
    }

    /// Online windowed planning is thread-count invariant: the combined
    /// plan from a 1-thread planner equals the one from a 4-thread
    /// planner (windows fan out in parallel in the latter).
    #[test]
    fn online_windows_are_thread_count_invariant(
        m in 2usize..8,
        window in 2usize..5,
        seed in any::<u64>(),
    ) {
        let soc = pick_soc(seed);
        let graphs = pick_workload(seed, m);
        let mut plans = Vec::new();
        for threads in [1usize, 4] {
            let config = PlannerConfig { threads, ..PlannerConfig::default() };
            let planner = Planner::with_config(&soc, config).expect("planner");
            let online = OnlinePlanner::new(planner, window);
            plans.push(online.plan(&graphs).expect("online plan"));
        }
        let (a, b) = (&plans[0], &plans[1]);
        prop_assert_eq!(&a.plan, &b.plan);
        prop_assert_eq!(
            a.plan.estimated_makespan_ms().to_bits(),
            b.plan.estimated_makespan_ms().to_bits()
        );
        prop_assert_eq!(a.tail_merges, b.tail_merges);
    }
}
