//! Cross-crate integration tests: planning and executing workloads end to
//! end across every scheme and every evaluation SoC.

use h2p_baselines::Scheme;
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::{Planner, PlannerConfig};
use hetero2pipe::workload::random_combinations;

fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
    ids.iter().map(|m| m.graph()).collect()
}

#[test]
fn every_scheme_completes_on_every_platform() {
    let reqs = graphs(&[
        ModelId::ResNet50,
        ModelId::Bert,
        ModelId::SqueezeNet,
        ModelId::YoloV4,
        ModelId::MobileNetV2,
    ]);
    for soc in SocSpec::evaluation_platforms() {
        for scheme in Scheme::ALL {
            let r = scheme
                .run(&soc, &reqs)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", scheme.name(), soc.name));
            assert!(r.makespan_ms > 0.0);
            assert_eq!(r.request_latency_ms.len(), reqs.len());
            for (i, &lat) in r.request_latency_ms.iter().enumerate() {
                assert!(
                    lat > 0.0 && lat <= r.makespan_ms + 1e-6,
                    "{} on {}: request {i} latency {lat} vs makespan {}",
                    scheme.name(),
                    soc.name,
                    r.makespan_ms
                );
            }
        }
    }
}

#[test]
fn hetero2pipe_wins_on_average_over_random_combinations() {
    // Fig. 7's headline in miniature: over a seeded sample of random
    // combinations on the Kirin 990, Hetero2Pipe beats serial MNN by >2x
    // on average and is at least competitive with (within 15% of) Band.
    let soc = SocSpec::kirin_990();
    let sets = random_combinations(99, 8, 6, 10);
    let mut mnn = 0.0;
    let mut band = 0.0;
    let mut h2p = 0.0;
    for set in &sets {
        let reqs = graphs(set);
        mnn += Scheme::MnnSerial.run(&soc, &reqs).unwrap().makespan_ms;
        band += Scheme::Band.run(&soc, &reqs).unwrap().makespan_ms;
        h2p += Scheme::Hetero2Pipe.run(&soc, &reqs).unwrap().makespan_ms;
    }
    assert!(mnn / h2p > 2.0, "H2P vs MNN speedup only {:.2}", mnn / h2p);
    assert!(
        h2p < band * 1.15,
        "H2P ({h2p:.0}) must stay competitive with Band ({band:.0})"
    );
}

#[test]
fn full_planner_beats_no_ct_on_average() {
    // Fig. 8(b): contention mitigation + tail optimization reduce latency.
    let soc = SocSpec::kirin_990();
    let sets = random_combinations(7, 8, 5, 9);
    let full = Planner::new(&soc).unwrap();
    let noct = Planner::with_config(&soc, PlannerConfig::no_ct()).unwrap();
    let mut full_ms = 0.0;
    let mut noct_ms = 0.0;
    for set in &sets {
        let reqs = graphs(set);
        full_ms += full.plan(&reqs).unwrap().execute(&soc).unwrap().makespan_ms;
        noct_ms += noct.plan(&reqs).unwrap().execute(&soc).unwrap().makespan_ms;
    }
    assert!(
        full_ms < noct_ms,
        "full {full_ms:.0} must beat No C/T {noct_ms:.0}"
    );
}

#[test]
fn plans_tile_every_model_and_execution_is_deterministic() {
    let soc = SocSpec::snapdragon_870();
    let planner = Planner::new(&soc).unwrap();
    let reqs = graphs(&[
        ModelId::Vgg16,
        ModelId::Bert,
        ModelId::GoogLeNet,
        ModelId::Vit,
    ]);
    let a = planner.plan(&reqs).unwrap();
    let b = planner.plan(&reqs).unwrap();
    assert_eq!(a.plan, b.plan, "planning is deterministic");
    for req in &a.plan.requests {
        let n = reqs[req.request].len();
        let mut next = 0usize;
        for stage in req.stages.iter().flatten() {
            assert_eq!(stage.range.first, next, "{} stages must tile", req.model);
            next = stage.range.last + 1;
        }
        assert_eq!(next, n, "{} must cover all layers", req.model);
    }
    let ra = a.execute(&soc).unwrap();
    let rb = b.execute(&soc).unwrap();
    assert_eq!(ra.trace.spans, rb.trace.spans, "execution is deterministic");
}

#[test]
fn memory_constraint_is_respected_by_plans() {
    // Constraint (6): the planner's plans keep concurrent footprints
    // below physical memory for the standard workloads.
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).unwrap();
    let reqs = graphs(&[ModelId::Bert, ModelId::Vit, ModelId::YoloV4]);
    let planned = planner.plan(&reqs).unwrap();
    assert!(planned.plan.peak_footprint_bytes() <= soc.memory.capacity_bytes);
    // And the executed trace never reports paging.
    let report = planned.execute(&soc).unwrap();
    assert!(report
        .trace
        .memory
        .iter()
        .all(|s| s.available_bytes > 0 || s.allocated_bytes <= soc.memory.capacity_bytes));
}

#[test]
fn estimates_track_measured_latency() {
    // The planner's contention-aware estimate should predict measured
    // latency within a reasonable band for planned pipelines.
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).unwrap();
    for set in random_combinations(13, 6, 4, 8) {
        let reqs = graphs(&set);
        let planned = planner.plan(&reqs).unwrap();
        let est = planned.plan.estimated_makespan_contention_ms(&soc);
        let measured = planned.execute(&soc).unwrap().makespan_ms;
        let err = (est - measured).abs() / measured;
        assert!(
            err < 0.40,
            "estimate {est:.0} vs measured {measured:.0} ({:.0}% off) for {set:?}",
            err * 100.0
        );
    }
}
