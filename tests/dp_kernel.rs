//! The flat prefix-sum DP kernel's exactness contract, property-tested
//! at the workspace level: for randomized heterogeneous stage oracles —
//! mixed supported/fallback slots, random copy-in costs, and infeasible
//! (unsupported-layer) cells — [`min_max_partition_prefix`] must agree
//! **bit for bit** with the `Option`-oracle reference
//! [`min_max_partition`], and both must agree with the brute-force
//! [`min_max_partition_exhaustive`] on the minimized makespan. One
//! [`DpScratch`] arena is reused across every trial, so the sweep also
//! exercises the stale-value safety of warm-scratch reuse across
//! problem shapes.

use proptest::prelude::*;

use hetero2pipe::partition::{
    min_max_partition, min_max_partition_exhaustive, min_max_partition_prefix, DpScratch,
    PrefixStage,
};

/// The LCG every suite in this workspace derives trial data from, so
/// failures replay exactly from the proptest seed.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
    *state >> 33
}

/// A positive cost in roughly (0, 10] ms.
fn cost_ms(state: &mut u64) -> f64 {
    (lcg(state) % 10_000) as f64 / 1000.0 + 0.001
}

/// One pipeline slot's cost data in the kernel's native prefix form.
/// The oracle closure consumes the *same* arrays with the same float-op
/// order, which is exactly the production contract: `RequestTables`
/// lowers its tables once and both DP paths read the lowered form.
enum StageData {
    Plain {
        pm: Vec<f64>,
        feas_from: Vec<u32>,
        copy: Vec<f64>,
    },
    Fallback {
        lp: Vec<f64>,
        cp: Vec<f64>,
        copy: Vec<f64>,
    },
}

impl StageData {
    fn prefix(&self) -> PrefixStage<'_> {
        match self {
            StageData::Plain {
                pm,
                feas_from,
                copy,
            } => PrefixStage::Plain {
                pm,
                feas_from,
                copy,
            },
            StageData::Fallback { lp, cp, copy } => PrefixStage::Fallback { lp, cp, copy },
        }
    }

    /// The `Option` oracle the reference DPs consume: `None` for a slice
    /// crossing an unsupported layer on a plain slot, otherwise the same
    /// prefix arithmetic as the kernel.
    fn oracle(&self, i: usize, j: usize) -> Option<f64> {
        match self {
            StageData::Plain {
                pm,
                feas_from,
                copy,
            } => {
                if (feas_from[j] as usize) > i {
                    None
                } else {
                    Some((pm[j + 1] - pm[i]) + copy[i])
                }
            }
            StageData::Fallback { lp, cp, copy } => {
                Some((((lp[j + 1] - lp[i]) + cp[j]) - cp[i]) + copy[i])
            }
        }
    }
}

/// Generates one slot's stage data: ~1 in 4 slots is a fallback-style
/// slot (every slice feasible, detour penalties), the rest are plain
/// slots whose layers are unsupported with probability
/// `unsupported_pct`%. Stage 0 carries the literal all-zeros copy curve
/// the production tables use.
fn gen_stage(state: &mut u64, n: usize, a: usize, unsupported_pct: u64) -> StageData {
    let copy: Vec<f64> = if a == 0 {
        vec![0.0; n]
    } else {
        (0..n).map(|_| cost_ms(state) * 0.2).collect()
    };
    if lcg(state).is_multiple_of(4) {
        let mut lp = vec![0.0f64; n + 1];
        for i in 0..n {
            lp[i + 1] = lp[i] + cost_ms(state);
        }
        let mut cp = vec![0.0f64; n];
        let mut acc = 0.0f64;
        for c in cp.iter_mut() {
            if lcg(state).is_multiple_of(3) {
                acc += cost_ms(state) * 0.1;
            }
            *c = acc;
        }
        StageData::Fallback { lp, cp, copy }
    } else {
        let mut pm = vec![0.0f64; n + 1];
        for i in 0..n {
            pm[i + 1] = pm[i] + cost_ms(state);
        }
        let mut feas_from = vec![0u32; n];
        let mut from = 0u32;
        for (j, f) in feas_from.iter_mut().enumerate() {
            if lcg(state) % 100 < unsupported_pct {
                from = (j + 1) as u32;
            }
            *f = from;
        }
        StageData::Plain {
            pm,
            feas_from,
            copy,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kernel == oracle DP (makespan bits AND split points), and both ==
    /// brute force on the makespan bits, across random heterogeneous
    /// oracles. `heavy = 1` cranks the unsupported-layer rate so wholly
    /// infeasible instances occur and all three paths must agree on
    /// `None`.
    #[test]
    fn flat_kernel_matches_oracle_and_exhaustive(
        seed in any::<u64>(),
        heavy in 0u64..2,
    ) {
        let mut state = seed | 1;
        let unsupported_pct = if heavy == 1 { 45 } else { 12 };
        // One warm scratch across all trials: shapes shrink and grow, so
        // this also pins the arena's stale-value safety.
        let mut scratch = DpScratch::new();
        for _trial in 0..6 {
            let n = 2 + (lcg(&mut state) as usize) % 9; // 2..=10 layers
            let kmax = n.min(4);
            let k = 1 + (lcg(&mut state) as usize) % kmax;
            let stages: Vec<StageData> = (0..k)
                .map(|a| gen_stage(&mut state, n, a, unsupported_pct))
                .collect();
            let oracle = |a: usize, i: usize, j: usize| stages[a].oracle(i, j);

            let exact = min_max_partition(n, k, oracle);
            let brute = min_max_partition_exhaustive(n, k, oracle);
            let kernel =
                min_max_partition_prefix(n, k, 1, |a| stages[a].prefix(), &mut scratch);

            match (&exact, &kernel) {
                (Some(p), Some(ms)) => {
                    prop_assert_eq!(
                        ms.to_bits(), p.makespan_ms.to_bits(),
                        "kernel makespan != oracle DP (n={}, k={})", n, k
                    );
                    prop_assert_eq!(
                        scratch.splits(), p.splits.as_slice(),
                        "kernel splits != oracle DP (n={}, k={})", n, k
                    );
                }
                (None, None) => {}
                (e, f) => prop_assert!(
                    false,
                    "kernel/oracle feasibility disagree (n={}, k={}): oracle {:?}, kernel {:?}",
                    n, k, e.is_some(), f.is_some()
                ),
            }
            match (&exact, &brute) {
                (Some(p), Some(b)) => prop_assert_eq!(
                    p.makespan_ms.to_bits(), b.makespan_ms.to_bits(),
                    "oracle DP makespan != exhaustive (n={}, k={})", n, k
                ),
                (None, None) => {}
                (e, b) => prop_assert!(
                    false,
                    "oracle/exhaustive feasibility disagree (n={}, k={}): dp {:?}, brute {:?}",
                    n, k, e.is_some(), b.is_some()
                ),
            }
        }
    }
}
