//! Shape-level assertions for the paper's empirical claims: each test
//! pins one observation, property or evaluation result from the paper to
//! a concrete check against the reproduction.

use h2p_contention::counters::{ground_truth_intensity, measure};
use h2p_contention::IntensityModel;
use h2p_models::batch::BatchModel;
use h2p_models::cost::CostModel;
use h2p_models::graph::{LayerRange, ModelGraph};
use h2p_models::zoo::ModelId;
use h2p_simulator::engine::{Simulation, TaskSpec};
use h2p_simulator::interference::CouplingMatrix;
use h2p_simulator::processor::ProcessorKind;
use h2p_simulator::SocSpec;

/// Fig. 1: NPU fastest where supported; CPU_B on par with GPU; CPU_S
/// heavily degraded; NPU errors exactly for YOLOv4 and BERT.
#[test]
fn fig1_processor_latency_shapes() {
    let soc = SocSpec::kirin_990();
    let cost = CostModel::new(&soc);
    let big = soc.processor_by_name("CPU_B").unwrap();
    let small = soc.processor_by_name("CPU_S").unwrap();
    let gpu = soc.processor_by_name("GPU").unwrap();
    let npu = soc.processor_by_name("NPU").unwrap();
    for id in ModelId::ALL {
        let g = id.graph();
        let t_big = cost.model_latency_ms(&g, big).unwrap();
        let t_small = cost.model_latency_ms(&g, small).unwrap();
        let t_gpu = cost.model_latency_ms(&g, gpu).unwrap();
        assert!(t_small > 2.0 * t_big, "{id}: small cores degrade");
        assert!(
            t_gpu < 4.0 * t_big && t_big < 4.0 * t_gpu,
            "{id}: CPU_B and GPU within the same regime"
        );
        match cost.model_latency_ms(&g, npu) {
            Some(t_npu) => assert!(t_npu < t_big, "{id}: NPU must be fastest"),
            None => assert!(
                matches!(id, ModelId::YoloV4 | ModelId::Bert),
                "{id}: only YOLOv4/BERT may error on the NPU"
            ),
        }
    }
}

/// Sec. III: CPU-GPU interference far exceeds CPU-NPU and GPU-NPU.
#[test]
fn cpu_gpu_interference_dominates_npu_pairs() {
    let m = CouplingMatrix::mobile_default();
    let cpu_gpu = m.kind_coupling(ProcessorKind::CpuBig, ProcessorKind::Gpu);
    assert!(cpu_gpu >= 3.0 * m.kind_coupling(ProcessorKind::CpuBig, ProcessorKind::Npu));
    assert!(cpu_gpu >= 3.0 * m.kind_coupling(ProcessorKind::Gpu, ProcessorKind::Npu));
}

/// Observation 1: equal-priority CPU/GPU co-execution suffers symmetric
/// slowdown when intensities match.
#[test]
fn obs1_slowdown_symmetry() {
    let mut soc = SocSpec::kirin_990();
    soc.thermal_mode = h2p_simulator::thermal::ThermalMode::Disabled;
    let big = soc.processor_by_name("CPU_B").unwrap();
    let gpu = soc.processor_by_name("GPU").unwrap();
    let mut sim = Simulation::new(soc);
    sim.add_task(
        TaskSpec::new("a", big, 200.0)
            .intensity(0.8)
            .sensitivity(0.9),
    );
    sim.add_task(
        TaskSpec::new("b", gpu, 200.0)
            .intensity(0.8)
            .sensitivity(0.9),
    );
    let t = sim.run().unwrap();
    let sa = t.span(0).unwrap().slowdown();
    let sb = t.span(1).unwrap().slowdown();
    assert!(sa > 0.05, "interference must be visible: {sa}");
    assert!((sa - sb).abs() < 1e-9, "symmetric: {sa} vs {sb}");
}

/// Observation 2: large-MatMul layers (VGG FC, BERT attention) are
/// memory-bound on the CPU with elevated miss rates.
#[test]
fn obs2_heavyweight_matmul_contention() {
    let soc = SocSpec::kirin_990();
    let cost = CostModel::new(&soc);
    let big = soc.processor_by_name("CPU_B").unwrap();
    let vgg = ModelId::Vgg16.graph();
    let fc = vgg.layers().iter().find(|l| l.name == "fc6").unwrap();
    assert!(cost.layer_cost(fc, big).unwrap().memory_bound);
    let bert = ModelId::Bert.graph();
    let attn = bert
        .layers()
        .iter()
        .find(|l| l.name == "enc0_attn")
        .unwrap();
    // Attention's working set exceeds the CPU L2.
    assert!(attn.working_set_bytes > 512 * 1024);
}

/// Observation 3: SqueezeNet (4.8 MB) ranks among the most
/// contention-intense models despite being ~70x smaller than ViT.
#[test]
fn obs3_lightweight_outliers() {
    let soc = SocSpec::kirin_990();
    let cost = CostModel::new(&soc);
    let big = soc.processor_by_name("CPU_B").unwrap();
    let sq = ground_truth_intensity(&cost, &ModelId::SqueezeNet.graph(), big);
    let vit = ground_truth_intensity(&cost, &ModelId::Vit.graph(), big);
    let resnet = ground_truth_intensity(&cost, &ModelId::ResNet50.graph(), big);
    assert!(sq > vit, "SqueezeNet {sq:.2} must out-contend ViT {vit:.2}");
    assert!(sq > resnet, "SqueezeNet must out-contend ResNet50");
    let size_ratio = ModelId::Vit.graph().weight_bytes() as f64
        / ModelId::SqueezeNet.graph().weight_bytes() as f64;
    assert!(
        size_ratio > 40.0,
        "ViT is ~70x larger, got {size_ratio:.0}x"
    );
}

/// Eq. 1: the ridge regression predicts contention intensity from the
/// three PMU features well enough to rank models.
#[test]
fn eq1_regression_ranks_models() {
    let soc = SocSpec::kirin_990();
    let cost = CostModel::new(&soc);
    let big = soc.processor_by_name("CPU_B").unwrap();
    let zoo: Vec<ModelGraph> = ModelId::ALL.iter().map(|m| m.graph()).collect();
    let model = IntensityModel::train_default(&cost, &zoo, big).unwrap();
    // Spearman correlation between predicted and true intensities > 0.8.
    let mut pairs: Vec<(f64, f64)> = zoo
        .iter()
        .map(|g| {
            (
                model.predict_sample(&measure(&cost, g, big)),
                ground_truth_intensity(&cost, g, big),
            )
        })
        .collect();
    let rank = |xs: Vec<f64>| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
        let mut r = vec![0usize; xs.len()];
        for (rank_pos, &i) in idx.iter().enumerate() {
            r[i] = rank_pos;
        }
        r
    };
    let pred_rank = rank(pairs.iter().map(|p| p.0).collect());
    let true_rank = rank(pairs.iter().map(|p| p.1).collect());
    let n = pairs.len() as f64;
    let d2: f64 = pred_rank
        .iter()
        .zip(&true_rank)
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum();
    let spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
    assert!(spearman > 0.8, "Spearman {spearman:.2}");
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
}

/// Property 1: planned bubbles correlate positively with measured latency
/// across candidate plans (random orders × random splits) of a fixed
/// request set, as in Fig. 12.
#[test]
fn property1_bubbles_track_latency() {
    use hetero2pipe::plan::PipelinePlan;
    use hetero2pipe::planner::{Planner, PlannerConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let soc = SocSpec::kirin_990();
    let cfg = PlannerConfig {
        contention_mitigation: false,
        work_stealing: false,
        tail_optimization: false,
        max_depth: 3,
        ..PlannerConfig::default()
    };
    let planner = Planner::with_config(&soc, cfg).unwrap();
    let ids = [ModelId::InceptionV4, ModelId::ResNet50, ModelId::SqueezeNet];
    let reqs: Vec<ModelGraph> = ids.iter().map(|m| m.graph()).collect();
    let base = planner.plan(&reqs).unwrap();
    let cost = planner.estimator().cost();
    let mut rng = StdRng::seed_from_u64(12);
    let mut points: Vec<(f64, f64)> = Vec::new();
    for _ in 0..80 {
        let mut order: Vec<usize> = (0..ids.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut requests = Vec::new();
        for &i in &order {
            let mut req = base.plan.requests[i].clone();
            let ctx = &base.contexts[req.request];
            let (stages, n) = (ctx.stage_count(), ctx.layer_count());
            if stages >= 2 {
                for _ in 0..12 {
                    let mut cuts: Vec<usize> =
                        (0..stages - 1).map(|_| rng.gen_range(1..n)).collect();
                    cuts.sort_unstable();
                    cuts.dedup();
                    if cuts.len() != stages - 1 {
                        continue;
                    }
                    if let Some(st) = ctx.build_stages(cost, &cuts, base.plan.depth()) {
                        req.stages = st;
                        break;
                    }
                }
            }
            requests.push(req);
        }
        let plan = PipelinePlan {
            procs: base.plan.procs.clone(),
            requests,
        };
        let measured = hetero2pipe::executor::execute(&plan, &soc)
            .unwrap()
            .makespan_ms;
        points.push((plan.total_bubble_ms(), measured));
    }
    // Positive correlation between bubbles and latency.
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let vx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let vy: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let r = cov / (vx.sqrt() * vy.sqrt()).max(1e-12);
    assert!(r > 0.5, "bubble-latency correlation {r:.2}");
}

/// Appendix D: batched latency of lightweight models is affine in the
/// batch size, and batching closes the gap to heavyweight models.
#[test]
fn appendix_d_affine_batching() {
    let soc = SocSpec::kirin_990();
    let cost = CostModel::new(&soc);
    let big = soc.processor_by_name("CPU_B").unwrap();
    let m = BatchModel::fit(&cost, &ModelId::MobileNetV2.graph(), big).unwrap();
    // Affinity: second differences vanish.
    let l = |b| m.latency_ms(b);
    assert!(((l(3) - l(2)) - (l(2) - l(1))).abs() < 1e-9);
    // Gap closing: some batch matches a BERT stage time.
    let bert = cost.model_latency_ms(&ModelId::Bert.graph(), big).unwrap();
    let b = m.batch_to_match(bert / 4.0, 64);
    assert!((2..=64).contains(&b));
}

/// Appendix B: at thermal steady state the CPU throttles but GPU/NPU do
/// not, and the whole evaluation runs in that regime.
#[test]
fn appendix_b_thermal_steady_state() {
    use h2p_simulator::thermal::{ThermalMode, ThermalSpec, ThermalState};
    for kind in [ProcessorKind::CpuBig, ProcessorKind::CpuSmall] {
        let st = ThermalState::new(ThermalSpec::for_kind(kind), ThermalMode::SteadyState);
        assert!(st.rate_factor() < 1.0, "{kind:?} throttles at steady state");
    }
    for kind in [ProcessorKind::Gpu, ProcessorKind::Npu] {
        let st = ThermalState::new(ThermalSpec::for_kind(kind), ThermalMode::SteadyState);
        assert_eq!(st.rate_factor(), 1.0, "{kind:?} stays cool");
    }
}

/// Table II regime: sustained CPU/GPU co-execution of real model pairs
/// produces double-digit-percent slowdowns.
#[test]
fn table2_coexec_slowdown_regime() {
    let mut soc = SocSpec::kirin_990();
    soc.thermal_mode = h2p_simulator::thermal::ThermalMode::Disabled;
    let cost = CostModel::new(&soc);
    let big = soc.processor_by_name("CPU_B").unwrap();
    let gpu = soc.processor_by_name("GPU").unwrap();
    let g_sq = ModelId::SqueezeNet.graph();
    let g_bert = ModelId::Bert.graph();
    let whole = |g: &ModelGraph| LayerRange::new(0, g.len() - 1);
    let t_sq = cost.slice_latency_ms(&g_sq, whole(&g_sq), big).unwrap();
    let bw_sq = cost.slice_bandwidth_gbps(&g_sq, whole(&g_sq), big).unwrap();
    let t_bert = cost.slice_latency_ms(&g_bert, whole(&g_bert), gpu).unwrap();
    let bw_bert = cost
        .slice_bandwidth_gbps(&g_bert, whole(&g_bert), gpu)
        .unwrap();
    let intensity = |bw: f64| bw / h2p_contention::counters::REFERENCE_BANDWIDTH_GBPS;
    let mut sim = Simulation::new(soc);
    // Loop SqueezeNet to cover BERT's runtime (sustained co-execution).
    let reps = (t_bert / t_sq).ceil() as usize;
    for _ in 0..reps {
        sim.add_task(
            TaskSpec::new("sq", big, t_sq)
                .intensity(intensity(bw_sq))
                .sensitivity(0.5 + 0.5 * intensity(bw_sq).clamp(0.0, 2.0)),
        );
    }
    sim.add_task(
        TaskSpec::new("bert", gpu, t_bert)
            .intensity(intensity(bw_bert))
            .sensitivity(0.5 + 0.5 * intensity(bw_bert).clamp(0.0, 2.0)),
    );
    let trace = sim.run().unwrap();
    let bert_slow = trace.span(reps).unwrap().slowdown();
    assert!(
        bert_slow > 0.05 && bert_slow < 0.40,
        "BERT slowdown under sustained SqueezeNet co-execution: {bert_slow:.3}"
    );
}
