//! The incremental replanning contract, property-tested: for randomized
//! window sequences — model-set drift (which also shifts contention
//! classes) between invocations, warm repeats, and fault-driven
//! processor-availability changes through [`recovery::replan_on_survivors`]
//! — [`OnlinePlanner::plan_incremental`] must stay **bit-identical** to
//! the from-scratch [`OnlinePlanner::plan`], and a warm tables cache must
//! never change what a recovery replan produces.

use std::sync::Arc;

use proptest::prelude::*;

use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::online::OnlinePlanner;
use hetero2pipe::planner::Planner;
use hetero2pipe::recovery::replan_on_survivors;

/// Deterministically picks `m` zoo models from `seed` (an LCG, as in the
/// other proptest suites, so failures replay exactly).
fn pick_workload(seed: u64, m: usize) -> Vec<ModelGraph> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    (0..m)
        .map(|_| ModelId::ALL[next() % ModelId::ALL.len()].graph())
        .collect()
}

fn pick_soc(seed: u64) -> SocSpec {
    // Cover both an NPU SoC (operator fallback paths) and a CPU/GPU-only
    // one (no fallback slot at all).
    if seed.is_multiple_of(2) {
        SocSpec::kirin_990()
    } else {
        SocSpec::snapdragon_870()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A randomized sequence of online invocations: between invocations
    /// one request is swapped for a random zoo model (possibly a no-op),
    /// drifting the model set and with it the per-window contention
    /// classes. At every step the incremental plan — partly served from
    /// the warm window cache — must equal the from-scratch plan bit for
    /// bit, and an immediate warm repeat (the steady state: every window
    /// a cache hit) must as well.
    #[test]
    fn incremental_is_bit_identical_across_window_sequences(
        m in 2usize..10,
        window in 2usize..5,
        seed in any::<u64>(),
        swaps in prop::collection::vec((any::<u64>(), any::<u64>()), 1..5),
    ) {
        let soc = pick_soc(seed);
        let online = OnlinePlanner::new(Planner::new(&soc).expect("planner"), window);
        let mut stream = pick_workload(seed, m);
        for (step, (pos_seed, model_seed)) in swaps.into_iter().enumerate() {
            let scratch = online.plan(&stream).expect("scratch plan");
            let incremental = online.plan_incremental(&stream).expect("incremental plan");
            prop_assert_eq!(&incremental.plan, &scratch.plan, "step={}", step);
            prop_assert_eq!(
                incremental.plan.estimated_makespan_ms().to_bits(),
                scratch.plan.estimated_makespan_ms().to_bits(),
                "step={}", step
            );
            prop_assert_eq!(incremental.tail_merges, scratch.tail_merges, "step={}", step);
            // Warm repeat: every window now hits; still identical.
            let repeat = online.plan_incremental(&stream).expect("warm repeat");
            prop_assert_eq!(&repeat.plan, &scratch.plan, "step={} (warm)", step);
            // Drift the stream for the next invocation.
            let pos = (pos_seed as usize) % stream.len();
            stream[pos] = ModelId::ALL[(model_seed as usize) % ModelId::ALL.len()].graph();
        }
    }

    /// Fault-driven availability changes: a recovery replan over a random
    /// survivor set must produce the same plan (or the same typed error)
    /// whether the planner's cross-invocation tables cache is warm from a
    /// prior full plan or completely cold — the cache must never leak
    /// stale state into the post-fault plan.
    #[test]
    fn warm_tables_cache_never_changes_recovery_replans(
        m in 1usize..6,
        seed in any::<u64>(),
        mask in any::<u32>(),
    ) {
        let soc = pick_soc(seed);
        let warm = Planner::new(&soc).expect("planner");
        let fresh = Planner::new(&soc).expect("planner");
        let graphs: Vec<Arc<ModelGraph>> =
            pick_workload(seed, m).into_iter().map(Arc::new).collect();
        let plain: Vec<ModelGraph> = graphs.iter().map(|g| (**g).clone()).collect();
        // Warm the tables cache through a full plan; `fresh` stays cold.
        warm.plan(&plain).expect("warm-up plan");
        let pending: Vec<usize> = (0..graphs.len()).collect();
        // A random subset of pipeline slots goes down, but never all of
        // them (all-down is its own typed error, pinned elsewhere).
        let procs = warm.pipeline_procs();
        let mut down = vec![false; soc.processors.len()];
        for (b, p) in procs.iter().enumerate() {
            if mask & (1 << b) != 0 {
                down[p.index()] = true;
            }
        }
        if procs.iter().all(|p| down[p.index()]) {
            down[procs[0].index()] = false;
        }
        let warm_out = replan_on_survivors(&warm, &graphs, &pending, &down);
        let fresh_out = replan_on_survivors(&fresh, &graphs, &pending, &down);
        match (&warm_out, &fresh_out) {
            (Ok((warm_plan, _)), Ok((fresh_plan, _))) => {
                prop_assert_eq!(warm_plan, fresh_plan);
                prop_assert_eq!(
                    warm_plan.estimated_makespan_ms().to_bits(),
                    fresh_plan.estimated_makespan_ms().to_bits()
                );
            }
            (Err(warm_err), Err(fresh_err)) => prop_assert_eq!(warm_err, fresh_err),
            _ => prop_assert!(
                false,
                "warm/fresh recovery outcomes diverged: warm ok={} fresh ok={}",
                warm_out.is_ok(),
                fresh_out.is_ok()
            ),
        }
    }
}
