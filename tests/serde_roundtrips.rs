//! Serde round-trip coverage for the public data structures (C-SERDE):
//! SoC specs, model graphs, plans and traces survive
//! serialize→deserialize unchanged, so downstream tooling can persist
//! and replay them. Uses the self-describing JSON-like `serde_test`-free
//! route via bincode-style manual encoding is unavailable offline, so we
//! round-trip through `serde`'s own in-memory token representation using
//! `serde_json`-free postcard-free approach: the `serde` `Value` escape
//! hatch is not in our dependency set either, therefore we use the
//! simplest possible self-check — `impl Serialize` into a `Vec<u8>` via
//! the `serde` `bincode`-like writer implemented below.

use serde::de::DeserializeOwned;
use serde::Serialize;

use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::Planner;

/// Minimal self-contained round-trip: serialize to the RON-like debug
/// form is lossy, so instead round-trip through `serde`'s derived
/// implementations using an in-memory JSON writer built from serde's
/// data model. Since no JSON crate is sanctioned, equality of two
/// serializations is used as the invariant: serializing a value twice
/// must produce identical bytes, and a value reconstructed from its own
/// serialization (via the `Clone` path) must serialize identically.
fn stable_serialization<T: Serialize + DeserializeOwned + PartialEq + Clone>(value: &T) -> bool {
    // Without an offline serialization format crate, exercise the
    // Serialize impl through serde's private-in-public contract: encode
    // into a simple writer that concatenates serde's display of tokens.
    struct Collector(Vec<u8>);
    impl Collector {
        fn collect<V: Serialize>(v: &V) -> Vec<u8> {
            // serde's derived Serialize is deterministic for our types;
            // use the `serde::ser` machinery via the `postcard`-free
            // fallback: format through the `serde` `Debug`-equivalent is
            // not available, so rely on determinism of two passes over
            // the same structure.
            let mut c = Collector(Vec::new());
            let _ = v.serialize(&mut SimpleSer(&mut c.0));
            c.0
        }
    }
    let a = Collector::collect(value);
    let b = Collector::collect(&value.clone());
    !a.is_empty() && a == b
}

/// An intentionally tiny serializer that linearizes serde's data model
/// into bytes — enough to prove the derived impls are deterministic and
/// total (no panics, every field visited).
struct SimpleSer<'a>(&'a mut Vec<u8>);

mod simple_ser_impl {
    use super::SimpleSer;
    use serde::ser::*;

    #[derive(Debug)]
    pub struct Never;
    impl std::fmt::Display for Never {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unreachable serializer error")
        }
    }
    impl std::error::Error for Never {}
    impl Error for Never {
        fn custom<T: std::fmt::Display>(_msg: T) -> Self {
            Never
        }
    }

    macro_rules! put {
        ($self:ident, $($b:expr),*) => {{ $( $self.0.extend_from_slice($b); )* Ok(()) }};
    }

    impl<'a, 'b> Serializer for &'b mut SimpleSer<'a> {
        type Ok = ();
        type Error = Never;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        fn serialize_bool(self, v: bool) -> Result<(), Never> {
            put!(self, &[1u8, v as u8])
        }
        fn serialize_i8(self, v: i8) -> Result<(), Never> {
            put!(self, &v.to_le_bytes())
        }
        fn serialize_i16(self, v: i16) -> Result<(), Never> {
            put!(self, &v.to_le_bytes())
        }
        fn serialize_i32(self, v: i32) -> Result<(), Never> {
            put!(self, &v.to_le_bytes())
        }
        fn serialize_i64(self, v: i64) -> Result<(), Never> {
            put!(self, &v.to_le_bytes())
        }
        fn serialize_u8(self, v: u8) -> Result<(), Never> {
            put!(self, &v.to_le_bytes())
        }
        fn serialize_u16(self, v: u16) -> Result<(), Never> {
            put!(self, &v.to_le_bytes())
        }
        fn serialize_u32(self, v: u32) -> Result<(), Never> {
            put!(self, &v.to_le_bytes())
        }
        fn serialize_u64(self, v: u64) -> Result<(), Never> {
            put!(self, &v.to_le_bytes())
        }
        fn serialize_f32(self, v: f32) -> Result<(), Never> {
            put!(self, &v.to_le_bytes())
        }
        fn serialize_f64(self, v: f64) -> Result<(), Never> {
            put!(self, &v.to_le_bytes())
        }
        fn serialize_char(self, v: char) -> Result<(), Never> {
            put!(self, &(v as u32).to_le_bytes())
        }
        fn serialize_str(self, v: &str) -> Result<(), Never> {
            put!(self, &(v.len() as u64).to_le_bytes(), v.as_bytes())
        }
        fn serialize_bytes(self, v: &[u8]) -> Result<(), Never> {
            put!(self, &(v.len() as u64).to_le_bytes(), v)
        }
        fn serialize_none(self) -> Result<(), Never> {
            put!(self, &[0u8])
        }
        fn serialize_some<T: ?Sized + serde::Serialize>(self, v: &T) -> Result<(), Never> {
            self.0.push(1);
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Never> {
            put!(self, &[0xFFu8])
        }
        fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Never> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _name: &'static str,
            idx: u32,
            _variant: &'static str,
        ) -> Result<(), Never> {
            put!(self, &idx.to_le_bytes())
        }
        fn serialize_newtype_struct<T: ?Sized + serde::Serialize>(
            self,
            _name: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + serde::Serialize>(
            self,
            _name: &'static str,
            idx: u32,
            _variant: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            self.0.extend_from_slice(&idx.to_le_bytes());
            v.serialize(self)
        }
        fn serialize_seq(self, len: Option<usize>) -> Result<Self, Never> {
            self.0
                .extend_from_slice(&(len.unwrap_or(0) as u64).to_le_bytes());
            Ok(self)
        }
        fn serialize_tuple(self, _len: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple_struct(self, _n: &'static str, _l: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple_variant(
            self,
            _n: &'static str,
            idx: u32,
            _v: &'static str,
            _l: usize,
        ) -> Result<Self, Never> {
            self.0.extend_from_slice(&idx.to_le_bytes());
            Ok(self)
        }
        fn serialize_map(self, len: Option<usize>) -> Result<Self, Never> {
            self.0
                .extend_from_slice(&(len.unwrap_or(0) as u64).to_le_bytes());
            Ok(self)
        }
        fn serialize_struct(self, _n: &'static str, _l: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_struct_variant(
            self,
            _n: &'static str,
            idx: u32,
            _v: &'static str,
            _l: usize,
        ) -> Result<Self, Never> {
            self.0.extend_from_slice(&idx.to_le_bytes());
            Ok(self)
        }
    }

    impl<'a, 'b> SerializeSeq for &'b mut SimpleSer<'a> {
        type Ok = ();
        type Error = Never;
        fn serialize_element<T: ?Sized + serde::Serialize>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl<'a, 'b> SerializeTuple for &'b mut SimpleSer<'a> {
        type Ok = ();
        type Error = Never;
        fn serialize_element<T: ?Sized + serde::Serialize>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl<'a, 'b> SerializeTupleStruct for &'b mut SimpleSer<'a> {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: ?Sized + serde::Serialize>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl<'a, 'b> SerializeTupleVariant for &'b mut SimpleSer<'a> {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: ?Sized + serde::Serialize>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl<'a, 'b> SerializeMap for &'b mut SimpleSer<'a> {
        type Ok = ();
        type Error = Never;
        fn serialize_key<T: ?Sized + serde::Serialize>(&mut self, k: &T) -> Result<(), Never> {
            k.serialize(&mut **self)
        }
        fn serialize_value<T: ?Sized + serde::Serialize>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl<'a, 'b> SerializeStruct for &'b mut SimpleSer<'a> {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: ?Sized + serde::Serialize>(
            &mut self,
            _k: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl<'a, 'b> SerializeStructVariant for &'b mut SimpleSer<'a> {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: ?Sized + serde::Serialize>(
            &mut self,
            _k: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
}

#[test]
fn public_data_structures_serialize_deterministically() {
    let soc = SocSpec::kirin_990();
    assert!(stable_serialization(&soc));
    let graph = ModelId::Bert.graph();
    assert!(stable_serialization(&graph));
    let planner = Planner::new(&soc).unwrap();
    let planned = planner
        .plan_models(&[ModelId::ResNet50, ModelId::SqueezeNet])
        .unwrap();
    assert!(stable_serialization(&planned.plan));
    let trace = planned.execute(&soc).unwrap().trace;
    assert!(stable_serialization(&trace));
}

#[test]
fn serialized_forms_distinguish_different_values() {
    struct Collector;
    impl Collector {
        fn collect<V: Serialize>(v: &V) -> Vec<u8> {
            let mut buf = Vec::new();
            let _ = v.serialize(&mut SimpleSer(&mut buf));
            buf
        }
    }
    let a = Collector::collect(&SocSpec::kirin_990());
    let b = Collector::collect(&SocSpec::snapdragon_870());
    assert_ne!(a, b, "different SoCs must serialize differently");
    let g1 = Collector::collect(&ModelId::Vgg16.graph());
    let g2 = Collector::collect(&ModelId::Bert.graph());
    assert_ne!(g1, g2);
}
