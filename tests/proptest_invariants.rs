//! Property-based tests over the core algorithms and data structures:
//! optimality of the partition DP, optimality of the Hungarian solver,
//! permutation/resolution invariants of contention mitigation, plan
//! tiling after the full planning pipeline, simulator determinism and
//! batching conservation.

use proptest::prelude::*;

use h2p_contention::ContentionClass;
use h2p_models::zoo::ModelId;
use h2p_simulator::engine::{Simulation, TaskSpec};
use h2p_simulator::{ProcessorId, SocSpec};
use hetero2pipe::{batching, lap, mitigation, partition};

/// Builds a prefix-sum oracle from per-slot layer times.
fn oracle(times: Vec<Vec<f64>>) -> impl Fn(usize, usize, usize) -> Option<f64> {
    let prefix: Vec<Vec<f64>> = times
        .iter()
        .map(|row| {
            let mut p = vec![0.0];
            for &t in row {
                p.push(p.last().unwrap() + t);
            }
            p
        })
        .collect();
    move |slot, i, j| {
        if slot >= prefix.len() || j >= prefix[slot].len() - 1 || i > j {
            None
        } else {
            Some(prefix[slot][j + 1] - prefix[slot][i])
        }
    }
}

/// Pinned regression from `proptest_invariants.proptest-regressions`:
/// `mitigation_invariants` once failed on three leading ℍ requests with a
/// window wider than the remaining 𝕃 spacers can absorb
/// (`classes = [ℍ, ℍ, ℍ, 𝕃, 𝕃, 𝕃, 𝕃, 𝕃], window = 4`). The shrunken
/// input is re-checked here explicitly, independent of the generator.
#[test]
fn mitigation_regression_three_highs_window_four() {
    use ContentionClass::{High, Low};
    let classes = [High, High, High, Low, Low, Low, Low, Low];
    let window = 4;
    let out = mitigation::mitigate(&classes, window);
    // Always a permutation of the request indices.
    let mut sorted = out.order.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..classes.len()).collect::<Vec<_>>());
    // Resolution claims must be truthful.
    let after: Vec<ContentionClass> = out.order.iter().map(|&i| classes[i]).collect();
    if out.resolved {
        assert!(!mitigation::has_conflict(&after, window));
    }
    if out.moves == 0 {
        assert_eq!(out.displacement_cost, 0.0);
    }
    // Mitigation never makes the schedule worse (Property 3): the number
    // of ℍ pairs closer than the window cannot grow.
    let conflicts = |seq: &[ContentionClass]| -> usize {
        let highs: Vec<usize> = seq
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_high())
            .map(|(i, _)| i)
            .collect();
        highs.windows(2).filter(|w| w[1] - w[0] < window).count()
    };
    assert!(conflicts(&after) <= conflicts(&classes));
}

/// Pinned regression from `proptest_invariants.proptest-regressions`:
/// `partition_dp_is_optimal` once failed at `n = 7, k = 4` with
/// `seed = 9518207659292512946` — the heterogeneous cost matrix where the
/// balance-point DP's prefix optimum is not monotone (see the exactness
/// caveat on `min_max_partition_fast`). The generator's LCG is replayed
/// here verbatim so the exact matrix is re-checked on every run.
#[test]
fn partition_regression_seven_layers_four_slots() {
    let (n, k) = (7usize, 4usize);
    let seed: u64 = 9518207659292512946;
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) % 100 + 1) as f64 / 10.0
    };
    let times: Vec<Vec<f64>> = (0..k).map(|_| (0..n).map(|_| next()).collect()).collect();
    let homogeneous_row: Vec<f64> = (0..n).map(|_| next()).collect();
    let homogeneous: Vec<Vec<f64>> = (0..k).map(|_| homogeneous_row.clone()).collect();
    let c = oracle(times);
    let ch = oracle(homogeneous);
    let dp = partition::min_max_partition(n, k, &c).expect("feasible");
    let fast = partition::min_max_partition_fast(n, k, &c).expect("feasible");
    let brute = partition::min_max_partition_exhaustive(n, k, &c).expect("feasible");
    // The reference DP is exact; the fast variant is a feasible upper
    // bound on heterogeneous oracles and exact on homogeneous ones.
    assert!((dp.makespan_ms - brute.makespan_ms).abs() < 1e-9);
    assert!(fast.makespan_ms >= brute.makespan_ms - 1e-9);
    let dph = partition::min_max_partition(n, k, &ch).expect("feasible");
    let fasth = partition::min_max_partition_fast(n, k, &ch).expect("feasible");
    assert!((fasth.makespan_ms - dph.makespan_ms).abs() < 1e-9);
    assert!(dp.splits.windows(2).all(|w| w[0] < w[1]));
    assert!(dp.splits.iter().all(|&s| s > 0 && s < n));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The reference DP always matches brute-force enumeration on
    /// arbitrary heterogeneous oracles; the fast balance-point variant is
    /// exact on homogeneous oracles and never better than optimal (it
    /// returns a real partition) on heterogeneous ones.
    #[test]
    fn partition_dp_is_optimal(
        n in 2usize..10,
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let k = k.min(n);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 100 + 1) as f64 / 10.0
        };
        let times: Vec<Vec<f64>> = (0..k).map(|_| (0..n).map(|_| next()).collect()).collect();
        let homogeneous_row: Vec<f64> = (0..n).map(|_| next()).collect();
        let homogeneous: Vec<Vec<f64>> = (0..k).map(|_| homogeneous_row.clone()).collect();
        let c = oracle(times);
        let ch = oracle(homogeneous);
        let dp = partition::min_max_partition(n, k, &c).expect("feasible");
        let fast = partition::min_max_partition_fast(n, k, &c).expect("feasible");
        let brute = partition::min_max_partition_exhaustive(n, k, &c).expect("feasible");
        prop_assert!((dp.makespan_ms - brute.makespan_ms).abs() < 1e-9);
        // Heterogeneous: the fast variant is a feasible upper bound.
        prop_assert!(fast.makespan_ms >= brute.makespan_ms - 1e-9);
        // Homogeneous: it is exact.
        let dph = partition::min_max_partition(n, k, &ch).expect("feasible");
        let fasth = partition::min_max_partition_fast(n, k, &ch).expect("feasible");
        prop_assert!((fasth.makespan_ms - dph.makespan_ms).abs() < 1e-9);
        // Splits are strictly ascending and in range.
        prop_assert!(dp.splits.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(dp.splits.iter().all(|&s| s > 0 && s < n));
        // The reported makespan equals the max stage time.
        let max_stage = dp.stage_ms.iter().copied().fold(0.0, f64::max);
        prop_assert!((dp.makespan_ms - max_stage).abs() < 1e-12);
    }

    /// The Hungarian solver is optimal against permutation brute force
    /// (including infeasible pairings) on small matrices.
    #[test]
    fn hungarian_is_optimal(
        n in 1usize..5,
        extra in 0usize..3,
        seed in any::<u64>(),
    ) {
        let m = n + extra;
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            state >> 33
        };
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..m)
                    .map(|_| {
                        if next() % 5 == 0 {
                            f64::INFINITY
                        } else {
                            (next() % 100) as f64
                        }
                    })
                    .collect()
            })
            .collect();
        // Brute force over all injections rows -> cols.
        fn brute(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> Option<f64> {
            if row == cost.len() {
                return Some(0.0);
            }
            let mut best: Option<f64> = None;
            for c in 0..cost[0].len() {
                if used[c] || !cost[row][c].is_finite() {
                    continue;
                }
                used[c] = true;
                if let Some(rest) = brute(cost, row + 1, used) {
                    let total = cost[row][c] + rest;
                    if best.is_none_or(|b| total < b) {
                        best = Some(total);
                    }
                }
                used[c] = false;
            }
            best
        }
        let expected = brute(&cost, 0, &mut vec![false; m]);
        let got = lap::solve(&cost).map(|a| a.total_cost);
        match (expected, got) {
            (Some(e), Some(g)) => prop_assert!((e - g).abs() < 1e-9, "expected {e}, got {g}"),
            (None, None) => {}
            other => prop_assert!(false, "feasibility mismatch: {other:?}"),
        }
    }

    /// Mitigation always returns a permutation; when it reports resolved,
    /// no two ℍ requests sit closer than the window.
    #[test]
    fn mitigation_invariants(
        classes in prop::collection::vec(prop::bool::ANY, 1..24),
        window in 1usize..5,
    ) {
        let classes: Vec<ContentionClass> = classes
            .into_iter()
            .map(|b| if b { ContentionClass::High } else { ContentionClass::Low })
            .collect();
        let out = mitigation::mitigate(&classes, window);
        let mut sorted = out.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..classes.len()).collect::<Vec<_>>());
        if out.resolved {
            let after: Vec<ContentionClass> =
                out.order.iter().map(|&i| classes[i]).collect();
            prop_assert!(!mitigation::has_conflict(&after, window));
        }
        // Moves and cost are consistent: zero moves implies zero cost.
        if out.moves == 0 {
            prop_assert_eq!(out.displacement_cost, 0.0);
        }
    }

    /// Mitigation never increases the number of *conflicting adjacent ℍ
    /// pairs* (pairs closer than the window — exactly what Property 3
    /// counts relocations against), whether or not it fully resolves;
    /// and a resolved outcome has zero such pairs.
    #[test]
    fn mitigation_never_increases_conflicting_pairs(
        classes in prop::collection::vec(prop::bool::ANY, 2..28),
        window in 2usize..5,
    ) {
        let classes: Vec<ContentionClass> = classes
            .into_iter()
            .map(|b| if b { ContentionClass::High } else { ContentionClass::Low })
            .collect();
        let conflicts = |seq: &[ContentionClass]| -> usize {
            let highs: Vec<usize> = seq
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_high())
                .map(|(i, _)| i)
                .collect();
            highs.windows(2).filter(|w| w[1] - w[0] < window).count()
        };
        let before = conflicts(&classes);
        let out = mitigation::mitigate(&classes, window);
        let after_seq: Vec<ContentionClass> =
            out.order.iter().map(|&i| classes[i]).collect();
        let after = conflicts(&after_seq);
        prop_assert!(
            after <= before,
            "conflicting pairs grew {before} -> {after} for {classes:?}"
        );
        if out.resolved {
            prop_assert_eq!(after, 0);
        }
    }

    /// The simulator is deterministic and conserves its memory ledger for
    /// arbitrary task sets.
    #[test]
    fn simulator_determinism_and_ledger(
        specs in prop::collection::vec(
            (0usize..4, 1u64..500, 0u64..200_000_000u64, 0u32..3),
            1..20,
        ),
    ) {
        let build = || {
            let mut soc = SocSpec::kirin_990();
            soc.thermal_mode = h2p_simulator::thermal::ThermalMode::Disabled;
            let mut sim = Simulation::new(soc);
            let mut prev = None;
            for (i, &(proc, ms, bytes, dep)) in specs.iter().enumerate() {
                let mut t = TaskSpec::new(format!("t{i}"), ProcessorId(proc), ms as f64 / 10.0)
                    .intensity((i % 5) as f64 / 5.0)
                    .footprint(bytes);
                if dep == 1 {
                    if let Some(p) = prev {
                        t = t.after(p);
                    }
                }
                prev = Some(sim.add_task(t));
            }
            sim.run().expect("acyclic task set runs")
        };
        let a = build();
        let b = build();
        prop_assert_eq!(&a.spans, &b.spans);
        // Ledger conservation: the final memory sample shows everything
        // released.
        let last = a.memory.last().expect("samples exist");
        prop_assert_eq!(last.allocated_bytes, 0);
        // Spans never overlap on a single processor.
        for p in 0..4 {
            let mut spans: Vec<_> = a
                .spans
                .iter()
                .filter(|s| s.processor == ProcessorId(p))
                .collect();
            spans.sort_by(|x, y| x.start_ms.total_cmp(&y.start_ms));
            for w in spans.windows(2) {
                prop_assert!(w[1].start_ms >= w[0].end_ms - 1e-9);
            }
        }
    }

    /// Batching conserves requests and never reorders across groups.
    #[test]
    fn batching_conserves_requests(
        picks in prop::collection::vec(0usize..10, 1..40),
        max_batch in 1u32..9,
    ) {
        let ids: Vec<ModelId> = picks.iter().map(|&i| ModelId::ALL[i]).collect();
        let groups = batching::coalesce(&ids, max_batch);
        let total: u32 = groups.iter().map(|g| g.batch).sum();
        prop_assert_eq!(total as usize, ids.len());
        prop_assert!(groups.iter().all(|g| g.batch <= max_batch));
        // Heavy models never batch.
        prop_assert!(groups
            .iter()
            .all(|g| g.batch == 1 || g.model.is_lightweight()));
        // Expanding groups in order reproduces the original sequence.
        let expanded: Vec<ModelId> = groups
            .iter()
            .flat_map(|g| std::iter::repeat_n(g.model, g.batch as usize))
            .collect();
        prop_assert_eq!(expanded, ids);
    }

    /// Scaled batch graphs preserve layer count and weights while scaling
    /// work linearly.
    #[test]
    fn batched_graph_scaling(model in 0usize..10, b in 1u32..17) {
        let g = ModelId::ALL[model].graph();
        let s = batching::batched_graph(&g, b);
        prop_assert_eq!(s.len(), g.len());
        prop_assert_eq!(s.weight_bytes(), g.weight_bytes());
        let ratio = s.total_flops() / g.total_flops();
        prop_assert!((ratio - b as f64).abs() < 1e-9);
    }
}

proptest! {
    // Planning is expensive (each case trains a regression), so this
    // block runs fewer cases than the algorithmic properties above.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any workload the planner produces must execute to a trace that
    /// passes the full simulator audit: the trace-audit layer treats
    /// planner output as its cleanliness baseline.
    #[test]
    fn planned_workloads_audit_clean(
        picks in prop::collection::vec(0usize..10, 1..5),
    ) {
        use hetero2pipe::executor::lower;
        use hetero2pipe::planner::Planner;

        let ids: Vec<ModelId> = picks.iter().map(|&i| ModelId::ALL[i]).collect();
        let graphs: Vec<_> = ids.iter().map(|m| m.graph()).collect();
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).expect("planner trains");
        let planned = planner.plan(&graphs).expect("plans");
        let lowered = lower(&planned.plan, &soc).expect("lowers");
        let tasks = lowered.simulation().tasks().to_vec();
        let (report, events) = lowered.execute_logged().expect("executes");
        let audit = h2p_simulator::audit::audit(&soc, &tasks, &report.trace);
        prop_assert!(audit.is_clean(), "audit violations:\n{audit}");
        // The event log brackets every span.
        let finishes = events
            .iter()
            .filter(|e| matches!(e, h2p_simulator::EngineEvent::Finish { .. }))
            .count();
        prop_assert_eq!(finishes, report.trace.spans.len());
    }

    /// Any plan the planner produces, on any evaluation platform, must
    /// pass the static verifier with zero errors *before* execution —
    /// `h2p lint` treats planner output as its cleanliness baseline,
    /// mirroring what `planned_workloads_audit_clean` establishes for the
    /// dynamic trace audit. The lowered task graph must lint clean too.
    #[test]
    fn planned_workloads_lint_clean(
        picks in prop::collection::vec(0usize..10, 1..5),
        soc_pick in 0usize..3,
    ) {
        use hetero2pipe::planner::Planner;

        let ids: Vec<ModelId> = picks.iter().map(|&i| ModelId::ALL[i]).collect();
        let graphs: Vec<_> = ids.iter().map(|m| m.graph()).collect();
        let soc = SocSpec::evaluation_platforms()
            .into_iter()
            .nth(soc_pick)
            .expect("three platforms");
        let planner = Planner::new(&soc).expect("planner trains");
        let planned = planner.plan(&graphs).expect("plans");
        let diags = planned.lint(&soc);
        prop_assert!(diags.is_clean(), "static lint errors for {ids:?} on {}:\n{diags}", soc.name);
        let lowered = planned.lower(&soc).expect("lowers");
        let task_diags = lowered.lint();
        prop_assert!(task_diags.is_clean(), "task-graph lint errors:\n{task_diags}");
    }

    /// Every corruption class, applied to any planner-produced plan,
    /// must be caught by the static verifier — the mutation harness is
    /// only meaningful if no workload lets a damaged plan slip through.
    #[test]
    fn mutated_plans_never_lint_clean(
        picks in prop::collection::vec(0usize..10, 1..5),
    ) {
        use hetero2pipe::planner::Planner;

        let ids: Vec<ModelId> = picks.iter().map(|&i| ModelId::ALL[i]).collect();
        let graphs: Vec<_> = ids.iter().map(|m| m.graph()).collect();
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).expect("planner trains");
        let planned = planner.plan(&graphs).expect("plans");
        for m in h2p_analyze::Mutation::ALL {
            let mut ir = planned.plan_ir();
            prop_assert!(h2p_analyze::apply(&mut ir, m), "{} found nothing to corrupt", m.name());
            let diags = h2p_analyze::lint_plan(&soc, &ir);
            prop_assert!(
                !diags.is_clean(),
                "{} slipped past the lint for {ids:?}:\n{diags}",
                m.name()
            );
        }
    }
}
