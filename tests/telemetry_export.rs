//! Telemetry export tests: a golden-schema check of the Chrome Trace
//! document produced from a fixed two-task simulation, and a property
//! test that the event-log → trace mapping is exact and lossless for
//! arbitrary workloads (every `Start`/`Finish` pair becomes exactly one
//! `X` slice, every `Rate` event one `C` sample, every `Ready` event
//! one instant).

use proptest::prelude::*;

use h2p_simulator::engine::{EngineEvent, Simulation, TaskSpec};
use h2p_simulator::export::{chrome_trace, record_trace_metrics, ENGINE_PID};
use h2p_simulator::{ProcessorId, SocSpec};
use h2p_telemetry::MetricsRegistry;

/// Runs a simulation, returning (tasks, trace, events, chrome doc).
fn run_and_export(
    soc: &SocSpec,
    specs: Vec<TaskSpec>,
) -> (
    Vec<TaskSpec>,
    h2p_simulator::Trace,
    Vec<EngineEvent>,
    h2p_telemetry::chrome::TraceDoc,
) {
    let mut sim = Simulation::new(soc.clone());
    for spec in specs {
        sim.add_task(spec);
    }
    let tasks = sim.tasks().to_vec();
    let (trace, events) = sim.run_with_events().expect("runs");
    let doc = chrome_trace(soc, &tasks, &events);
    (tasks, trace, events, doc)
}

/// Golden-schema test: a fixed two-task co-execution on the Kirin 990
/// must export a Chrome Trace document with the exact expected shape —
/// metadata records naming the process and every processor track, one
/// `X` slice per task with microsecond timestamps matching the trace,
/// and JSON text carrying all the fields Perfetto requires.
#[test]
fn chrome_export_golden_two_task_coexecution() {
    let soc = SocSpec::kirin_990();
    let (tasks, trace, _, doc) = run_and_export(
        &soc,
        vec![
            TaskSpec::new("alpha", ProcessorId(0), 10.0).intensity(1.0),
            TaskSpec::new("beta", ProcessorId(1), 8.0).intensity(1.0),
        ],
    );
    doc.validate().expect("schema-valid document");

    // Metadata: a process_name record plus one thread_name per processor.
    let metas: Vec<_> = doc.events.iter().filter(|e| e.ph == 'M').collect();
    assert!(metas
        .iter()
        .any(|e| e.name == "process_name" && e.pid == ENGINE_PID));
    let thread_names = metas.iter().filter(|e| e.name == "thread_name").count();
    assert_eq!(thread_names, soc.processors.len());

    // Exactly one X slice per task, on the right track, with timestamps
    // equal to the executed trace spans converted to microseconds.
    let slices: Vec<_> = doc.events.iter().filter(|e| e.ph == 'X').collect();
    assert_eq!(slices.len(), tasks.len());
    for (t, spec) in tasks.iter().enumerate() {
        let span = trace.span(t).expect("span exists");
        let slice = slices
            .iter()
            .find(|e| e.name == spec.label)
            .expect("one slice per task");
        assert_eq!(slice.pid, ENGINE_PID);
        assert_eq!(slice.tid, span.processor.index() as u64);
        assert!((slice.ts_us - span.start_ms * 1000.0).abs() < 1e-6);
        let dur = slice.dur_us.expect("X slices carry dur");
        assert!((dur - (span.end_ms - span.start_ms) * 1000.0).abs() < 1e-6);
    }

    // Both tasks start at t=0 on different processors, so each sees the
    // other as interference: durations must exceed solo times.
    for (t, spec) in tasks.iter().enumerate() {
        let span = trace.span(t).expect("span");
        assert!(span.end_ms - span.start_ms > spec.solo_ms - 1e-9);
    }

    // The serialized JSON carries every field the Trace Event Format
    // requires, and nothing parses as NaN/inf.
    let json = doc.to_json();
    for field in [
        "\"traceEvents\"",
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
        "\"ts\":",
        "\"dur\":",
        "\"pid\":1",
        "\"tid\":",
        "\"cat\":\"task\"",
        "\"slowdown\"",
    ] {
        assert!(json.contains(field), "missing {field} in:\n{json}");
    }
    assert!(!json.contains("NaN") && !json.contains("inf"));

    // The same run folds into a non-empty metrics snapshot with one
    // busy-time gauge per processor that saw work.
    let metrics = MetricsRegistry::new();
    record_trace_metrics(&soc, &trace, &metrics);
    let snap = metrics.snapshot();
    assert!(!snap.is_empty());
    assert!(snap.gauge("engine.makespan_ms").is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The event-log → Chrome-trace mapping is exact for arbitrary
    /// workloads: every engine event lands in exactly one trace record
    /// of the matching phase, and the document always validates.
    #[test]
    fn every_engine_event_maps_to_one_trace_record(
        durs in prop::collection::vec(1u32..200, 1..12),
        seed in any::<u64>(),
    ) {
        let soc = SocSpec::kirin_990();
        let nprocs = soc.processors.len();
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        let specs: Vec<TaskSpec> = durs
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                TaskSpec::new(format!("t{i}"), ProcessorId(next() % nprocs), d as f64 / 10.0)
                    .intensity((next() % 100) as f64 / 100.0)
                    .release((next() % 50) as f64)
            })
            .collect();
        let (_, _, events, doc) = run_and_export(&soc, specs);
        if let Err(e) = doc.validate() {
            return Err(TestCaseError::fail(format!("invalid document: {e}")));
        }

        let count = |pred: &dyn Fn(&&EngineEvent) -> bool| events.iter().filter(pred).count();
        let starts = count(&|e| matches!(e, EngineEvent::Start { .. }));
        let finishes = count(&|e| matches!(e, EngineEvent::Finish { .. }));
        let rates = count(&|e| matches!(e, EngineEvent::Rate { .. }));
        let readies = count(&|e| matches!(e, EngineEvent::Ready { .. }));
        prop_assert_eq!(starts, finishes);

        let slices = doc.events.iter().filter(|e| e.ph == 'X').count();
        let counters = doc.events.iter().filter(|e| e.ph == 'C').count();
        let instants = doc
            .events
            .iter()
            .filter(|e| e.ph == 'i' && e.cat == "ready")
            .count();
        prop_assert_eq!(slices, finishes, "one X slice per Start/Finish pair");
        prop_assert_eq!(counters, rates, "one C sample per Rate event");
        prop_assert_eq!(instants, readies, "one instant per Ready event");

        // Every X slice brackets the matching Start/Finish times.
        for slice in doc.events.iter().filter(|e| e.ph == 'X') {
            let dur = slice.dur_us.unwrap_or(0.0);
            let matched = events.iter().any(|e| match e {
                EngineEvent::Finish { time_ms, duration_ms, .. } => {
                    ((time_ms - duration_ms) * 1000.0 - slice.ts_us).abs() < 1e-6
                        && (duration_ms * 1000.0 - dur).abs() < 1e-6
                }
                _ => false,
            });
            prop_assert!(matched, "slice {} has no Finish event", slice.name);
        }
    }
}
