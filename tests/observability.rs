//! End-to-end observability tests: the request lifecycle stream, the
//! derived analytics, and the `h2p report` CLI must all reconcile with
//! the ground truth the executor and the audit replay establish.

use std::process::Command;

use h2p_models::zoo::ModelId;
use h2p_simulator::engine::request_of_label;
use h2p_simulator::FaultSpec;
use h2p_simulator::SocSpec;
use h2p_telemetry::analytics::{ExecSpan, UtilizationTimeline};
use h2p_telemetry::lifecycle::{self, LifecycleLog, LifecycleStage, RequestId, TraceId};
use hetero2pipe::executor::record_request_lifecycle;
use hetero2pipe::planner::Planner;
use hetero2pipe::recovery::{run_with_recovery, RecoveryOutcome, RecoveryPolicy};

fn h2p(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_h2p"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("h2p-observability-{}-{name}", std::process::id()));
    p
}

#[test]
fn lifecycle_stream_reconciles_with_execution_report() {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).unwrap();
    let ids = [ModelId::Bert, ModelId::ResNet50, ModelId::MobileNetV2];
    let planned = planner.plan_models(&ids).unwrap();
    let report = planned.execute(&soc).unwrap();

    let log = LifecycleLog::new();
    let trace_id = TraceId::of_names(ids.iter().map(|m| m.name()));
    for r in 0..ids.len() {
        log.record(trace_id, RequestId(r), 0.0, LifecycleStage::Admit);
        log.record(trace_id, RequestId(r), 0.0, LifecycleStage::Plan);
    }
    record_request_lifecycle(&log, trace_id, &report, 0.0);

    let events = log.records();
    assert!(
        lifecycle::validate(&events).is_empty(),
        "lifecycle stream must be causally valid"
    );
    // Exactly one completion per request, and its latency is the
    // executor's ground truth.
    for (r, &lat) in report.request_latency_ms.iter().enumerate() {
        let completions: Vec<f64> = events
            .iter()
            .filter(|e| e.request.0 == r)
            .filter_map(|e| match e.stage {
                LifecycleStage::Complete { latency_ms } => Some(latency_ms),
                _ => None,
            })
            .collect();
        assert_eq!(completions.len(), 1, "request {r}");
        assert!(
            (completions[0] - lat).abs() < 1e-9,
            "request {r}: lifecycle {} vs report {lat}",
            completions[0]
        );
    }
}

#[test]
fn utilization_timeline_reconciles_with_trace() {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).unwrap();
    let planned = planner
        .plan_models(&[ModelId::Bert, ModelId::ResNet50, ModelId::SqueezeNet])
        .unwrap();
    let report = planned.execute(&soc).unwrap();

    let spans: Vec<ExecSpan> = report
        .trace
        .spans
        .iter()
        .map(|s| ExecSpan {
            request: request_of_label(&s.label),
            processor: s.processor.index(),
            start_ms: s.start_ms,
            end_ms: s.end_ms,
        })
        .collect();
    let timeline = UtilizationTimeline::compute(&spans, soc.processors.len());

    // The analytics bubble definition matches `Trace::idle_bubble_ms`.
    assert!(
        (timeline.total_bubble_ms() - report.trace.idle_bubble_ms()).abs() < 1e-6,
        "analytics {} vs trace {}",
        timeline.total_bubble_ms(),
        report.trace.idle_bubble_ms()
    );
    // Per-processor busy time matches the trace accounting.
    for u in &timeline.processors {
        let id = h2p_simulator::ProcessorId(u.processor);
        assert!(
            (u.busy_ms - report.trace.busy_ms(id)).abs() < 1e-6,
            "processor {}",
            u.processor
        );
    }
    assert!((timeline.horizon_ms - report.makespan_ms).abs() < 1e-9);
}

#[test]
fn recovery_lifecycle_is_causally_valid_and_closed() {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).unwrap();
    let victim = planner.pipeline_procs()[0];
    let faults = [FaultSpec::ProcessorDropout {
        processor: victim,
        at_ms: 5.0,
    }];
    let reqs: Vec<_> = [ModelId::MobileNetV2, ModelId::SqueezeNet]
        .iter()
        .map(|m| m.graph())
        .collect();
    let report = run_with_recovery(&planner, &reqs, &faults, &RecoveryPolicy::default()).unwrap();

    let events = planner.telemetry().lifecycle.records();
    assert!(
        lifecycle::validate(&events).is_empty(),
        "recovery lifecycle must be causally valid"
    );
    // Every request's history closes: a Complete when the runner says it
    // completed, a Degrade otherwise.
    for (r, &done) in report.completed.iter().enumerate() {
        let completed = events
            .iter()
            .any(|e| e.request.0 == r && matches!(e.stage, LifecycleStage::Complete { .. }));
        let degraded = events
            .iter()
            .any(|e| e.request.0 == r && matches!(e.stage, LifecycleStage::Degrade { .. }));
        assert_eq!(completed, done, "request {r} completion mismatch");
        if matches!(report.outcome, RecoveryOutcome::Recovered) {
            assert!(!degraded, "request {r} degraded in a recovered run");
        }
        assert!(completed || degraded, "request {r} history left open");
    }
}

#[test]
fn report_reconciles_on_live_run() {
    let (stdout, stderr, ok) = h2p(&["report", "--soc", "kirin990", "bert", "resnet50"]);
    assert!(ok, "report must reconcile: {stdout}\n{stderr}");
    assert!(
        stdout.contains("latency quantiles by QoS class"),
        "{stdout}"
    );
    assert!(stdout.contains("utilization:"), "{stdout}");
    assert!(
        stdout.contains("replay and lifecycle reconcile"),
        "{stdout}"
    );
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn report_reconciles_on_chaos_scenario() {
    let (stdout, stderr, ok) = h2p(&["report", "--chaos-seed", "3"]);
    assert!(ok, "chaos report must reconcile: {stdout}\n{stderr}");
    assert!(stdout.contains("chaos seed 3"), "{stdout}");
    assert!(
        stdout.contains("replay and lifecycle reconcile"),
        "{stdout}"
    );
    for quantile in ["p50", "p95", "p99"] {
        assert!(stdout.contains(quantile), "{quantile} missing: {stdout}");
    }
    assert!(stdout.contains("miss(es) across"), "{stdout}");
}

#[test]
fn report_json_is_schema_stamped_and_reconciled() {
    let (stdout, _, ok) = h2p(&["report", "--json", "bert", "mobilenetv2"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"schema\":\"h2p-report/v1\""), "{stdout}");
    assert!(stdout.contains("\"reconciled\":true"), "{stdout}");
    assert!(stdout.contains("\"p99_ms\":"), "{stdout}");
    assert!(stdout.contains("\"burn_rate\":"), "{stdout}");
}

#[test]
fn trace_events_carry_lifecycle_and_report_from_matches_live() {
    let path = tmp_path("events.jsonl");
    let path_str = path.to_str().unwrap();
    let (_, _, ok) = h2p(&["trace", "--events", path_str, "bert", "resnet50"]);
    assert!(ok);
    let log = std::fs::read_to_string(&path).unwrap();
    assert!(log.contains("\"event\":\"lifecycle\""), "{log}");
    assert!(log.contains("\"stage\":\"admit\""), "{log}");
    assert!(log.contains("\"stage\":\"complete\""), "{log}");

    // The saved log replays into the same report a live run produces.
    let (from_out, from_err, from_ok) = h2p(&["report", "--from", path_str]);
    assert!(from_ok, "{from_out}\n{from_err}");
    let (live_out, _, live_ok) = h2p(&["report", "bert", "resnet50"]);
    assert!(live_ok);
    let section = |s: &str| -> String {
        s.lines()
            .skip_while(|l| !l.starts_with("requests:"))
            .take_while(|l| !l.starts_with("replay:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        section(&from_out),
        section(&live_out),
        "log-replayed report must match the live report"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn report_rejects_unknown_inputs() {
    let (_, stderr, ok) = h2p(&["report"]);
    assert!(!ok);
    assert!(stderr.contains("no models given"), "{stderr}");
    let (_, stderr, ok) = h2p(&["report", "--from", "/nonexistent/h2p.jsonl"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}
