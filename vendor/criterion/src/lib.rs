//! Offline vendored micro-benchmark harness.
//!
//! Exposes the `criterion` API surface this workspace's benches use
//! (`Criterion`, `benchmark_group`, `BenchmarkId`, `bench_with_input`,
//! `bench_function`, `criterion_group!`, `criterion_main!`) with a
//! simple wall-clock timing loop: warm-up, then timed batches, printing
//! mean time per iteration. No statistics, plots or comparisons — just
//! enough to run `cargo bench` offline and eyeball relative costs.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, discarding its output via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that runs
        // long enough to time meaningfully, capped for slow routines.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed > Duration::from_millis(200) || n >= 1 << 20 {
                self.iters_done = n;
                self.elapsed = elapsed;
                return;
            }
            n *= 2;
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters_done == 0 {
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters_done as f64;
    let (value, unit) = if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!(
        "{name:<48} {value:>10.3} {unit}/iter ({} iters)",
        b.iters_done
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b);
    }

    /// Finishes the group (no-op; output is printed eagerly).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begins a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name, &b);
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
