//! Offline vendored micro-benchmark harness.
//!
//! Exposes the `criterion` API surface this workspace's benches use
//! (`Criterion`, `benchmark_group`, `BenchmarkId`, `bench_with_input`,
//! `bench_function`, `criterion_group!`, `criterion_main!`) with a
//! sampled wall-clock timing loop: calibrate an iteration count, time a
//! fixed number of samples, and report the **median** time per iteration
//! (robust to scheduler noise, which matters on busy CI hosts). No plots
//! or comparisons — just enough to run `cargo bench` offline and track a
//! perf trajectory.
//!
//! Two extensions over the classic facade, used by the planner bench
//! harness (`crates/bench/benches/planner_scaling.rs`):
//!
//! * **Quick mode** — setting `H2P_BENCH_QUICK=1` shrinks the per-sample
//!   time budget and sample count so the whole suite finishes in seconds
//!   (CI runs it on every push; the full run stays for local profiling).
//! * **Results registry** — every finished benchmark is recorded in a
//!   process-global list; [`take_results`] drains it so a bench `main`
//!   can serialize the measurements (e.g. to `BENCH_planner.json`)
//!   after running its groups.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished benchmark's summary statistics, in nanoseconds per
/// iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Full benchmark name (`group/function/param`).
    pub name: String,
    /// Median over the timed samples.
    pub median_ns: f64,
    /// Mean over the timed samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Iterations per sample (after calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

fn push_result(r: BenchResult) {
    let mut guard = match RESULTS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.push(r);
}

/// Drains and returns every benchmark result recorded so far, in run
/// order. Call after running all groups to serialize the measurements.
pub fn take_results() -> Vec<BenchResult> {
    let mut guard = match RESULTS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    std::mem::take(&mut *guard)
}

/// Whether quick mode is active (`H2P_BENCH_QUICK` set to anything but
/// `0` or empty).
pub fn quick_mode() -> bool {
    std::env::var("H2P_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// `(per-sample time budget, sample count)` for the active mode.
fn sample_plan() -> (Duration, usize) {
    if quick_mode() {
        (Duration::from_millis(10), 5)
    } else {
        (Duration::from_millis(50), 11)
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    sample_ns: Vec<f64>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters_per_sample: 0,
            sample_ns: Vec::new(),
        }
    }

    /// Times `routine`, discarding its output via [`black_box`].
    ///
    /// Calibrates an iteration count whose batch runs at least the
    /// per-sample budget, then times a fixed number of such batches and
    /// records each batch's per-iteration time as one sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (budget, samples) = sample_plan();
        // Calibration: double until one batch fills the budget (the
        // calibration batches double as warm-up).
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            if start.elapsed() >= budget || n >= 1 << 22 {
                break;
            }
            n *= 2;
        }
        self.iters_per_sample = n;
        self.sample_ns = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                start.elapsed().as_secs_f64() * 1e9 / n as f64
            })
            .collect();
    }

    fn result(&self, name: &str) -> Option<BenchResult> {
        if self.sample_ns.is_empty() {
            return None;
        }
        let mut sorted = self.sample_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        let median_ns = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        };
        let mean_ns = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(BenchResult {
            name: name.to_owned(),
            median_ns,
            mean_ns,
            min_ns: sorted[0],
            iters_per_sample: self.iters_per_sample,
            samples: sorted.len(),
        })
    }
}

fn report(name: &str, b: &Bencher) {
    let Some(result) = b.result(name) else {
        return;
    };
    let per_iter = result.median_ns / 1e9;
    let (value, unit) = if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!(
        "{name:<48} {value:>10.3} {unit}/iter (median of {} × {} iters)",
        result.samples, result.iters_per_sample
    );
    push_result(result);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b);
    }

    /// Finishes the group (no-op; output is printed eagerly).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begins a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b);
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_median() {
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        let r = b.result("toy").expect("samples recorded");
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.iters_per_sample >= 1);
        assert!(r.samples >= 5);
    }

    #[test]
    fn registry_roundtrip() {
        push_result(BenchResult {
            name: "registry/probe".to_owned(),
            median_ns: 1.0,
            mean_ns: 1.0,
            min_ns: 1.0,
            iters_per_sample: 1,
            samples: 1,
        });
        let drained = take_results();
        assert!(drained.iter().any(|r| r.name == "registry/probe"));
        assert!(!take_results().iter().any(|r| r.name == "registry/probe"));
    }
}
