//! Offline vendored property-testing harness.
//!
//! Provides the subset of the `proptest` API this workspace's tests use:
//! the `proptest!` macro with an optional `#![proptest_config(...)]`
//! header, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer-range
//! strategies, tuple strategies, `prop::collection::vec` and
//! `prop::bool::ANY`.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (so failures reproduce on every
//! run), there is no shrinking, and `.proptest-regressions` files are
//! not consumed — their RNG-state entries are upstream-internal; pinned
//! failure cases from those files are encoded as explicit unit tests in
//! the repo instead. Failing inputs are printed in full.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-test RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for one generated case.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.gen_range(0u64..=u64::MAX)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.0.gen_range(0u64..bound)
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.below((self.end - self.start) as u64) as $ty
                }
            }
        )*
    };
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy for `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for integer types.
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for AnyInt<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
            impl Arbitrary for $ty {
                type Strategy = AnyInt<$ty>;
                fn arbitrary() -> Self::Strategy {
                    AnyInt(std::marker::PhantomData)
                }
            }
        )*
    };
}

impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    type Strategy = prop::bool::BoolStrategy;
    fn arbitrary() -> Self::Strategy {
        prop::bool::BoolStrategy
    }
}

/// The full-domain strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Namespaced strategy constructors (`prop::collection::vec`,
/// `prop::bool::ANY`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolStrategy;

        impl Strategy for BoolStrategy {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.below(2) == 1
            }
        }

        /// The uniform boolean strategy.
        pub const ANY: BoolStrategy = BoolStrategy;
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for vectors with element strategy `S` and a length
        /// drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vector strategy: each case draws a length in `len`, then that
        /// many elements.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs `cases` generated inputs of a property, panicking with the
/// offending inputs on the first failure. Seeds derive from the test
/// name and case index only, so every run generates the same cases.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    // FNV-1a over the test name gives a stable per-test seed base.
    let mut base: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x100000001b3);
    }
    for i in 0..config.cases as u64 {
        let mut rng = TestRng::new(base.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15)));
        let (inputs, result) = case(&mut rng);
        if let Err(e) = result {
            panic!(
                "property `{name}` failed at case {i}/{}:\n  {e}\n  inputs: {inputs}",
                config.cases
            );
        }
    }
}

/// The property-test macro: wraps each `fn name(arg in strategy, ...)`
/// into a `#[test]`-compatible function running [`run_cases`].
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr); ) => {};
    (@funcs ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($config, stringify!($name), |proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), proptest_rng);)+
                let proptest_inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}, ", &$arg));
                    )+
                    s
                };
                let proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (proptest_inputs, proptest_result)
            });
        }
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property, reporting the generated
/// inputs on failure instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, v in prop::collection::vec(0u64..5, 1..7)) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5), "out of range: {v:?}");
        }

        #[test]
        fn tuples_and_any_compose(
            specs in prop::collection::vec((0usize..4, 1u64..10, prop::bool::ANY), 1..5),
            seed in any::<u64>(),
        ) {
            let _ = seed;
            for (a, b, _flag) in &specs {
                prop_assert!(*a < 4);
                prop_assert_eq!((*b >= 1) && (*b < 10), true);
            }
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first = Vec::new();
        run_cases_capture(&mut first);
        let mut second = Vec::new();
        run_cases_capture(&mut second);
        assert_eq!(first, second);
    }

    fn run_cases_capture(out: &mut Vec<u64>) {
        crate::run_cases(crate::ProptestConfig::with_cases(16), "capture", |rng| {
            out.push(crate::Strategy::generate(&(0u64..1000), rng));
            (String::new(), Ok(()))
        });
    }
}
