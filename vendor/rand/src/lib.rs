//! Offline vendored facade of the `rand` API surface this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! fast and well-distributed. Streams are *not* bit-compatible with
//! upstream rand; everything in this workspace that consumes them only
//! relies on seeded determinism, which tests assert explicitly.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value from the standard distribution of `T` (uniform in
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`, which must be non-empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply, avoiding the
/// modulo bias of naive reduction.
fn bounded(rng: &mut impl RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample from an empty range");
                    let width = (self.end - self.start) as u64;
                    self.start + bounded(rng, width) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample from an empty range");
                    let width = (hi - lo) as u64;
                    if width == u64::MAX {
                        return lo + rng.next_u64() as $ty;
                    }
                    lo + bounded(rng, width + 1) as $ty
                }
            }
        )*
    };
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let f: f64 = Standard::sample(rng);
        self.start + f * (self.end - self.start)
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_separates_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
