//! Offline vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! Implemented directly on `proc_macro` token trees (no syn/quote, which
//! are unavailable offline). Supports exactly the shapes this workspace
//! derives on: non-generic structs with named fields, non-generic tuple
//! structs, and enums whose variants are all unit variants. Anything
//! else panics at expansion time with a clear message rather than
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives the vendored `serde::ser::Serialize` for supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::de::Deserialize` for supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) tokens.
fn skip_attrs_and_vis(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected attribute body after '#', found {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(it: &mut Tokens, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected {what}, found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "item name");
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generic type `{name}`");
        }
    }
    let body = match it.next() {
        Some(TokenTree::Group(g)) => g,
        other => panic!("expected item body for `{name}`, found {other:?}"),
    };
    match (kw.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Item::NamedStruct {
            fields: parse_named_fields(body.stream(), &name),
            name,
        },
        ("struct", Delimiter::Parenthesis) => Item::TupleStruct {
            arity: count_tuple_fields(body.stream()),
            name,
        },
        ("enum", Delimiter::Brace) => Item::UnitEnum {
            variants: parse_unit_variants(body.stream(), &name),
            name,
        },
        (kw, _) => panic!("vendored serde derive does not support this `{kw}` shape for `{name}`"),
    }
}

/// Parses `ident: Type,` fields, tracking angle-bracket depth so commas
/// inside generic arguments (e.g. `HashMap<(String, usize), f64>`) are
/// not mistaken for field separators.
fn parse_named_fields(ts: TokenStream, item: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let Some(tok) = it.next() else { break };
        let TokenTree::Ident(field) = tok else {
            panic!("expected field name in `{item}`, found {tok:?}");
        };
        fields.push(field.to_string());
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field `{field}` in `{item}`, found {other:?}"),
        }
        let mut depth = 0i32;
        for t in it.by_ref() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    ',' if depth == 0 => break,
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
        }
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut depth = 0i32;
    let mut in_field = false;
    for t in ts {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_field = false,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        if !matches!(&t, TokenTree::Punct(p) if p.as_char() == ',' && depth == 0) && !in_field {
            in_field = true;
            arity += 1;
        }
    }
    arity
}

fn parse_unit_variants(ts: TokenStream, item: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let Some(tok) = it.next() else { break };
        let TokenTree::Ident(variant) = tok else {
            panic!("expected variant name in enum `{item}`, found {tok:?}");
        };
        variants.push(variant.to_string());
        match it.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!(
                "vendored serde derive supports only unit variants; \
                 enum `{item}` variant `{variant}` is followed by {other:?}"
            ),
        }
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = format!(
                "let mut state = ::serde::ser::Serializer::serialize_struct(\
                 serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for f in fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(\
                     &mut state, \"{f}\", &self.{f})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(state)");
            impl_serialize(name, &body)
        }
        Item::TupleStruct { name, arity: 1 } => impl_serialize(
            name,
            &format!(
                "::serde::ser::Serializer::serialize_newtype_struct(\
                 serializer, \"{name}\", &self.0)"
            ),
        ),
        Item::TupleStruct { name, arity } => {
            let mut body = format!(
                "let mut state = ::serde::ser::Serializer::serialize_tuple_struct(\
                 serializer, \"{name}\", {arity}usize)?;\n"
            );
            for i in 0..*arity {
                body.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut state, &self.{i})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeTupleStruct::end(state)");
            impl_serialize(name, &body)
        }
        Item::UnitEnum { name, variants } => {
            let mut body = String::from("match *self {\n");
            for (i, v) in variants.iter().enumerate() {
                body.push_str(&format!(
                    "{name}::{v} => ::serde::ser::Serializer::serialize_unit_variant(\
                     serializer, \"{name}\", {i}u32, \"{v}\"),\n"
                ));
            }
            body.push('}');
            impl_serialize(name, &body)
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S)\n\
         -> ::std::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = format!("::std::result::Result::Ok({name} {{\n");
            for f in fields {
                body.push_str(&format!(
                    "{f}: ::serde::de::Deserialize::deserialize(&mut deserializer)?,\n"
                ));
            }
            body.push_str("})");
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let mut body = format!("::std::result::Result::Ok({name}(\n");
            for _ in 0..*arity {
                body.push_str("::serde::de::Deserialize::deserialize(&mut deserializer)?,\n");
            }
            body.push_str("))");
            impl_deserialize(name, &body)
        }
        Item::UnitEnum { name, variants } => {
            let mut body = String::from(
                "let idx = ::serde::de::Deserializer::read_variant(&mut deserializer)?;\n\
                 match idx {\n",
            );
            for (i, v) in variants.iter().enumerate() {
                body.push_str(&format!(
                    "{i}u32 => ::std::result::Result::Ok({name}::{v}),\n"
                ));
            }
            body.push_str(&format!(
                "_ => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"invalid variant index {{idx}} for {name}\"))),\n}}"
            ));
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         #[allow(unused_mut)]\n\
         fn deserialize<D: ::serde::de::Deserializer<'de>>(mut deserializer: D)\n\
         -> ::std::result::Result<Self, D::Error> {{\n{body}\n}}\n}}\n"
    )
}
