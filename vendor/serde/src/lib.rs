//! Offline vendored facade of the `serde` data model.
//!
//! This workspace builds in an environment with no registry access, so it
//! vendors the subset of serde it actually uses: the full `ser` trait
//! surface (exercised by `tests/serde_roundtrips.rs`), a pull-based `de`
//! counterpart sufficient for the derived impls, and blanket impls for
//! the primitive/container types that appear in the public data
//! structures. The `derive` feature re-exports the companion proc-macro
//! crate, mirroring upstream serde's layout so `use serde::{Serialize,
//! Deserialize}` plus `#[derive(Serialize, Deserialize)]` work unchanged.

pub mod ser;

pub mod de;

pub use crate::de::{Deserialize, Deserializer};
pub use crate::ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
