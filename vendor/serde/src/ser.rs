//! Serialization half of the vendored serde data model.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Error trait for serializers: constructible from any displayable
/// message, as upstream serde requires.
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde serializer.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// Compound serializer for sequences.
pub trait SerializeSeq {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Serializes one sequence element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuples.
pub trait SerializeTuple {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Serializes one tuple element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuple structs.
pub trait SerializeTupleStruct {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuple enum variants.
pub trait SerializeTupleVariant {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for maps.
pub trait SerializeMap {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for structs with named fields.
pub trait SerializeStruct {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for struct enum variants.
pub trait SerializeStructVariant {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A serializer: a sink for the serde data model.
pub trait Serializer: Sized {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Compound type for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound type for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound type for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound type for tuple variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound type for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound type for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound type for struct variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct.
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

macro_rules! impl_serialize_primitive {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

impl_serialize_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            SerializeSeq::serialize_element(&mut seq, item)?;
        }
        SerializeSeq::end(seq)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            SerializeTuple::serialize_element(&mut tup, item)?;
        }
        SerializeTuple::end(tup)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let len = [$(stringify!($idx)),+].len();
                    let mut tup = serializer.serialize_tuple(len)?;
                    $(SerializeTuple::serialize_element(&mut tup, &self.$idx)?;)+
                    SerializeTuple::end(tup)
                }
            }
        )*
    };
}

impl_serialize_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            SerializeMap::serialize_key(&mut map, k)?;
            SerializeMap::serialize_value(&mut map, v)?;
        }
        SerializeMap::end(map)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            SerializeMap::serialize_key(&mut map, k)?;
            SerializeMap::serialize_value(&mut map, v)?;
        }
        SerializeMap::end(map)
    }
}
