//! Deserialization half of the vendored serde data model.
//!
//! Unlike upstream serde's visitor architecture, this facade uses a
//! pull-based deserializer: the derived impls read fields in declaration
//! order, mirroring exactly what the workspace's linear serializers
//! write. Nothing in the workspace deserializes at runtime today
//! (`DeserializeOwned` appears only as a trait bound), but the impls are
//! fully functional against any [`Deserializer`] implementation.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;
use std::hash::{BuildHasher, Hash};

/// Error trait for deserializers: constructible from any displayable
/// message.
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A pull-based deserializer: a source of the serde data model.
///
/// Implementations are expected to be cursors over a linear encoding;
/// `&mut D` also implements the trait so derived impls can hand the same
/// cursor to nested fields.
pub trait Deserializer<'de>: Sized {
    /// Error type produced on failure.
    type Error: Error;

    /// Reads a `bool`.
    fn read_bool(&mut self) -> Result<bool, Self::Error>;
    /// Reads an `i64` (narrower signed ints narrow from this).
    fn read_i64(&mut self) -> Result<i64, Self::Error>;
    /// Reads a `u64` (narrower unsigned ints narrow from this).
    fn read_u64(&mut self) -> Result<u64, Self::Error>;
    /// Reads an `f64` (`f32` narrows from this).
    fn read_f64(&mut self) -> Result<f64, Self::Error>;
    /// Reads a `char`.
    fn read_char(&mut self) -> Result<char, Self::Error>;
    /// Reads an owned string.
    fn read_string(&mut self) -> Result<String, Self::Error>;
    /// Reads an option discriminant: `true` if a value follows.
    fn read_option(&mut self) -> Result<bool, Self::Error>;
    /// Reads a sequence or map length.
    fn read_len(&mut self) -> Result<usize, Self::Error>;
    /// Reads an enum variant index.
    fn read_variant(&mut self) -> Result<u32, Self::Error>;
}

impl<'de, D: Deserializer<'de>> Deserializer<'de> for &mut D {
    type Error = D::Error;

    fn read_bool(&mut self) -> Result<bool, Self::Error> {
        (**self).read_bool()
    }
    fn read_i64(&mut self) -> Result<i64, Self::Error> {
        (**self).read_i64()
    }
    fn read_u64(&mut self) -> Result<u64, Self::Error> {
        (**self).read_u64()
    }
    fn read_f64(&mut self) -> Result<f64, Self::Error> {
        (**self).read_f64()
    }
    fn read_char(&mut self) -> Result<char, Self::Error> {
        (**self).read_char()
    }
    fn read_string(&mut self) -> Result<String, Self::Error> {
        (**self).read_string()
    }
    fn read_option(&mut self) -> Result<bool, Self::Error> {
        (**self).read_option()
    }
    fn read_len(&mut self) -> Result<usize, Self::Error> {
        (**self).read_len()
    }
    fn read_variant(&mut self) -> Result<u32, Self::Error> {
        (**self).read_variant()
    }
}

/// A data structure that can be reconstructed from a deserializer.
pub trait Deserialize<'de>: Sized {
    /// Reads one value of `Self` from `deserializer`.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

macro_rules! impl_deserialize_int {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
                    let v = d.$method()?;
                    <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(format!(
                            "value {v} out of range for {}",
                            stringify!($ty)
                        )))
                }
            }
        )*
    };
}

impl_deserialize_int! {
    i8 => read_i64,
    i16 => read_i64,
    i32 => read_i64,
    i64 => read_i64,
    isize => read_i64,
    u8 => read_u64,
    u16 => read_u64,
    u32 => read_u64,
    u64 => read_u64,
    usize => read_u64,
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        d.read_bool()
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        d.read_f64()
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        d.read_f64().map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        d.read_char()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        d.read_string()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Ok(())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        if d.read_option()? {
            Ok(Some(T::deserialize(&mut d)?))
        } else {
            Ok(None)
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let len = d.read_len()?;
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::deserialize(&mut d)?);
        }
        Ok(out)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::deserialize(&mut d)?);
        }
        out.try_into()
            .map_err(|_| D::Error::custom("array length mismatch"))
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident),+)),* $(,)?) => {
        $(
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize<De: Deserializer<'de>>(mut d: De) -> Result<Self, De::Error> {
                    Ok(($($name::deserialize(&mut d)?,)+))
                }
            }
        )*
    };
}

impl_deserialize_tuple! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let len = d.read_len()?;
        let mut out = HashMap::with_capacity_and_hasher(len.min(4096), H::default());
        for _ in 0..len {
            let k = K::deserialize(&mut d)?;
            let v = V::deserialize(&mut d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let len = d.read_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(&mut d)?;
            let v = V::deserialize(&mut d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}
