//! Derived run-level analytics over executed spans: per-processor
//! utilization and bubble timelines, contention-window occupancy,
//! latency distribution profiles, and deadline/SLO burn-rate
//! accounting.
//!
//! Everything here is a pure function over plain span data
//! ([`ExecSpan`]) so the module stays dependency-free: the simulator
//! and the CLI convert their richer trace types down and the same code
//! serves live runs, replayed event logs, and fleet roll-ups. All
//! iteration orders are deterministic (index- or time-sorted with total
//! float comparisons) — the report for a given trace is byte-stable.

use crate::lifecycle::QosClass;

/// Absolute tolerance below which an inter-span gap is rounding noise,
/// not a bubble. Matches the engine's completion epsilon.
const GAP_EPS: f64 = 1e-6;

/// One executed span, reduced to what the analytics need: who ran,
/// where, and when. `request` is `None` for auxiliary work (relocation
/// stubs, warmup) that occupies a processor but belongs to no request.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecSpan {
    /// Request index the span belongs to, if any.
    pub request: Option<usize>,
    /// Processor index the span ran on.
    pub processor: usize,
    /// Start time, simulated milliseconds.
    pub start_ms: f64,
    /// End time, simulated milliseconds.
    pub end_ms: f64,
}

impl ExecSpan {
    pub fn duration_ms(&self) -> f64 {
        (self.end_ms - self.start_ms).max(0.0)
    }
}

/// An idle gap between two consecutive spans on one processor — a
/// pipeline bubble in the paper's Def. 3 sense.
#[derive(Debug, Clone, PartialEq)]
pub struct Bubble {
    pub processor: usize,
    pub start_ms: f64,
    pub end_ms: f64,
}

impl Bubble {
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// Busy/idle accounting for one processor across the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorUtilization {
    pub processor: usize,
    /// Milliseconds the processor spent executing spans.
    pub busy_ms: f64,
    /// Number of spans that ran on the processor.
    pub span_count: usize,
    /// `busy_ms / horizon_ms` (0 when the run is empty).
    pub utilization: f64,
}

/// Per-processor utilization and bubble timeline for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTimeline {
    /// Run horizon: the latest span end (the makespan).
    pub horizon_ms: f64,
    pub processors: Vec<ProcessorUtilization>,
    /// Every inter-span idle gap, in (processor, time) order.
    pub bubbles: Vec<Bubble>,
}

impl UtilizationTimeline {
    /// Computes the timeline from executed spans. Gaps below a rounding
    /// epsilon are not counted as bubbles; lead-in before a processor's
    /// first span and lead-out after its last are not bubbles either,
    /// matching the simulator's `Trace::idle_bubble_ms` definition so
    /// the two reconcile exactly.
    pub fn compute(spans: &[ExecSpan], processor_count: usize) -> Self {
        let horizon_ms = spans.iter().map(|s| s.end_ms).fold(0.0, f64::max);
        let mut processors = Vec::with_capacity(processor_count);
        let mut bubbles = Vec::new();
        for p in 0..processor_count {
            let mut mine: Vec<&ExecSpan> = spans.iter().filter(|s| s.processor == p).collect();
            mine.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
            // fold from +0.0: `Sum for f64` starts at -0.0, which would
            // leak a negative zero into reports for idle processors.
            let busy_ms: f64 = mine.iter().fold(0.0, |a, s| a + s.duration_ms());
            for w in mine.windows(2) {
                let gap = w[1].start_ms - w[0].end_ms;
                if gap > GAP_EPS {
                    bubbles.push(Bubble {
                        processor: p,
                        start_ms: w[0].end_ms,
                        end_ms: w[1].start_ms,
                    });
                }
            }
            processors.push(ProcessorUtilization {
                processor: p,
                busy_ms,
                span_count: mine.len(),
                utilization: if horizon_ms > 0.0 {
                    busy_ms / horizon_ms
                } else {
                    0.0
                },
            });
        }
        Self {
            horizon_ms,
            processors,
            bubbles,
        }
    }

    /// Total bubble milliseconds across all processors (reconciles with
    /// `Trace::idle_bubble_ms` up to the rounding epsilon).
    pub fn total_bubble_ms(&self) -> f64 {
        self.bubbles.iter().fold(0.0, |a, b| a + b.duration_ms())
    }

    /// The `n` longest bubbles, longest first; ties break on
    /// (processor, start) so the order is deterministic.
    pub fn top_bubbles(&self, n: usize) -> Vec<&Bubble> {
        let mut sorted: Vec<&Bubble> = self.bubbles.iter().collect();
        sorted.sort_by(|a, b| {
            b.duration_ms()
                .total_cmp(&a.duration_ms())
                .then(a.processor.cmp(&b.processor))
                .then(a.start_ms.total_cmp(&b.start_ms))
        });
        sorted.truncate(n);
        sorted
    }
}

/// Time-weighted concurrency histogram: `levels[k]` is the fraction of
/// the run horizon during which exactly `k` processors were busy.
/// `levels[2..]` summed is the co-execution fraction — the time the SoC
/// actually pays the paper's co-execution slowdown.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyProfile {
    pub horizon_ms: f64,
    /// Index k = number of simultaneously busy processors; values sum
    /// to 1 for a non-empty run.
    pub levels: Vec<f64>,
}

impl OccupancyProfile {
    /// Sweeps span start/end edges to integrate time at each
    /// concurrency level.
    pub fn compute(spans: &[ExecSpan], processor_count: usize) -> Self {
        let horizon_ms = spans.iter().map(|s| s.end_ms).fold(0.0, f64::max);
        let mut levels = vec![0.0; processor_count + 1];
        if horizon_ms <= 0.0 {
            return Self { horizon_ms, levels };
        }
        // Edge sweep: +1 at each start, -1 at each end; ends sort before
        // starts at equal times so a back-to-back handoff never counts
        // as concurrency.
        let mut edges: Vec<(f64, i32)> = Vec::with_capacity(spans.len() * 2);
        for s in spans {
            if s.end_ms > s.start_ms {
                edges.push((s.start_ms, 1));
                edges.push((s.end_ms, -1));
            }
        }
        edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut level: i32 = 0;
        let mut cursor = 0.0;
        for (t, delta) in edges {
            if t > cursor {
                let k = (level.max(0) as usize).min(processor_count);
                levels[k] += (t - cursor) / horizon_ms;
                cursor = t;
            }
            level += delta;
        }
        if cursor < horizon_ms {
            levels[0] += (horizon_ms - cursor) / horizon_ms;
        }
        Self { horizon_ms, levels }
    }

    /// Fraction of the run with two or more processors busy — the time
    /// co-execution slowdown applies.
    pub fn co_execution_fraction(&self) -> f64 {
        self.levels.iter().skip(2).sum()
    }

    /// Fraction of the run with every processor idle.
    pub fn idle_fraction(&self) -> f64 {
        self.levels.first().copied().unwrap_or(0.0)
    }
}

/// Latency distribution summary (nearest-rank percentiles, matching
/// `hetero2pipe::executor::percentile`'s convention).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyProfile {
    pub count: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

impl LatencyProfile {
    /// Summarizes a latency sample; `None` for an empty sample.
    pub fn compute(latencies_ms: &[f64]) -> Option<Self> {
        if latencies_ms.is_empty() {
            return None;
        }
        let mut s = latencies_ms.to_vec();
        s.sort_by(f64::total_cmp);
        let pick = |p: f64| -> f64 {
            let rank = ((p / 100.0) * (s.len() as f64 - 1.0)).round() as usize;
            s[rank.min(s.len() - 1)]
        };
        Some(Self {
            count: s.len(),
            mean_ms: s.iter().sum::<f64>() / s.len() as f64,
            p50_ms: pick(50.0),
            p95_ms: pick(95.0),
            p99_ms: pick(99.0),
            max_ms: *s.last().unwrap_or(&0.0),
        })
    }
}

/// One request's deadline outcome, as fed into [`SloSummary::compute`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloEntry {
    pub class: QosClass,
    /// End-to-end latency; `None` if the request never completed
    /// (degraded requests always count as misses when they carry a
    /// deadline).
    pub latency_ms: Option<f64>,
    /// Deadline, if the request has one.
    pub deadline_ms: Option<f64>,
}

/// Deadline-miss and SLO burn-rate accounting for one QoS class.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSummary {
    pub class: QosClass,
    /// Requests in the class.
    pub total: usize,
    /// Requests carrying a deadline.
    pub with_deadline: usize,
    /// Deadline misses (late completions plus degraded requests).
    pub misses: usize,
    /// `misses / with_deadline` (0 when no deadlines).
    pub miss_rate: f64,
    /// Miss rate divided by the error budget: > 1 means the class is
    /// burning budget faster than the SLO allows.
    pub burn_rate: f64,
}

impl SloSummary {
    /// Default error budget: a 99% on-deadline objective.
    pub const DEFAULT_BUDGET: f64 = 0.01;

    /// Aggregates entries per QoS class, in [`QosClass::ALL`] order.
    /// `budget` is the allowed miss fraction (e.g. 0.01 for a 99%
    /// objective); non-positive budgets are clamped to the default.
    pub fn compute(entries: &[SloEntry], budget: f64) -> Vec<SloSummary> {
        let budget = if budget > 0.0 {
            budget
        } else {
            Self::DEFAULT_BUDGET
        };
        QosClass::ALL
            .iter()
            .map(|&class| {
                let mine: Vec<&SloEntry> = entries.iter().filter(|e| e.class == class).collect();
                let with_deadline = mine.iter().filter(|e| e.deadline_ms.is_some()).count();
                let misses = mine
                    .iter()
                    .filter(|e| {
                        e.deadline_ms
                            .is_some_and(|d| e.latency_ms.is_none_or(|l| l > d + GAP_EPS))
                    })
                    .count();
                let miss_rate = if with_deadline > 0 {
                    misses as f64 / with_deadline as f64
                } else {
                    0.0
                };
                SloSummary {
                    class,
                    total: mine.len(),
                    with_deadline,
                    misses,
                    miss_rate,
                    burn_rate: miss_rate / budget,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(request: Option<usize>, processor: usize, start: f64, end: f64) -> ExecSpan {
        ExecSpan {
            request,
            processor,
            start_ms: start,
            end_ms: end,
        }
    }

    #[test]
    fn utilization_and_bubbles_reconcile() {
        // Proc 0: [0,2] [3,5] → one 1 ms bubble; proc 1: [1,4] → none;
        // proc 2 idle the whole run.
        let spans = vec![
            span(Some(0), 0, 0.0, 2.0),
            span(Some(1), 0, 3.0, 5.0),
            span(Some(0), 1, 1.0, 4.0),
        ];
        let tl = UtilizationTimeline::compute(&spans, 3);
        assert_eq!(tl.horizon_ms, 5.0);
        assert_eq!(tl.processors[0].busy_ms, 4.0);
        assert_eq!(tl.processors[0].span_count, 2);
        assert!((tl.processors[0].utilization - 0.8).abs() < 1e-12);
        assert_eq!(tl.processors[1].busy_ms, 3.0);
        assert_eq!(tl.processors[2].busy_ms, 0.0);
        assert_eq!(tl.processors[2].utilization, 0.0);
        assert_eq!(
            tl.bubbles,
            vec![Bubble {
                processor: 0,
                start_ms: 2.0,
                end_ms: 3.0
            }]
        );
        assert!((tl.total_bubble_ms() - 1.0).abs() < 1e-12);
        let top = tl.top_bubbles(5);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].processor, 0);
    }

    #[test]
    fn top_bubbles_order_is_deterministic() {
        let spans = vec![
            span(None, 0, 0.0, 1.0),
            span(None, 0, 3.0, 4.0), // 2 ms bubble on proc 0
            span(None, 1, 0.0, 1.0),
            span(None, 1, 3.0, 4.0), // 2 ms bubble on proc 1 (tie)
            span(None, 2, 0.0, 1.0),
            span(None, 2, 1.5, 2.0), // 0.5 ms bubble on proc 2
        ];
        let tl = UtilizationTimeline::compute(&spans, 3);
        let top: Vec<(usize, f64)> = tl
            .top_bubbles(2)
            .iter()
            .map(|b| (b.processor, b.duration_ms()))
            .collect();
        assert_eq!(top, vec![(0, 2.0), (1, 2.0)]);
    }

    #[test]
    fn occupancy_levels_sum_to_one() {
        // [0,2] on p0 and [1,4] on p1: level 1 for [0,1]∪[2,4] = 3 ms,
        // level 2 for [1,2] = 1 ms, idle [4,4] = 0 → horizon 4 ms.
        let spans = vec![span(None, 0, 0.0, 2.0), span(None, 1, 1.0, 4.0)];
        let occ = OccupancyProfile::compute(&spans, 2);
        assert_eq!(occ.horizon_ms, 4.0);
        assert!((occ.levels.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((occ.levels[1] - 0.75).abs() < 1e-12);
        assert!((occ.levels[2] - 0.25).abs() < 1e-12);
        assert!((occ.co_execution_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(occ.idle_fraction(), 0.0);
    }

    #[test]
    fn occupancy_handoff_is_not_concurrency() {
        // Back-to-back on the same processor: end sorts before start at
        // t=2, so the level never reaches 2.
        let spans = vec![span(None, 0, 0.0, 2.0), span(None, 0, 2.0, 4.0)];
        let occ = OccupancyProfile::compute(&spans, 1);
        assert!((occ.levels[1] - 1.0).abs() < 1e-12);
        assert_eq!(occ.co_execution_fraction(), 0.0);
        // Empty run: all-zero levels, no NaN.
        let empty = OccupancyProfile::compute(&[], 2);
        assert_eq!(empty.horizon_ms, 0.0);
        assert!(empty.levels.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn latency_profile_percentiles() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = LatencyProfile::compute(&xs).unwrap();
        assert_eq!(p.count, 100);
        assert_eq!(p.p50_ms, 51.0); // nearest-rank on n-1 grid
        assert_eq!(p.p95_ms, 95.0);
        assert_eq!(p.p99_ms, 99.0);
        assert_eq!(p.max_ms, 100.0);
        assert!((p.mean_ms - 50.5).abs() < 1e-12);
        assert_eq!(LatencyProfile::compute(&[]), None);
        let single = LatencyProfile::compute(&[7.0]).unwrap();
        assert_eq!(single.p99_ms, 7.0);
    }

    #[test]
    fn slo_accounting_counts_misses_and_burn() {
        let entries = vec![
            SloEntry {
                class: QosClass::Interactive,
                latency_ms: Some(5.0),
                deadline_ms: Some(10.0),
            },
            SloEntry {
                class: QosClass::Interactive,
                latency_ms: Some(12.0),
                deadline_ms: Some(10.0),
            },
            // Degraded request with a deadline: always a miss.
            SloEntry {
                class: QosClass::Interactive,
                latency_ms: None,
                deadline_ms: Some(10.0),
            },
            // No deadline: never a miss.
            SloEntry {
                class: QosClass::Batch,
                latency_ms: Some(500.0),
                deadline_ms: None,
            },
        ];
        let sums = SloSummary::compute(&entries, 0.01);
        assert_eq!(sums.len(), QosClass::ALL.len());
        let inter = &sums[0];
        assert_eq!(inter.class, QosClass::Interactive);
        assert_eq!((inter.total, inter.with_deadline, inter.misses), (3, 3, 2));
        assert!((inter.miss_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((inter.burn_rate - inter.miss_rate / 0.01).abs() < 1e-9);
        let batch = &sums[2];
        assert_eq!((batch.total, batch.misses), (1, 0));
        assert_eq!(batch.miss_rate, 0.0);
        // Exactly-on-deadline is not a miss.
        let on_time = SloSummary::compute(
            &[SloEntry {
                class: QosClass::Standard,
                latency_ms: Some(10.0),
                deadline_ms: Some(10.0),
            }],
            0.0, // clamped to the default budget
        );
        assert_eq!(on_time[1].misses, 0);
        assert!((on_time[1].burn_rate - 0.0).abs() < 1e-12);
    }
}
