//! Thread-safe metrics registry: counters, gauges, and histograms with
//! a JSON- and table-renderable snapshot.
//!
//! Histograms are log-bucketed by default (HDR-style geometric bounds
//! spanning microseconds to minutes) with exact-rank quantile
//! extraction, and two histograms over the same bucket layout merge
//! exactly — snapshot merging is how per-shard registries fold into a
//! fleet view. Explicit fixed bounds remain available via
//! [`MetricsRegistry::observe_with`].
//!
//! Recording is mutex-guarded and intended to be coarse-grained —
//! callers in hot loops accumulate into locals and flush once per
//! request or phase. The registry never panics: a poisoned lock is
//! recovered (metrics are monotone aggregates, so a panicking writer
//! cannot leave them logically inconsistent), and observing a
//! non-finite value is counted separately instead of corrupting the
//! running sum.

use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{json_escape, json_num};

/// Legacy fixed bucket upper bounds, in milliseconds. Kept for callers
/// that want the old coarse layout via
/// [`MetricsRegistry::observe_with`]; the default [`observe`] path now
/// uses the log-bucketed layout from [`log_bounds`].
///
/// [`observe`]: MetricsRegistry::observe
pub const DEFAULT_MS_BUCKETS: [f64; 12] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
];

/// Lower edge of the default log-bucketed layout, in ms (1 µs).
pub const LOG_MIN_MS: f64 = 1e-3;
/// Upper edge of the default log-bucketed layout, in ms (one minute).
pub const LOG_MAX_MS: f64 = 60_000.0;
/// Sub-buckets per power of two in the default log layout: relative
/// quantile error is bounded by `2^(1/4) - 1 ≈ 19%` per bucket.
pub const LOG_SUB_BUCKETS: u32 = 4;

/// Geometric bucket upper bounds from `min` to at least `max` with
/// `per_octave` sub-buckets per power of two — the HDR-style layout the
/// default histograms use. Deterministic for fixed arguments, so every
/// registry (and every shard of a fleet) lands on identical, mergeable
/// buckets.
pub fn log_bounds(min: f64, max: f64, per_octave: u32) -> Vec<f64> {
    let per_octave = per_octave.max(1);
    let mut bounds = Vec::new();
    let mut i = 0u32;
    loop {
        let b = min * 2f64.powf(f64::from(i) / f64::from(per_octave));
        bounds.push(b);
        if b >= max || i > 4096 {
            return bounds;
        }
        i += 1;
    }
}

/// Two histograms with different bucket layouts cannot merge: counts
/// would land in buckets with different meanings.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeError {
    /// Name of the offending histogram, when merging via a snapshot.
    pub name: String,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.name.is_empty() {
            write!(f, "histogram bucket layouts differ")
        } else {
            write!(f, "histogram `{}`: bucket layouts differ", self.name)
        }
    }
}

impl std::error::Error for MergeError {}

/// A bucketed histogram: `counts[i]` holds observations `<= bounds[i]`
/// (and greater than the previous bound); the final slot is the
/// overflow bucket. The default layout is log-bucketed
/// ([`Histogram::log_bucketed`]); explicit bounds remain available via
/// [`Histogram::new`]. Tracks the running min/max so quantiles at the
/// distribution edges report observed values, not bucket edges, and
/// counts non-finite observations separately so they can never corrupt
/// the sum.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    nonfinite: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            nonfinite: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default log-bucketed layout: geometric bounds from
    /// [`LOG_MIN_MS`] to [`LOG_MAX_MS`] with [`LOG_SUB_BUCKETS`]
    /// sub-buckets per octave (~104 buckets).
    pub fn log_bucketed() -> Self {
        Self::new(&log_bounds(LOG_MIN_MS, LOG_MAX_MS, LOG_SUB_BUCKETS))
    }

    /// Records one observation. Non-finite values (NaN, ±inf) are
    /// tallied in [`Histogram::nonfinite`] and never touch the buckets,
    /// the sum, or the min/max — a single bad measurement cannot poison
    /// every later quantile.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            self.nonfinite += 1;
            return;
        }
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations rejected for being NaN or infinite.
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// Smallest finite observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest finite observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact-rank quantile over the bucketed distribution: the value at
    /// nearest rank `⌈q·count⌉` (1-based), reported as the upper bound
    /// of the bucket holding that rank, clamped into the observed
    /// `[min, max]` range (so `quantile(0.0)` ≈ min, `quantile(1.0)` =
    /// max exactly, and a bucket's edge never over-reports the tail).
    /// Returns `None` on an empty histogram. `q` outside `[0, 1]` is
    /// clamped.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank, 1-based; q = 0 means the first observation.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let edge = self
                    .bounds
                    .get(i)
                    .copied()
                    // Rank landed in the overflow bucket: the max is the
                    // only honest upper estimate available.
                    .unwrap_or(self.max);
                return Some(edge.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Adds `other`'s observations into `self`. Counts merge exactly;
    /// the sums add in call order (floating-point addition, so merge
    /// order can perturb the last ulps of [`Histogram::sum`] — never
    /// the counts, quantiles, min or max).
    ///
    /// # Errors
    ///
    /// Returns [`MergeError`] if the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.bounds != other.bounds {
            return Err(MergeError {
                name: String::new(),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.nonfinite += other.nonfinite;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry proper. Cheap to create; share behind an `Arc` (or via
/// [`crate::Telemetry`]) across planner threads.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Increments a counter by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Adds `delta` to a gauge, creating it at zero first.
    pub fn gauge_add(&self, name: &str, delta: f64) {
        let mut inner = self.lock();
        *inner.gauges.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// Records an observation into a histogram with the default
    /// log-bucketed millisecond layout ([`Histogram::log_bucketed`]).
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::log_bucketed)
            .observe(value);
    }

    /// Records an observation into a histogram with explicit bucket
    /// bounds. The bounds are fixed by the first observation; later
    /// calls reuse the existing buckets.
    pub fn observe_with(&self, name: &str, bounds: &[f64], value: f64) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Copies the current state out into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Spawns a background flusher that appends one JSON snapshot line
    /// (`{"seq":N,"counters":...,...}`) to `path` every `period`,
    /// truncating any existing file first. Stopping the returned
    /// [`FlushHandle`] (explicitly or by drop) wakes the flusher, writes
    /// one final snapshot so the last line always reflects the registry
    /// state at shutdown, and joins the thread. A transient write
    /// failure mid-stream does not kill the flusher: it keeps
    /// snapshotting (so the final line is still attempted at stop time)
    /// and [`FlushHandle::stop`] reports the first error it hit.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created or the
    /// flusher thread cannot be spawned.
    pub fn flush_every(self: &Arc<Self>, period: Duration, path: &Path) -> io::Result<FlushHandle> {
        let file = std::fs::File::create(path)?;
        let mut out = BufWriter::new(file);
        let registry = Arc::clone(self);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop_in_thread = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("h2p-metrics-flush".to_owned())
            .spawn(move || -> io::Result<u64> {
                let mut seq = 0u64;
                let mut deferred: Option<io::Error> = None;
                loop {
                    let (lock, cvar) = &*stop_in_thread;
                    let stopped = {
                        let guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
                        if *guard {
                            true
                        } else {
                            let (guard, _) = cvar
                                .wait_timeout(guard, period)
                                .unwrap_or_else(PoisonError::into_inner);
                            *guard
                        }
                    };
                    let snap = registry.snapshot();
                    let body = snap.to_json();
                    // Splice a sequence number into the object so a
                    // reader can detect dropped or reordered lines.
                    let rest = body.strip_prefix('{').unwrap_or(&body);
                    match writeln!(out, "{{\"seq\":{seq},{rest}").and_then(|()| out.flush()) {
                        Ok(()) => seq += 1,
                        // A transient write failure must not kill the
                        // stream: remember the first error and keep
                        // flushing, so the final snapshot at stop time
                        // is still attempted and the metrics tail is
                        // only lost if the sink stays broken.
                        Err(e) => {
                            deferred.get_or_insert(e);
                        }
                    }
                    if stopped {
                        return match deferred {
                            Some(e) => Err(e),
                            None => Ok(seq),
                        };
                    }
                }
            })?;
        Ok(FlushHandle {
            stop,
            thread: Some(thread),
        })
    }
}

/// Handle to a background metrics flusher started by
/// [`MetricsRegistry::flush_every`]. Call [`FlushHandle::stop`] for the
/// line count and any deferred I/O error; dropping the handle stops the
/// flusher too (final snapshot included) but swallows both.
#[derive(Debug)]
pub struct FlushHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<io::Result<u64>>>,
}

impl FlushHandle {
    fn signal(&self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cvar.notify_all();
    }

    /// Stops the flusher: signals the thread, which writes one final
    /// snapshot line and exits, then joins it.
    ///
    /// # Errors
    ///
    /// Returns any I/O error the flusher hit while writing; on success
    /// yields the number of snapshot lines written.
    pub fn stop(mut self) -> io::Result<u64> {
        self.signal();
        match self.thread.take().map(JoinHandle::join) {
            Some(Ok(result)) => result,
            Some(Err(_)) => Err(io::Error::other("metrics flusher thread panicked")),
            None => Ok(0),
        }
    }
}

impl Drop for FlushHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.signal();
            let _ = thread.join();
        }
    }
}

/// Point-in-time copy of a registry, ready for JSON or table rendering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Exact-rank quantile of a named histogram
    /// ([`Histogram::quantile`]); `None` if the histogram is missing or
    /// empty.
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        self.histograms.get(name).and_then(|h| h.quantile(q))
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value (last write wins, matching the registry's own gauge
    /// semantics), histograms merge bucket-by-bucket. Merging shard
    /// snapshots in any grouping yields identical counts and quantiles
    /// (sums are float-additive; see [`Histogram::merge`]).
    ///
    /// # Errors
    ///
    /// Returns [`MergeError`] naming the first histogram whose bucket
    /// layout differs; `self` keeps the already-merged prefix.
    pub fn merge(&mut self, other: &MetricsSnapshot) -> Result<(), MergeError> {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h).map_err(|_| MergeError { name: k.clone() })?,
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        Ok(())
    }

    /// Renders the snapshot as a JSON object with deterministically
    /// sorted keys (the maps are `BTreeMap`s, so identical snapshots
    /// always render byte-identical JSON):
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{bounds,counts,sum,count,nonfinite,min,max}}}`.
    /// Metric names are escaped, so adversarial names (quotes,
    /// backslashes, control characters) still produce valid JSON.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
            .collect::<Vec<_>>()
            .join(",");
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_num(*v)))
            .collect::<Vec<_>>()
            .join(",");
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let bounds = h
                    .bounds()
                    .iter()
                    .map(|b| json_num(*b))
                    .collect::<Vec<_>>()
                    .join(",");
                let counts = h
                    .counts()
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "\"{}\":{{\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{},\"nonfinite\":{},\"min\":{},\"max\":{}}}",
                    json_escape(k),
                    bounds,
                    counts,
                    json_num(h.sum()),
                    h.count(),
                    h.nonfinite(),
                    // Empty histograms render min/max as null rather than
                    // the ±inf sentinels (json_num maps non-finite to null).
                    json_num(h.min().unwrap_or(f64::NAN)),
                    json_num(h.max().unwrap_or(f64::NAN)),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }

    /// Renders a plain-text table: one `name value` row per metric,
    /// counters first, then gauges, then histogram means.
    pub fn render_table(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<width$}  {v:.3}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<width$}  count={} mean={:.3}\n",
                h.count(),
                h.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Minimal recursive-descent JSON validator for the adversarial-name
    /// tests (the workspace has no JSON parser by design). Returns the
    /// remaining input after one complete value, or `None` on malformed
    /// input.
    fn json_value(s: &[u8]) -> Option<&[u8]> {
        let s = skip_ws(s);
        match s.first()? {
            b'{' => {
                let mut s = skip_ws(&s[1..]);
                if s.first() == Some(&b'}') {
                    return Some(&s[1..]);
                }
                loop {
                    s = json_string(skip_ws(s))?;
                    s = skip_ws(s);
                    s = s.strip_prefix(b":")?;
                    s = json_value(s)?;
                    s = skip_ws(s);
                    match s.first()? {
                        b',' => s = &s[1..],
                        b'}' => return Some(&s[1..]),
                        _ => return None,
                    }
                }
            }
            b'[' => {
                let mut s = skip_ws(&s[1..]);
                if s.first() == Some(&b']') {
                    return Some(&s[1..]);
                }
                loop {
                    s = json_value(s)?;
                    s = skip_ws(s);
                    match s.first()? {
                        b',' => s = &s[1..],
                        b']' => return Some(&s[1..]),
                        _ => return None,
                    }
                }
            }
            b'"' => json_string(s),
            b't' => s.strip_prefix(b"true"),
            b'f' => s.strip_prefix(b"false"),
            b'n' => s.strip_prefix(b"null"),
            _ => json_number(s),
        }
    }

    fn skip_ws(s: &[u8]) -> &[u8] {
        let n = s
            .iter()
            .take_while(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            .count();
        &s[n..]
    }

    fn json_string(s: &[u8]) -> Option<&[u8]> {
        let mut s = s.strip_prefix(b"\"")?;
        loop {
            match *s.first()? {
                b'"' => return Some(&s[1..]),
                b'\\' => match *s.get(1)? {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => s = &s[2..],
                    b'u' => {
                        if s.len() < 6 || !s[2..6].iter().all(u8::is_ascii_hexdigit) {
                            return None;
                        }
                        s = &s[6..];
                    }
                    _ => return None,
                },
                c if c < 0x20 => return None,
                _ => s = &s[1..],
            }
        }
    }

    fn json_number(s: &[u8]) -> Option<&[u8]> {
        let mut s = s.strip_prefix(b"-").unwrap_or(s);
        let digits = s.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return None;
        }
        s = &s[digits..];
        if let Some(rest) = s.strip_prefix(b".") {
            let frac = rest.iter().take_while(|b| b.is_ascii_digit()).count();
            if frac == 0 {
                return None;
            }
            s = &rest[frac..];
        }
        if matches!(s.first(), Some(b'e' | b'E')) {
            let mut rest = &s[1..];
            if matches!(rest.first(), Some(b'+' | b'-')) {
                rest = &rest[1..];
            }
            let exp = rest.iter().take_while(|b| b.is_ascii_digit()).count();
            if exp == 0 {
                return None;
            }
            s = &rest[exp..];
        }
        Some(s)
    }

    /// True iff `text` is exactly one well-formed JSON value.
    fn is_valid_json(text: &str) -> bool {
        matches!(json_value(text.as_bytes()), Some(rest) if skip_ws(rest).is_empty())
    }

    #[test]
    fn json_validator_self_check() {
        assert!(is_valid_json(
            r#"{"a":[1,2.5,-3e4],"b":{"c":"d\n"},"e":null}"#
        ));
        assert!(is_valid_json("  [true, false] "));
        for bad in [
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1,2",
            r#""unterminated"#,
            "01x",
            "{\"raw\tcontrol\":1}",
            r#"{"bad\q":1}"#,
            "1 2",
        ] {
            assert!(!is_valid_json(bad), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let m = MetricsRegistry::new();
        m.inc("a.count");
        m.add("a.count", 4);
        m.gauge("b.ms", 1.25);
        m.gauge_add("b.ms", 0.75);
        m.observe_with("c.ms", &[1.0, 10.0], 0.5);
        m.observe_with("c.ms", &[1.0, 10.0], 5.0);
        m.observe_with("c.ms", &[1.0, 10.0], 50.0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("a.count"), Some(5));
        assert_eq!(snap.gauge("b.ms"), Some(2.0));
        let h = &snap.histograms["c.ms"];
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let m = MetricsRegistry::new();
        m.inc("x");
        m.gauge("g", 2.5);
        m.observe_with("h", &[1.0], 0.5);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"x\":1"));
        assert!(json.contains("\"g\":2.5"));
        assert!(json.contains("\"bounds\":[1]"));
        assert!(json.contains("\"counts\":[1,0]"));
        // Balanced braces/brackets (no string values contain either).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let m = MetricsRegistry::new();
        assert!(m.snapshot().is_empty());
        m.inc("x");
        assert!(!m.snapshot().is_empty());
    }

    #[test]
    fn flush_every_writes_periodic_and_final_snapshots() {
        let path = std::env::temp_dir().join(format!("h2p-flush-{}.jsonl", std::process::id()));
        let m = Arc::new(MetricsRegistry::new());
        m.inc("flush.start");
        let handle = m
            .flush_every(Duration::from_millis(5), &path)
            .expect("flusher starts");
        std::thread::sleep(Duration::from_millis(30));
        m.inc("flush.late");
        let lines = handle.stop().expect("flusher stops cleanly");
        assert!(lines >= 2, "expected periodic + final lines, got {lines}");
        let text = std::fs::read_to_string(&path).expect("file readable");
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len() as u64, lines);
        for (i, row) in rows.iter().enumerate() {
            assert!(
                row.starts_with(&format!("{{\"seq\":{i},")),
                "row {i}: {row}"
            );
            assert!(row.ends_with('}'), "row {i} truncated");
        }
        // The final line is written after stop() and must see the last
        // increment.
        let last = rows.last().expect("at least one row");
        assert!(last.contains("\"flush.late\":1"), "final line: {last}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_handle_drop_stops_thread_and_writes_final_line() {
        let path = std::env::temp_dir().join(format!("h2p-flushdrop-{}.jsonl", std::process::id()));
        let m = Arc::new(MetricsRegistry::new());
        m.gauge("g", 1.0);
        {
            let _handle = m
                .flush_every(Duration::from_secs(3600), &path)
                .expect("flusher starts");
            // Dropping immediately must not hang for the full period.
        }
        let text = std::fs::read_to_string(&path).expect("file readable");
        assert!(text.lines().count() >= 1);
        assert!(text.contains("\"g\":1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_every_surfaces_unwritable_path() {
        let m = Arc::new(MetricsRegistry::new());
        let bad = Path::new("/nonexistent-h2p-dir/metrics.jsonl");
        assert!(m.flush_every(Duration::from_millis(5), bad).is_err());
    }

    #[test]
    fn render_table_lists_all_kinds() {
        let m = MetricsRegistry::new();
        m.inc("counter.one");
        m.gauge("gauge.two", 4.0);
        m.observe("hist.three", 2.0);
        let table = m.snapshot().render_table();
        assert!(table.contains("counter.one"));
        assert!(table.contains("gauge.two"));
        assert!(table.contains("hist.three"));
        assert!(table.contains("count=1"));
    }

    #[test]
    fn log_bounds_are_geometric_and_cover_range() {
        let bounds = log_bounds(LOG_MIN_MS, LOG_MAX_MS, LOG_SUB_BUCKETS);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds not sorted");
        assert!((bounds[0] - LOG_MIN_MS).abs() < 1e-12);
        assert!(*bounds.last().unwrap() >= LOG_MAX_MS);
        // Geometric ratio: per_octave sub-buckets per power of two.
        let ratio = bounds[1] / bounds[0];
        assert!((ratio - 2f64.powf(1.0 / f64::from(LOG_SUB_BUCKETS))).abs() < 1e-9);
        // ~104 buckets for µs..minute at 4/octave; layouts must agree
        // across registries so shard snapshots merge.
        assert_eq!(bounds, log_bounds(LOG_MIN_MS, LOG_MAX_MS, LOG_SUB_BUCKETS));
    }

    #[test]
    fn quantile_goldens_at_bucket_edges() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.observe(v);
        }
        // Each observation sits exactly on its bucket's upper edge, so
        // exact-rank quantiles reproduce the observed values.
        assert_eq!(h.quantile(0.25), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.75), Some(4.0));
        // The top rank lands in the overflow bucket → observed max.
        assert_eq!(h.quantile(1.0), Some(8.0));
        // q=0 means "first observation" (rank clamps to 1), and
        // out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(-3.0), Some(1.0));
        assert_eq!(h.quantile(7.0), Some(8.0));
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        // A single observation below the first bound: the bucket edge
        // (1.0) would over-report, so the clamp returns the observation.
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5);
        assert_eq!(h.quantile(0.5), Some(0.5));
        assert_eq!(h.quantile(1.0), Some(0.5));
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(0.5));
        // Empty histogram has no quantiles and no min/max.
        let empty = Histogram::log_bucketed();
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
    }

    #[test]
    fn log_bucketed_quantile_within_relative_error() {
        let mut h = Histogram::log_bucketed();
        for i in 1..=1000u32 {
            h.observe(f64::from(i) * 0.1); // 0.1 .. 100 ms
        }
        let p50 = h.quantile(0.5).unwrap();
        let exact = 50.0;
        // One sub-bucket at 4/octave is a 2^(1/4)-1 ≈ 19% ratio.
        assert!(
            (p50 / exact - 1.0).abs() < 0.19,
            "p50 {p50} strays from {exact}"
        );
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 / 99.0 - 1.0).abs() < 0.19, "p99 {p99}");
    }

    #[test]
    fn observe_nonfinite_never_corrupts() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.5);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            h.observe(bad);
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.nonfinite(), 3);
        assert!(h.sum().is_finite());
        assert_eq!(h.quantile(0.5), Some(1.5));
        assert_eq!(h.min(), Some(1.5));
        assert_eq!(h.max(), Some(1.5));
        // Registry path: a histogram fed only non-finite values stays
        // empty but renders valid JSON with null min/max.
        let m = MetricsRegistry::new();
        m.observe("h", f64::NAN);
        let snap = m.snapshot();
        assert_eq!(snap.histograms["h"].count(), 0);
        assert_eq!(snap.histograms["h"].nonfinite(), 1);
        let json = snap.to_json();
        assert!(json.contains("\"nonfinite\":1"));
        assert!(json.contains("\"min\":null,\"max\":null"));
        assert!(is_valid_json(&json), "bad JSON: {json}");
    }

    #[test]
    fn merge_requires_identical_layouts() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let b = Histogram::new(&[1.0, 3.0]);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(err.to_string(), "histogram bucket layouts differ");
        let mut snap = MetricsSnapshot::default();
        snap.histograms.insert("h".into(), Histogram::new(&[1.0]));
        let mut other = MetricsSnapshot::default();
        other.histograms.insert("h".into(), Histogram::new(&[2.0]));
        let err = snap.merge(&other).unwrap_err();
        assert_eq!(err.name, "h");
        assert!(err.to_string().contains("`h`"));
    }

    #[test]
    fn snapshot_merge_folds_all_kinds() {
        let a = MetricsRegistry::new();
        a.add("c", 2);
        a.gauge("g", 1.0);
        a.observe("h", 5.0);
        let b = MetricsRegistry::new();
        b.add("c", 3);
        b.inc("only_b");
        b.gauge("g", 9.0);
        b.observe("h", 7.0);
        b.observe("h2", 1.0);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot()).unwrap();
        assert_eq!(merged.counter("c"), Some(5));
        assert_eq!(merged.counter("only_b"), Some(1));
        // Gauges are last-write-wins; `other` is the later shard.
        assert_eq!(merged.gauge("g"), Some(9.0));
        assert_eq!(merged.histograms["h"].count(), 2);
        assert_eq!(merged.histograms["h"].min(), Some(5.0));
        assert_eq!(merged.histograms["h"].max(), Some(7.0));
        assert_eq!(merged.histograms["h2"].count(), 1);
        assert_eq!(merged.quantile("h", 1.0), Some(7.0));
        // p50 reports the upper edge of the log bucket holding 5.0
        // (within one sub-bucket, ≈19% relative error).
        let p50 = merged.quantile("h", 0.5).unwrap();
        assert!((5.0..5.0 * 1.19).contains(&p50), "p50 {p50}");
        assert_eq!(merged.quantile("missing", 0.5), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merging shard histograms in any grouping yields identical
        /// counts, quantiles, and min/max — the property that makes
        /// fleet-level aggregation order-insensitive. (Sums are
        /// float-additive, so they only agree to tolerance.)
        #[test]
        fn merge_is_associative(
            xs in prop::collection::vec((0u32..3, 1u32..100_000), 0..48),
        ) {
            let mut shards = [
                Histogram::log_bucketed(),
                Histogram::log_bucketed(),
                Histogram::log_bucketed(),
            ];
            for &(shard, v) in &xs {
                // Spread microseconds..hundreds of ms across buckets.
                shards[shard as usize].observe(f64::from(v) * 1e-3);
            }
            let [a, b, c] = shards;
            let mut left = a.clone();
            left.merge(&b).unwrap();
            left.merge(&c).unwrap();
            let mut bc = b.clone();
            bc.merge(&c).unwrap();
            let mut right = a.clone();
            right.merge(&bc).unwrap();
            prop_assert_eq!(left.counts(), right.counts());
            prop_assert_eq!(left.count(), right.count());
            prop_assert_eq!(left.nonfinite(), right.nonfinite());
            prop_assert_eq!(left.min(), right.min());
            prop_assert_eq!(left.max(), right.max());
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                prop_assert_eq!(left.quantile(q), right.quantile(q));
            }
            prop_assert!((left.sum() - right.sum()).abs() <= 1e-9 * (1.0 + left.sum().abs()));
        }

        /// Quantiles bracket the observed range and never panic, for any
        /// mix of finite and non-finite observations.
        #[test]
        fn quantiles_stay_in_observed_range(
            xs in prop::collection::vec((1u32..1_000_000, any::<bool>()), 1..64),
        ) {
            let mut h = Histogram::log_bucketed();
            let mut finite = 0u64;
            for &(v, poison) in &xs {
                if poison {
                    h.observe(f64::NAN);
                } else {
                    h.observe(f64::from(v) * 1e-4);
                    finite += 1;
                }
            }
            prop_assert_eq!(h.count(), finite);
            prop_assert_eq!(h.nonfinite(), xs.len() as u64 - finite);
            if finite == 0 {
                prop_assert_eq!(h.quantile(0.5), None);
            } else {
                let (min, max) = (h.min().unwrap(), h.max().unwrap());
                for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    let v = h.quantile(q).unwrap();
                    prop_assert!(v >= min && v <= max, "q{q} = {v} outside [{min}, {max}]");
                }
                prop_assert_eq!(h.quantile(1.0), Some(max));
            }
        }

        /// Adversarial metric names — quotes, backslashes, control
        /// characters, non-ASCII — always render valid JSON, and
        /// identical snapshots render byte-identically (sorted keys).
        #[test]
        fn adversarial_names_render_valid_json(
            raw in prop::collection::vec(0u32..0x250, 0..12),
            kind in 0u32..3,
        ) {
            let mut name: String = raw
                .iter()
                .filter_map(|&c| char::from_u32(c))
                .collect();
            // Make sure the truly nasty bytes appear even in short names.
            name.push_str("\"\\\u{0}\n\u{1f}");
            let m = MetricsRegistry::new();
            match kind {
                0 => m.inc(&name),
                1 => m.gauge(&name, 0.5),
                _ => m.observe(&name, 1.0),
            }
            m.inc("plain");
            let snap = m.snapshot();
            let json = snap.to_json();
            prop_assert!(is_valid_json(&json), "invalid JSON for name {name:?}: {json}");
            prop_assert_eq!(&json, &snap.clone().to_json());
            // Merging with itself must keep the JSON valid too.
            let mut doubled = snap.clone();
            doubled.merge(&snap).unwrap();
            prop_assert!(is_valid_json(&doubled.to_json()));
        }
    }

    #[test]
    fn flush_stop_writes_final_snapshot_despite_long_period() {
        // Regression: with an hour-long flush period, everything recorded
        // after the last periodic tick exists only in the final snapshot
        // that stop() forces out. Losing it would silently truncate the
        // metrics tail of every short-lived run.
        let path = std::env::temp_dir().join(format!(
            "h2p-flushtail-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let m = Arc::new(MetricsRegistry::new());
        let handle = m
            .flush_every(Duration::from_secs(3600), &path)
            .expect("flusher starts");
        // Recorded strictly after the flusher started: no periodic tick
        // will ever see it within the test's lifetime.
        m.inc("tail.counter");
        m.observe("tail.ms", 4.2);
        let lines = handle.stop().expect("flusher stops cleanly");
        assert!(lines >= 1, "final snapshot line missing");
        let text = std::fs::read_to_string(&path).expect("file readable");
        let last = text.lines().last().expect("at least one line");
        assert!(
            last.contains("\"tail.counter\":1"),
            "metrics tail lost: {last}"
        );
        assert!(last.contains("tail.ms"), "histogram tail lost: {last}");
        let _ = std::fs::remove_file(&path);
    }
}
