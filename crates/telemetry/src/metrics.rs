//! Thread-safe metrics registry: counters, gauges, and fixed-bucket
//! histograms with a JSON- and table-renderable snapshot.
//!
//! Recording is mutex-guarded and intended to be coarse-grained —
//! callers in hot loops accumulate into locals and flush once per
//! request or phase. The registry never panics: a poisoned lock is
//! recovered (metrics are monotone aggregates, so a panicking writer
//! cannot leave them logically inconsistent).

use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{json_escape, json_num};

/// Default histogram bucket upper bounds, in milliseconds. Chosen to
/// straddle planner phase timings (sub-ms DP slices up to multi-second
/// full plans).
pub const DEFAULT_MS_BUCKETS: [f64; 12] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
];

/// A fixed-bucket histogram: `counts[i]` holds observations `<=
/// bounds[i]` (and greater than the previous bound); the final slot is
/// the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry proper. Cheap to create; share behind an `Arc` (or via
/// [`crate::Telemetry`]) across planner threads.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Increments a counter by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Adds `delta` to a gauge, creating it at zero first.
    pub fn gauge_add(&self, name: &str, delta: f64) {
        let mut inner = self.lock();
        *inner.gauges.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// Records an observation into a histogram with the default
    /// millisecond buckets.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, &DEFAULT_MS_BUCKETS, value);
    }

    /// Records an observation into a histogram with explicit bucket
    /// bounds. The bounds are fixed by the first observation; later
    /// calls reuse the existing buckets.
    pub fn observe_with(&self, name: &str, bounds: &[f64], value: f64) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Copies the current state out into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Spawns a background flusher that appends one JSON snapshot line
    /// (`{"seq":N,"counters":...,...}`) to `path` every `period`,
    /// truncating any existing file first. Stopping the returned
    /// [`FlushHandle`] (explicitly or by drop) wakes the flusher, writes
    /// one final snapshot so the last line always reflects the registry
    /// state at shutdown, and joins the thread.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created or the
    /// flusher thread cannot be spawned.
    pub fn flush_every(self: &Arc<Self>, period: Duration, path: &Path) -> io::Result<FlushHandle> {
        let file = std::fs::File::create(path)?;
        let mut out = BufWriter::new(file);
        let registry = Arc::clone(self);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop_in_thread = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("h2p-metrics-flush".to_owned())
            .spawn(move || -> io::Result<u64> {
                let mut seq = 0u64;
                loop {
                    let (lock, cvar) = &*stop_in_thread;
                    let stopped = {
                        let guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
                        if *guard {
                            true
                        } else {
                            let (guard, _) = cvar
                                .wait_timeout(guard, period)
                                .unwrap_or_else(PoisonError::into_inner);
                            *guard
                        }
                    };
                    let snap = registry.snapshot();
                    let body = snap.to_json();
                    // Splice a sequence number into the object so a
                    // reader can detect dropped or reordered lines.
                    let rest = body.strip_prefix('{').unwrap_or(&body);
                    writeln!(out, "{{\"seq\":{seq},{rest}")?;
                    out.flush()?;
                    seq += 1;
                    if stopped {
                        return Ok(seq);
                    }
                }
            })?;
        Ok(FlushHandle {
            stop,
            thread: Some(thread),
        })
    }
}

/// Handle to a background metrics flusher started by
/// [`MetricsRegistry::flush_every`]. Call [`FlushHandle::stop`] for the
/// line count and any deferred I/O error; dropping the handle stops the
/// flusher too (final snapshot included) but swallows both.
#[derive(Debug)]
pub struct FlushHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<io::Result<u64>>>,
}

impl FlushHandle {
    fn signal(&self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cvar.notify_all();
    }

    /// Stops the flusher: signals the thread, which writes one final
    /// snapshot line and exits, then joins it.
    ///
    /// # Errors
    ///
    /// Returns any I/O error the flusher hit while writing; on success
    /// yields the number of snapshot lines written.
    pub fn stop(mut self) -> io::Result<u64> {
        self.signal();
        match self.thread.take().map(JoinHandle::join) {
            Some(Ok(result)) => result,
            Some(Err(_)) => Err(io::Error::other("metrics flusher thread panicked")),
            None => Ok(0),
        }
    }
}

impl Drop for FlushHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.signal();
            let _ = thread.join();
        }
    }
}

/// Point-in-time copy of a registry, ready for JSON or table rendering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Renders the snapshot as a JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{bounds,counts,sum,count}}}`.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
            .collect::<Vec<_>>()
            .join(",");
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_num(*v)))
            .collect::<Vec<_>>()
            .join(",");
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let bounds = h
                    .bounds()
                    .iter()
                    .map(|b| json_num(*b))
                    .collect::<Vec<_>>()
                    .join(",");
                let counts = h
                    .counts()
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "\"{}\":{{\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}}}",
                    json_escape(k),
                    bounds,
                    counts,
                    json_num(h.sum()),
                    h.count()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }

    /// Renders a plain-text table: one `name value` row per metric,
    /// counters first, then gauges, then histogram means.
    pub fn render_table(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<width$}  {v:.3}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<width$}  count={} mean={:.3}\n",
                h.count(),
                h.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let m = MetricsRegistry::new();
        m.inc("a.count");
        m.add("a.count", 4);
        m.gauge("b.ms", 1.25);
        m.gauge_add("b.ms", 0.75);
        m.observe_with("c.ms", &[1.0, 10.0], 0.5);
        m.observe_with("c.ms", &[1.0, 10.0], 5.0);
        m.observe_with("c.ms", &[1.0, 10.0], 50.0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("a.count"), Some(5));
        assert_eq!(snap.gauge("b.ms"), Some(2.0));
        let h = &snap.histograms["c.ms"];
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let m = MetricsRegistry::new();
        m.inc("x");
        m.gauge("g", 2.5);
        m.observe_with("h", &[1.0], 0.5);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"x\":1"));
        assert!(json.contains("\"g\":2.5"));
        assert!(json.contains("\"bounds\":[1]"));
        assert!(json.contains("\"counts\":[1,0]"));
        // Balanced braces/brackets (no string values contain either).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let m = MetricsRegistry::new();
        assert!(m.snapshot().is_empty());
        m.inc("x");
        assert!(!m.snapshot().is_empty());
    }

    #[test]
    fn flush_every_writes_periodic_and_final_snapshots() {
        let path = std::env::temp_dir().join(format!("h2p-flush-{}.jsonl", std::process::id()));
        let m = Arc::new(MetricsRegistry::new());
        m.inc("flush.start");
        let handle = m
            .flush_every(Duration::from_millis(5), &path)
            .expect("flusher starts");
        std::thread::sleep(Duration::from_millis(30));
        m.inc("flush.late");
        let lines = handle.stop().expect("flusher stops cleanly");
        assert!(lines >= 2, "expected periodic + final lines, got {lines}");
        let text = std::fs::read_to_string(&path).expect("file readable");
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len() as u64, lines);
        for (i, row) in rows.iter().enumerate() {
            assert!(
                row.starts_with(&format!("{{\"seq\":{i},")),
                "row {i}: {row}"
            );
            assert!(row.ends_with('}'), "row {i} truncated");
        }
        // The final line is written after stop() and must see the last
        // increment.
        let last = rows.last().expect("at least one row");
        assert!(last.contains("\"flush.late\":1"), "final line: {last}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_handle_drop_stops_thread_and_writes_final_line() {
        let path = std::env::temp_dir().join(format!("h2p-flushdrop-{}.jsonl", std::process::id()));
        let m = Arc::new(MetricsRegistry::new());
        m.gauge("g", 1.0);
        {
            let _handle = m
                .flush_every(Duration::from_secs(3600), &path)
                .expect("flusher starts");
            // Dropping immediately must not hang for the full period.
        }
        let text = std::fs::read_to_string(&path).expect("file readable");
        assert!(text.lines().count() >= 1);
        assert!(text.contains("\"g\":1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_every_surfaces_unwritable_path() {
        let m = Arc::new(MetricsRegistry::new());
        let bad = Path::new("/nonexistent-h2p-dir/metrics.jsonl");
        assert!(m.flush_every(Duration::from_millis(5), bad).is_err());
    }

    #[test]
    fn render_table_lists_all_kinds() {
        let m = MetricsRegistry::new();
        m.inc("counter.one");
        m.gauge("gauge.two", 4.0);
        m.observe("hist.three", 2.0);
        let table = m.snapshot().render_table();
        assert!(table.contains("counter.one"));
        assert!(table.contains("gauge.two"));
        assert!(table.contains("hist.three"));
        assert!(table.contains("count=1"));
    }
}
