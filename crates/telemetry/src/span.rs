//! RAII phase spans with deterministic ids and per-thread lanes.
//!
//! A [`SpanRecorder`] keeps a per-thread stack of open spans, so nested
//! `enter` calls form a tree even when planner phases fan out across
//! `std::thread::scope` workers. Span ids are content-derived (FNV-1a
//! over parent id, name, and the sibling ordinal), so the sequential
//! phase tree of a deterministic planner run hashes to the same ids on
//! every run — stable anchors for golden tests and trace diffing.
//! Wall-clock fields (`start_us`, `dur_us`) are measured, not derived,
//! and are the only non-deterministic part of a record.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;

/// Sentinel duration of a span that has not been closed yet.
pub const OPEN_DUR_US: f64 = -1.0;

/// One recorded span. `lane` is a dense per-recorder thread index (0 is
/// the first thread that ever entered a span), used as the `tid` of the
/// planner track in the chrome exporter.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub lane: u64,
    pub depth: u32,
    pub start_us: f64,
    pub dur_us: f64,
}

impl SpanRecord {
    pub fn is_closed(&self) -> bool {
        self.dur_us >= 0.0
    }
}

#[derive(Debug, Default)]
struct Inner {
    records: Vec<SpanRecord>,
    /// Per-thread stack of open record indices.
    stacks: HashMap<ThreadId, Vec<usize>>,
    /// Dense lane assignment per thread.
    lanes: HashMap<ThreadId, u64>,
}

/// Records a tree of timed phases. Create one per planner (or share via
/// [`crate::Telemetry`]); guards returned by [`SpanRecorder::enter`]
/// close their span on drop.
#[derive(Debug)]
pub struct SpanRecorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }
}

fn fnv1a(parent: u64, name: &str, ordinal: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for byte in parent.to_le_bytes() {
        mix(byte);
    }
    for byte in name.bytes() {
        mix(byte);
    }
    for byte in ordinal.to_le_bytes() {
        mix(byte);
    }
    hash
}

impl SpanRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a span named `name` under the calling thread's current
    /// span (if any). Returns a guard that closes the span when
    /// dropped.
    pub fn enter(&self, name: impl Into<String>) -> SpanGuard<'_> {
        let name = name.into();
        let start_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        let next_lane = inner.lanes.len() as u64;
        let lane = *inner.lanes.entry(thread).or_insert(next_lane);
        let stack = inner.stacks.entry(thread).or_default();
        let (parent, depth) = match stack.last() {
            Some(&ix) => (Some(inner.records[ix].id), inner.records[ix].depth + 1),
            None => (None, 0),
        };
        let parent_hash = parent.unwrap_or(0);
        let ordinal = inner
            .records
            .iter()
            .filter(|r| r.parent == parent && r.name == name)
            .count() as u64;
        let id = fnv1a(parent_hash, &name, ordinal);
        let index = inner.records.len();
        inner.records.push(SpanRecord {
            id,
            parent,
            name,
            lane,
            depth,
            start_us,
            dur_us: OPEN_DUR_US,
        });
        if let Some(stack) = inner.stacks.get_mut(&thread) {
            stack.push(index);
        }
        SpanGuard {
            recorder: self,
            thread,
            index,
        }
    }

    /// Copies out all records (closed and still-open) in enter order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.lock().records.clone()
    }

    /// Renders the span tree as an indented text listing, roots in
    /// enter order.
    pub fn render_tree(&self) -> String {
        let records = self.records();
        let mut out = String::new();
        for r in &records {
            let indent = "  ".repeat(r.depth as usize);
            if r.is_closed() {
                out.push_str(&format!("{indent}{} {:.3}ms\n", r.name, r.dur_us / 1000.0));
            } else {
                out.push_str(&format!("{indent}{} (open)\n", r.name));
            }
        }
        out
    }

    fn close(&self, thread: ThreadId, index: usize) {
        let end_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        let mut inner = self.lock();
        let start = inner.records[index].start_us;
        inner.records[index].dur_us = (end_us - start).max(0.0);
        if let Some(stack) = inner.stacks.get_mut(&thread) {
            // The guard being dropped is normally the top of the stack;
            // retain-by-value keeps the recorder consistent even if
            // guards are dropped out of order.
            stack.retain(|&ix| ix != index);
        }
    }
}

/// Closes its span on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    recorder: &'a SpanRecorder,
    thread: ThreadId,
    index: usize,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.close(self.thread, self.index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_form_a_tree() {
        let rec = SpanRecorder::new();
        {
            let _root = rec.enter("plan");
            {
                let _child = rec.enter("prepare");
            }
            let _child2 = rec.enter("assemble");
        }
        let records = rec.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "plan");
        assert_eq!(records[0].parent, None);
        assert_eq!(records[1].parent, Some(records[0].id));
        assert_eq!(records[2].parent, Some(records[0].id));
        assert!(records.iter().all(SpanRecord::is_closed));
        assert_eq!(records[0].depth, 0);
        assert_eq!(records[1].depth, 1);
    }

    #[test]
    fn ids_are_deterministic_and_distinct_per_sibling() {
        let tree = || {
            let rec = SpanRecorder::new();
            {
                let _root = rec.enter("plan");
                let _a = rec.enter("phase");
                drop(_a);
                let _b = rec.enter("phase");
            }
            rec.records().iter().map(|r| r.id).collect::<Vec<_>>()
        };
        let first = tree();
        let second = tree();
        assert_eq!(first, second);
        // Same name, same parent, different ordinal => different id.
        assert_ne!(first[1], first[2]);
    }

    #[test]
    fn spans_from_worker_threads_get_their_own_lanes() {
        let rec = SpanRecorder::new();
        let _root = rec.enter("plan");
        std::thread::scope(|scope| {
            for i in 0..2 {
                let rec = &rec;
                scope.spawn(move || {
                    let _s = rec.enter(format!("worker:{i}"));
                });
            }
        });
        drop(_root);
        let records = rec.records();
        assert_eq!(records.len(), 3);
        let mut lanes: Vec<u64> = records.iter().map(|r| r.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), 3, "each thread gets a distinct lane");
        // Worker spans are roots of their own lanes (no cross-thread
        // parenting).
        assert!(records[1..].iter().all(|r| r.parent.is_none()));
    }

    #[test]
    fn render_tree_indents_children() {
        let rec = SpanRecorder::new();
        {
            let _root = rec.enter("plan");
            let _child = rec.enter("prepare");
        }
        let tree = rec.render_tree();
        assert!(tree.contains("plan "));
        assert!(tree.contains("\n  prepare "));
    }
}
