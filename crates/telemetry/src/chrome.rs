//! Structured Chrome Trace Event Format document.
//!
//! Emits the JSON Object Format (`{"traceEvents":[...]}`) understood by
//! `chrome://tracing` and Perfetto. Only the event phases the suite
//! needs are modelled:
//!
//! - `X` complete slices (engine task executions, planner spans)
//! - `i` instant events (task ready, audit violations, relocations)
//! - `C` counters (piecewise interference rates per processor)
//! - `b`/`e` async slices (requests crossing pipeline stages)
//! - `M` metadata (process and thread names)
//!
//! Timestamps are microseconds, per the format. [`TraceDoc::validate`]
//! enforces the schema invariants our golden tests rely on: required
//! fields present, finite non-negative timestamps, monotone start
//! order with proper nesting per `(pid, tid)` track, and balanced
//! async begin/end pairs.

use crate::{json_escape, json_num};

/// Slack when comparing slice boundaries, in microseconds.
const EPS_US: f64 = 1e-3;

/// One argument value on an event's `args` object.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    Num(f64),
    Int(i64),
    Str(String),
}

impl Arg {
    fn to_json(&self) -> String {
        match self {
            Arg::Num(v) => json_num(*v),
            Arg::Int(v) => v.to_string(),
            Arg::Str(s) => format!("\"{}\"", json_escape(s)),
        }
    }
}

/// One trace event. Construct through the [`TraceDoc`] builders.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub ph: char,
    pub name: String,
    pub cat: String,
    pub ts_us: f64,
    pub dur_us: Option<f64>,
    pub pid: u32,
    pub tid: u64,
    /// Async-pair correlation id (`b`/`e` only).
    pub id: Option<u64>,
    /// Instant scope (`i` only): `t` thread, `p` process, `g` global.
    pub scope: Option<char>,
    pub args: Vec<(String, Arg)>,
}

impl TraceEvent {
    fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"name\":\"{}\"", json_escape(&self.name)),
            format!("\"cat\":\"{}\"", json_escape(&self.cat)),
            format!("\"ph\":\"{}\"", self.ph),
            format!("\"ts\":{}", json_num(self.ts_us)),
            format!("\"pid\":{}", self.pid),
            format!("\"tid\":{}", self.tid),
        ];
        if let Some(dur) = self.dur_us {
            fields.push(format!("\"dur\":{}", json_num(dur)));
        }
        if let Some(id) = self.id {
            fields.push(format!("\"id\":\"0x{id:x}\""));
        }
        if let Some(scope) = self.scope {
            fields.push(format!("\"s\":\"{scope}\""));
        }
        if !self.args.is_empty() {
            let args = self
                .args
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v.to_json()))
                .collect::<Vec<_>>()
                .join(",");
            fields.push(format!("\"args\":{{{args}}}"));
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// A whole trace document; serialize with [`TraceDoc::to_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceDoc {
    pub events: Vec<TraceEvent>,
}

impl TraceDoc {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Names a process (`pid` row header in the viewer).
    pub fn process_name(&mut self, pid: u32, name: impl Into<String>) {
        self.push(TraceEvent {
            ph: 'M',
            name: "process_name".to_owned(),
            cat: "__metadata".to_owned(),
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid: 0,
            id: None,
            scope: None,
            args: vec![("name".to_owned(), Arg::Str(name.into()))],
        });
    }

    /// Names a thread (track within a process).
    pub fn thread_name(&mut self, pid: u32, tid: u64, name: impl Into<String>) {
        self.push(TraceEvent {
            ph: 'M',
            name: "thread_name".to_owned(),
            cat: "__metadata".to_owned(),
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid,
            id: None,
            scope: None,
            args: vec![("name".to_owned(), Arg::Str(name.into()))],
        });
    }

    /// Adds an `X` complete slice.
    // The arity mirrors the Trace Event Format's field list; bundling
    // pid/tid/ts/dur into a struct would just rename the same eight
    // values at every call site.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u64,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Arg)>,
    ) {
        self.push(TraceEvent {
            ph: 'X',
            name: name.into(),
            cat: cat.into(),
            ts_us,
            dur_us: Some(dur_us),
            pid,
            tid,
            id: None,
            scope: None,
            args,
        });
    }

    /// Adds an `i` instant event with the given scope (`t`/`p`/`g`).
    // Same arity rationale as `complete`.
    #[allow(clippy::too_many_arguments)]
    pub fn instant(
        &mut self,
        pid: u32,
        tid: u64,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts_us: f64,
        scope: char,
        args: Vec<(String, Arg)>,
    ) {
        self.push(TraceEvent {
            ph: 'i',
            name: name.into(),
            cat: cat.into(),
            ts_us,
            dur_us: None,
            pid,
            tid,
            id: None,
            scope: Some(scope),
            args,
        });
    }

    /// Adds a `C` counter sample; each arg becomes one counter series.
    pub fn counter(
        &mut self,
        pid: u32,
        name: impl Into<String>,
        ts_us: f64,
        args: Vec<(String, Arg)>,
    ) {
        self.push(TraceEvent {
            ph: 'C',
            name: name.into(),
            cat: "counter".to_owned(),
            ts_us,
            dur_us: None,
            pid,
            tid: 0,
            id: None,
            scope: None,
            args,
        });
    }

    /// Adds a matched async begin/end pair (`b` + `e`) correlated by
    /// `id` within `cat`.
    // Same arity rationale as `complete`.
    #[allow(clippy::too_many_arguments)]
    pub fn async_slice(
        &mut self,
        pid: u32,
        tid: u64,
        id: u64,
        name: impl Into<String>,
        cat: impl Into<String>,
        start_us: f64,
        end_us: f64,
    ) {
        let name = name.into();
        let cat = cat.into();
        self.push(TraceEvent {
            ph: 'b',
            name: name.clone(),
            cat: cat.clone(),
            ts_us: start_us,
            dur_us: None,
            pid,
            tid,
            id: Some(id),
            scope: None,
            args: Vec::new(),
        });
        self.push(TraceEvent {
            ph: 'e',
            name,
            cat,
            ts_us: end_us,
            dur_us: None,
            pid,
            tid,
            id: Some(id),
            scope: None,
            args: Vec::new(),
        });
    }

    /// Serializes the document as Chrome Trace JSON Object Format.
    pub fn to_json(&self) -> String {
        let events = self
            .events
            .iter()
            .map(TraceEvent::to_json)
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\"traceEvents\":[\n{events}\n],\"displayTimeUnit\":\"ms\"}}")
    }

    /// Checks the schema invariants. Returns the first problem found.
    ///
    /// - every event has a name, a known phase, and finite `ts >= 0`;
    ///   `X` slices also need finite `dur >= 0`
    /// - per `(pid, tid)` track, `X` slices appear in non-decreasing
    ///   start order and are either disjoint or properly nested
    /// - `b`/`e` async events pair up within `(cat, id)` with
    ///   `begin.ts <= end.ts`
    /// - the serialized text has balanced braces/brackets outside
    ///   string literals
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let known = ['X', 'i', 'C', 'b', 'e', 'M'];
        for (ix, e) in self.events.iter().enumerate() {
            if e.name.is_empty() {
                return Err(format!("event {ix}: empty name"));
            }
            if !known.contains(&e.ph) {
                return Err(format!("event {ix} ({}): unknown phase {:?}", e.name, e.ph));
            }
            if !e.ts_us.is_finite() || e.ts_us < 0.0 {
                return Err(format!("event {ix} ({}): bad ts {}", e.name, e.ts_us));
            }
            match e.ph {
                'X' => match e.dur_us {
                    Some(d) if d.is_finite() && d >= 0.0 => {}
                    other => {
                        return Err(format!(
                            "event {ix} ({}): X needs dur, got {other:?}",
                            e.name
                        ))
                    }
                },
                'i' if !matches!(e.scope, Some('t' | 'p' | 'g')) => {
                    return Err(format!(
                        "event {ix} ({}): instant needs scope t/p/g",
                        e.name
                    ));
                }
                'b' | 'e' if e.id.is_none() => {
                    return Err(format!("event {ix} ({}): async needs id", e.name));
                }
                _ => {}
            }
        }

        // Per-track X slices: monotone starts, disjoint or nested.
        let mut tracks: HashMap<(u32, u64), Vec<&TraceEvent>> = HashMap::new();
        for e in self.events.iter().filter(|e| e.ph == 'X') {
            tracks.entry((e.pid, e.tid)).or_default().push(e);
        }
        // h2p-lint: allow(H2P010) — validation verdict is order-independent; only
        // which track's error surfaces first varies
        for ((pid, tid), slices) in &tracks {
            let mut prev_ts = f64::NEG_INFINITY;
            let mut stack: Vec<f64> = Vec::new(); // open slice end times
            for s in slices {
                if s.ts_us < prev_ts - EPS_US {
                    return Err(format!(
                        "track {pid}/{tid}: slice {} starts at {} before previous start {}",
                        s.name, s.ts_us, prev_ts
                    ));
                }
                prev_ts = s.ts_us;
                let end = s.ts_us + s.dur_us.unwrap_or(0.0);
                while let Some(&open_end) = stack.last() {
                    if s.ts_us >= open_end - EPS_US {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(&open_end) = stack.last() {
                    if end > open_end + EPS_US {
                        return Err(format!(
                            "track {pid}/{tid}: slice {} [{} +{}] overlaps enclosing slice ending at {}",
                            s.name,
                            s.ts_us,
                            s.dur_us.unwrap_or(0.0),
                            open_end
                        ));
                    }
                }
                stack.push(end);
            }
        }

        // Async begin/end balance per (cat, id).
        let mut open: HashMap<(String, u64), Vec<f64>> = HashMap::new();
        for e in &self.events {
            let Some(id) = e.id else { continue };
            let key = (e.cat.clone(), id);
            match e.ph {
                'b' => open.entry(key).or_default().push(e.ts_us),
                'e' => {
                    let Some(begin) = open.get_mut(&key).and_then(Vec::pop) else {
                        return Err(format!(
                            "async end without begin: cat={} id=0x{id:x}",
                            e.cat
                        ));
                    };
                    if e.ts_us < begin - EPS_US {
                        return Err(format!(
                            "async slice cat={} id=0x{id:x} ends at {} before begin {}",
                            e.cat, e.ts_us, begin
                        ));
                    }
                }
                _ => {}
            }
        }
        // h2p-lint: allow(H2P010) — any unbalanced async slice is an error; which
        // one is named in the message is immaterial
        if let Some(((cat, id), _)) = open.iter().find(|(_, begins)| !begins.is_empty()) {
            return Err(format!("async begin without end: cat={cat} id=0x{id:x}"));
        }

        // Textual well-formedness of the emitted JSON (no parser in the
        // workspace, so scan for balanced structure outside strings).
        let text = self.to_json();
        let mut depth_brace = 0i64;
        let mut depth_bracket = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in text.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' => depth_brace += 1,
                '}' => depth_brace -= 1,
                '[' => depth_bracket += 1,
                ']' => depth_bracket -= 1,
                _ => {}
            }
            if depth_brace < 0 || depth_bracket < 0 {
                return Err("emitted JSON closes more scopes than it opens".to_owned());
            }
        }
        if depth_brace != 0 || depth_bracket != 0 || in_string {
            return Err("emitted JSON has unbalanced structure".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_and_adjacent_slices_validate() {
        let mut doc = TraceDoc::new();
        doc.process_name(1, "engine");
        doc.thread_name(1, 0, "NPU");
        doc.complete(1, 0, "outer", "task", 0.0, 100.0, Vec::new());
        doc.complete(1, 0, "inner", "task", 10.0, 50.0, Vec::new());
        doc.complete(1, 0, "next", "task", 100.0, 20.0, Vec::new());
        assert!(doc.validate().is_ok());
    }

    #[test]
    fn overlapping_slices_fail_validation() {
        let mut doc = TraceDoc::new();
        doc.complete(1, 0, "a", "task", 0.0, 100.0, Vec::new());
        doc.complete(1, 0, "b", "task", 50.0, 100.0, Vec::new());
        let err = doc.validate().unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn out_of_order_slices_fail_validation() {
        let mut doc = TraceDoc::new();
        doc.complete(1, 0, "late", "task", 100.0, 10.0, Vec::new());
        doc.complete(1, 0, "early", "task", 0.0, 10.0, Vec::new());
        assert!(doc.validate().is_err());
    }

    #[test]
    fn async_pairs_must_balance() {
        let mut doc = TraceDoc::new();
        doc.async_slice(1, 0, 7, "req", "request", 0.0, 10.0);
        assert!(doc.validate().is_ok());
        doc.push(TraceEvent {
            ph: 'b',
            name: "req".to_owned(),
            cat: "request".to_owned(),
            ts_us: 0.0,
            dur_us: None,
            pid: 1,
            tid: 0,
            id: Some(9),
            scope: None,
            args: Vec::new(),
        });
        let err = doc.validate().unwrap_err();
        assert!(err.contains("begin without end"), "{err}");
    }

    #[test]
    fn json_has_required_fields() {
        let mut doc = TraceDoc::new();
        doc.complete(
            1,
            2,
            "t",
            "task",
            1.5,
            2.5,
            vec![("solo_ms".to_owned(), Arg::Num(1.0))],
        );
        doc.instant(1, 2, "v", "audit", 3.0, 'g', Vec::new());
        doc.counter(
            1,
            "rate",
            0.0,
            vec![("slowdown".to_owned(), Arg::Num(0.25))],
        );
        let json = doc.to_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.5"));
        assert!(json.contains("\"dur\":2.5"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"s\":\"g\""));
        assert!(json.contains("\"args\":{\"slowdown\":0.25}"));
        assert!(doc.validate().is_ok());
    }

    #[test]
    fn bad_timestamps_are_rejected() {
        let mut doc = TraceDoc::new();
        doc.complete(1, 0, "nan", "task", f64::NAN, 1.0, Vec::new());
        assert!(doc.validate().is_err());
        let mut doc = TraceDoc::new();
        doc.complete(1, 0, "negdur", "task", 0.0, -1.0, Vec::new());
        assert!(doc.validate().is_err());
    }
}
