//! Zero-dependency observability primitives for the Hetero2Pipe suite.
//!
//! Five layers, each usable on its own:
//!
//! - [`metrics`] — a thread-safe registry of counters, gauges, and
//!   log-bucketed histograms with exact-rank quantiles and mergeable
//!   snapshots, renderable to hand-written JSON or a human-readable
//!   table. Designed for coarse-grained recording: hot loops count
//!   locally and flush once, so instrumentation never sits on a planner
//!   hot path.
//! - [`span`] — RAII phase spans with deterministic content-derived ids
//!   and per-thread lanes, recording the planner's phase tree.
//! - [`lifecycle`] — the causal request-lifecycle model: typed
//!   admit → plan → window → execute → recover/degrade → complete
//!   events keyed by stable [`RequestId`]/[`TraceId`], JSONL-renderable
//!   so any request's history is reconstructible from the event log.
//! - [`analytics`] — derived run-level views over executed spans and
//!   lifecycle events: per-processor utilization/bubble timelines,
//!   contention-window occupancy, latency profiles (p50/p95/p99), and
//!   deadline/SLO burn-rate accounting.
//! - [`chrome`] — a structured Chrome Trace Event Format document
//!   (`chrome://tracing` / Perfetto-loadable JSON) with a schema
//!   validator, fed by the simulator's engine event log and the span
//!   recorder.
//!
//! The crate is `std`-only by design: the workspace has no registry
//! access, and telemetry must never drag a dependency into the build.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod analytics;
pub mod chrome;
pub mod lifecycle;
pub mod metrics;
pub mod span;

pub use lifecycle::{LifecycleEvent, LifecycleLog, LifecycleStage, QosClass, RequestId, TraceId};
pub use metrics::{FlushHandle, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanGuard, SpanRecord, SpanRecorder};

/// Bundle of the recording layers, shared behind an `Arc` by the
/// planner, the online planner, and the CLI exporter.
#[derive(Debug, Default)]
pub struct Telemetry {
    pub metrics: MetricsRegistry,
    pub spans: SpanRecorder,
    pub lifecycle: LifecycleLog,
}

impl Telemetry {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Opens a span on a recorder and binds the RAII guard to a local.
///
/// ```
/// use h2p_telemetry::{span, SpanRecorder};
/// let rec = SpanRecorder::default();
/// {
///     span!(rec, "plan");
///     span!(rec, "prepare:{}", 3);
/// }
/// assert_eq!(rec.records().len(), 2);
/// ```
#[macro_export]
macro_rules! span {
    ($recorder:expr, $name:literal) => {
        let _span_guard = $recorder.enter($name);
    };
    ($recorder:expr, $fmt:literal, $($arg:tt)*) => {
        let _span_guard = $recorder.enter(format!($fmt, $($arg)*));
    };
}

/// Escapes a string for inclusion in a JSON string literal. Shared by
/// the metrics snapshot and the chrome exporter.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number; non-finite values (which would
/// produce invalid JSON) become `null`.
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }
}
