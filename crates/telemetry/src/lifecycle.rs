//! Causal request-lifecycle model: typed events tracing each request
//! from admission through planning, window assignment, execution, and
//! recovery to completion (or degradation), keyed by a stable
//! [`RequestId`] and a content-derived [`TraceId`].
//!
//! Events carry *simulated* time (the engine's millisecond clock) and a
//! global sequence number assigned at record time — never wall-clock
//! time, so a replayed run emits a byte-identical lifecycle stream
//! (determinism lint H2P011). The JSONL rendering interleaves with the
//! engine event log: each line is a flat object with
//! `"event":"lifecycle"`, so the existing hardened event-log parser can
//! ingest mixed streams.
//!
//! Validation ([`validate`]) checks the causal ordering per request:
//! the first event must be an admission, nothing may follow a terminal
//! completion/degradation, and a completion must be preceded by an
//! execution or recovery on the same request. Duplicate admissions are
//! allowed — a request re-admitted by a recovery round is still one
//! request.

use std::fmt;
use std::sync::{Mutex, PoisonError};

use crate::{json_escape, json_num};

/// Stable per-request identity: the request's index in the batch handed
/// to the planner. Survives replanning, recovery rounds, and window
/// splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub usize);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Content-derived trace identity for one planning invocation: FNV-1a
/// over the ordered model names, so the same workload always yields the
/// same trace id (no wall clock, no RNG) and the planner, the online
/// planner, and the recovery loop independently derive matching ids for
/// the same batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// FNV-1a over the ordered model names, with a separator byte so
    /// `["ab","c"]` and `["a","bc"]` differ.
    pub fn of_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for name in names {
            for b in name.as_ref().bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TraceId(h)
    }

    /// Parses the 16-hex-digit rendering produced by `Display`.
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Quality-of-service class a request is accounted under. Derived
/// deterministically from workload size at report time (small models
/// are interactive, heavyweight ones are batch) until an ingestion
/// layer assigns classes explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Latency-critical (e.g. keyboard/vision UX models).
    Interactive,
    /// Default class.
    Standard,
    /// Throughput-oriented background work.
    Batch,
}

impl QosClass {
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Standard => "standard",
            QosClass::Batch => "batch",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "interactive" => Some(QosClass::Interactive),
            "standard" => Some(QosClass::Standard),
            "batch" => Some(QosClass::Batch),
            _ => None,
        }
    }

    /// All classes, in display order.
    pub const ALL: [QosClass; 3] = [QosClass::Interactive, QosClass::Standard, QosClass::Batch];
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One stage of a request's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleStage {
    /// Request entered a planning invocation.
    Admit,
    /// A plan covering this request was produced.
    Plan,
    /// Request was assigned to contention window `window`.
    Window { window: usize },
    /// Request began executing on the simulated SoC.
    Execute,
    /// A recovery round replanned this request after a fault.
    Recover { round: usize },
    /// Request was abandoned with a typed reason (deadline exceeded,
    /// retries exhausted, no surviving processors).
    Degrade { reason: String },
    /// Request finished; `latency_ms` is its end-to-end simulated
    /// latency.
    Complete { latency_ms: f64 },
}

impl LifecycleStage {
    /// Stable lowercase tag used in the JSONL rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            LifecycleStage::Admit => "admit",
            LifecycleStage::Plan => "plan",
            LifecycleStage::Window { .. } => "window",
            LifecycleStage::Execute => "execute",
            LifecycleStage::Recover { .. } => "recover",
            LifecycleStage::Degrade { .. } => "degrade",
            LifecycleStage::Complete { .. } => "complete",
        }
    }

    /// Terminal stages end a request's history; nothing may follow.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            LifecycleStage::Complete { .. } | LifecycleStage::Degrade { .. }
        )
    }
}

/// One lifecycle event: stage `stage` of request `request` in trace
/// `trace`, at simulated time `at_ms`, with a global record-order
/// sequence number `seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleEvent {
    pub trace: TraceId,
    pub request: RequestId,
    pub seq: u64,
    /// Simulated milliseconds (0.0 for plan-time stages, which precede
    /// the simulated clock).
    pub at_ms: f64,
    pub stage: LifecycleStage,
}

impl LifecycleEvent {
    /// Renders the event as one flat JSONL object, shaped to interleave
    /// with the engine event log:
    /// `{"event":"lifecycle","trace":"<16 hex>","request":0,"seq":3,"at_ms":1.5,"stage":"window","window":2}`.
    pub fn json_line(&self) -> String {
        let mut extra = String::new();
        match &self.stage {
            LifecycleStage::Window { window } => {
                extra = format!(",\"window\":{window}");
            }
            LifecycleStage::Recover { round } => {
                extra = format!(",\"round\":{round}");
            }
            LifecycleStage::Degrade { reason } => {
                extra = format!(",\"reason\":\"{}\"", json_escape(reason));
            }
            LifecycleStage::Complete { latency_ms } => {
                extra = format!(",\"latency_ms\":{}", json_num(*latency_ms));
            }
            LifecycleStage::Admit | LifecycleStage::Plan | LifecycleStage::Execute => {}
        }
        format!(
            "{{\"event\":\"lifecycle\",\"trace\":\"{}\",\"request\":{},\"seq\":{},\"at_ms\":{},\"stage\":\"{}\"{}}}",
            self.trace,
            self.request.0,
            self.seq,
            json_num(self.at_ms),
            self.stage.tag(),
            extra
        )
    }
}

/// Causal-order violation found by [`validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleViolation {
    /// A request's first event was not an admission.
    MissingAdmit { request: RequestId },
    /// An event followed a terminal complete/degrade on the same
    /// request.
    AfterTerminal { request: RequestId, seq: u64 },
    /// A completion with no prior execute/recover on the request.
    CompleteWithoutExecute { request: RequestId, seq: u64 },
}

impl fmt::Display for LifecycleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleViolation::MissingAdmit { request } => {
                write!(f, "request {request}: first lifecycle event is not admit")
            }
            LifecycleViolation::AfterTerminal { request, seq } => {
                write!(f, "request {request}: event seq {seq} after terminal stage")
            }
            LifecycleViolation::CompleteWithoutExecute { request, seq } => {
                write!(
                    f,
                    "request {request}: complete at seq {seq} without execute"
                )
            }
        }
    }
}

/// Checks the per-request causal ordering of a lifecycle stream (any
/// interleaving across requests is legal; order within a request is
/// `seq`-ascending as recorded). Histories are keyed on
/// `(trace, request)`, so a log that interleaves several batches —
/// e.g. per-window planner streams under window-local trace ids — is
/// validated per batch rather than falsely cross-linked.
pub fn validate(events: &[LifecycleEvent]) -> Vec<LifecycleViolation> {
    use std::collections::BTreeMap;
    #[derive(Default)]
    struct ReqState {
        admitted: bool,
        executed: bool,
        terminal: bool,
    }
    let mut states: BTreeMap<(u64, usize), ReqState> = BTreeMap::new();
    let mut violations = Vec::new();
    for e in events {
        let st = states.entry((e.trace.0, e.request.0)).or_default();
        if st.terminal {
            violations.push(LifecycleViolation::AfterTerminal {
                request: e.request,
                seq: e.seq,
            });
            continue;
        }
        if !st.admitted {
            if !matches!(e.stage, LifecycleStage::Admit) {
                violations.push(LifecycleViolation::MissingAdmit { request: e.request });
            }
            // Treat as implicitly admitted so one missing admit doesn't
            // cascade into a violation per event.
            st.admitted = true;
        }
        match &e.stage {
            LifecycleStage::Execute | LifecycleStage::Recover { .. } => st.executed = true,
            LifecycleStage::Complete { .. } => {
                if !st.executed {
                    violations.push(LifecycleViolation::CompleteWithoutExecute {
                        request: e.request,
                        seq: e.seq,
                    });
                }
                st.terminal = true;
            }
            LifecycleStage::Degrade { .. } => st.terminal = true,
            LifecycleStage::Admit | LifecycleStage::Plan | LifecycleStage::Window { .. } => {}
        }
    }
    violations
}

/// Append-only, thread-safe log of lifecycle events. Sequence numbers
/// are assigned under the lock in record order, so a single log yields
/// a totally ordered stream even when planner threads record
/// concurrently.
#[derive(Debug, Default)]
pub struct LifecycleLog {
    events: Mutex<Vec<LifecycleEvent>>,
}

impl LifecycleLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event, assigning the next sequence number.
    pub fn record(&self, trace: TraceId, request: RequestId, at_ms: f64, stage: LifecycleStage) {
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = events.len() as u64;
        events.push(LifecycleEvent {
            trace,
            request,
            seq,
            at_ms,
            stage,
        });
    }

    /// Copies the recorded events out, in sequence order.
    pub fn records(&self) -> Vec<LifecycleEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events (e.g. between planning invocations in
    /// a long-lived process).
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Renders every event as a JSONL line, in sequence order.
    pub fn json_lines(&self) -> Vec<String> {
        self.records()
            .iter()
            .map(LifecycleEvent::json_line)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_is_content_deterministic() {
        let a = TraceId::of_names(["bert", "vit"]);
        let b = TraceId::of_names(["bert", "vit"]);
        assert_eq!(a, b);
        assert_ne!(a, TraceId::of_names(["vit", "bert"]));
        // Separator prevents concatenation collisions.
        assert_ne!(
            TraceId::of_names(["ab", "c"]),
            TraceId::of_names(["a", "bc"])
        );
        let rendered = a.to_string();
        assert_eq!(rendered.len(), 16);
        assert_eq!(TraceId::parse(&rendered), Some(a));
        assert_eq!(TraceId::parse("xyz"), None);
    }

    #[test]
    fn log_assigns_sequence_numbers_in_record_order() {
        let log = LifecycleLog::new();
        let t = TraceId::of_names(["m"]);
        log.record(t, RequestId(0), 0.0, LifecycleStage::Admit);
        log.record(t, RequestId(1), 0.0, LifecycleStage::Admit);
        log.record(t, RequestId(0), 0.0, LifecycleStage::Plan);
        let events = log.records();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(log.len(), 3);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn json_lines_are_flat_and_tagged() {
        let log = LifecycleLog::new();
        let t = TraceId(0xabc);
        log.record(t, RequestId(2), 0.0, LifecycleStage::Admit);
        log.record(t, RequestId(2), 0.0, LifecycleStage::Window { window: 3 });
        log.record(
            t,
            RequestId(2),
            1.5,
            LifecycleStage::Degrade {
                reason: "deadline \"exceeded\"".into(),
            },
        );
        log.record(
            t,
            RequestId(2),
            9.25,
            LifecycleStage::Complete { latency_ms: 9.25 },
        );
        let lines = log.json_lines();
        assert_eq!(
            lines[0],
            "{\"event\":\"lifecycle\",\"trace\":\"0000000000000abc\",\"request\":2,\"seq\":0,\"at_ms\":0,\"stage\":\"admit\"}"
        );
        assert!(lines[1].contains("\"stage\":\"window\",\"window\":3"));
        assert!(lines[2].contains("\"reason\":\"deadline \\\"exceeded\\\"\""));
        assert!(lines[3].contains("\"latency_ms\":9.25"));
    }

    #[test]
    fn validate_flags_causal_violations() {
        let t = TraceId(1);
        let ev = |request: usize, seq: u64, stage: LifecycleStage| LifecycleEvent {
            trace: t,
            request: RequestId(request),
            seq,
            at_ms: 0.0,
            stage,
        };
        // Clean history: admit → plan → execute → complete.
        let ok = vec![
            ev(0, 0, LifecycleStage::Admit),
            ev(0, 1, LifecycleStage::Plan),
            ev(0, 2, LifecycleStage::Execute),
            ev(0, 3, LifecycleStage::Complete { latency_ms: 1.0 }),
        ];
        assert!(validate(&ok).is_empty());
        // Duplicate admit (recovery re-admission) is legal.
        let readmit = vec![
            ev(0, 0, LifecycleStage::Admit),
            ev(0, 1, LifecycleStage::Admit),
            ev(0, 2, LifecycleStage::Recover { round: 1 }),
            ev(0, 3, LifecycleStage::Complete { latency_ms: 2.0 }),
        ];
        assert!(validate(&readmit).is_empty());
        // First event not admit.
        let v = validate(&[ev(1, 0, LifecycleStage::Plan)]);
        assert_eq!(
            v,
            vec![LifecycleViolation::MissingAdmit {
                request: RequestId(1)
            }]
        );
        // Event after terminal.
        let v = validate(&[
            ev(0, 0, LifecycleStage::Admit),
            ev(0, 1, LifecycleStage::Degrade { reason: "x".into() }),
            ev(0, 2, LifecycleStage::Plan),
        ]);
        assert_eq!(
            v,
            vec![LifecycleViolation::AfterTerminal {
                request: RequestId(0),
                seq: 2
            }]
        );
        // Complete without execute.
        let v = validate(&[
            ev(0, 0, LifecycleStage::Admit),
            ev(0, 1, LifecycleStage::Complete { latency_ms: 1.0 }),
        ]);
        assert_eq!(
            v,
            vec![LifecycleViolation::CompleteWithoutExecute {
                request: RequestId(0),
                seq: 1
            }]
        );
    }

    #[test]
    fn qos_class_roundtrips() {
        for c in QosClass::ALL {
            assert_eq!(QosClass::parse(c.name()), Some(c));
        }
        assert_eq!(QosClass::parse("bogus"), None);
    }
}
