//! Causal request-lifecycle model: typed events tracing each request
//! from admission through planning, window assignment, execution, and
//! recovery to completion (or degradation), keyed by a stable
//! [`RequestId`] and a content-derived [`TraceId`].
//!
//! Events carry *simulated* time (the engine's millisecond clock) and a
//! global sequence number assigned at record time — never wall-clock
//! time, so a replayed run emits a byte-identical lifecycle stream
//! (determinism lint H2P011). The JSONL rendering interleaves with the
//! engine event log: each line is a flat object with
//! `"event":"lifecycle"`, so the existing hardened event-log parser can
//! ingest mixed streams.
//!
//! Validation ([`validate`]) checks the causal ordering per request:
//! the first event must be an admission (or a rejection at the door),
//! nothing may follow a terminal completion/degradation/rejection/shed,
//! duplicate completions are a typed violation, and a completion must
//! be preceded by an execution or recovery on the same request.
//! Duplicate admissions are allowed — a request re-admitted by a
//! recovery round is still one request.
//!
//! The serving front-end (`h2p-serve`) extends the grammar with two
//! backpressure terminals: `reject` (admission control turned the
//! request away before it was ever admitted) and `shed` (an admitted,
//! queued request was evicted because its remaining slack could no
//! longer cover its solo critical path). Both carry a typed reason so
//! no request ever leaves the system silently.

use std::fmt;
use std::sync::{Mutex, PoisonError};

use crate::{json_escape, json_num};

/// Stable per-request identity: the request's index in the batch handed
/// to the planner. Survives replanning, recovery rounds, and window
/// splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub usize);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Content-derived trace identity for one planning invocation: FNV-1a
/// over the ordered model names, so the same workload always yields the
/// same trace id (no wall clock, no RNG) and the planner, the online
/// planner, and the recovery loop independently derive matching ids for
/// the same batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// FNV-1a over the ordered model names, with a separator byte so
    /// `["ab","c"]` and `["a","bc"]` differ.
    pub fn of_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for name in names {
            for b in name.as_ref().bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TraceId(h)
    }

    /// Parses the 16-hex-digit rendering produced by `Display`.
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Quality-of-service class a request is accounted under. Derived
/// deterministically from workload size at report time (small models
/// are interactive, heavyweight ones are batch) until an ingestion
/// layer assigns classes explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Latency-critical (e.g. keyboard/vision UX models).
    Interactive,
    /// Default class.
    Standard,
    /// Throughput-oriented background work.
    Batch,
}

impl QosClass {
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Standard => "standard",
            QosClass::Batch => "batch",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "interactive" => Some(QosClass::Interactive),
            "standard" => Some(QosClass::Standard),
            "batch" => Some(QosClass::Batch),
            _ => None,
        }
    }

    /// All classes, in display order.
    pub const ALL: [QosClass; 3] = [QosClass::Interactive, QosClass::Standard, QosClass::Batch];
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One stage of a request's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleStage {
    /// Request entered a planning invocation.
    Admit,
    /// A plan covering this request was produced.
    Plan,
    /// Request was assigned to contention window `window`.
    Window { window: usize },
    /// Request began executing on the simulated SoC.
    Execute,
    /// A recovery round replanned this request after a fault.
    Recover { round: usize },
    /// Request was abandoned with a typed reason (deadline exceeded,
    /// retries exhausted, no surviving processors).
    Degrade { reason: String },
    /// Request finished; `latency_ms` is its end-to-end simulated
    /// latency.
    Complete { latency_ms: f64 },
    /// Admission control turned the request away before it entered the
    /// queue (queue full, deadline infeasible, or shedding pressure).
    /// Terminal, and legal as a request's *first* event — a rejected
    /// request is never admitted.
    Reject { reason: String },
    /// An admitted, queued request was evicted by deadline-aware load
    /// shedding before it could execute. Terminal; requires a prior
    /// admission.
    Shed { reason: String },
}

impl LifecycleStage {
    /// Stable lowercase tag used in the JSONL rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            LifecycleStage::Admit => "admit",
            LifecycleStage::Plan => "plan",
            LifecycleStage::Window { .. } => "window",
            LifecycleStage::Execute => "execute",
            LifecycleStage::Recover { .. } => "recover",
            LifecycleStage::Degrade { .. } => "degrade",
            LifecycleStage::Complete { .. } => "complete",
            LifecycleStage::Reject { .. } => "reject",
            LifecycleStage::Shed { .. } => "shed",
        }
    }

    /// Terminal stages end a request's history; nothing may follow.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            LifecycleStage::Complete { .. }
                | LifecycleStage::Degrade { .. }
                | LifecycleStage::Reject { .. }
                | LifecycleStage::Shed { .. }
        )
    }
}

/// One lifecycle event: stage `stage` of request `request` in trace
/// `trace`, at simulated time `at_ms`, with a global record-order
/// sequence number `seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleEvent {
    pub trace: TraceId,
    pub request: RequestId,
    pub seq: u64,
    /// Simulated milliseconds (0.0 for plan-time stages, which precede
    /// the simulated clock).
    pub at_ms: f64,
    pub stage: LifecycleStage,
}

impl LifecycleEvent {
    /// Renders the event as one flat JSONL object, shaped to interleave
    /// with the engine event log:
    /// `{"event":"lifecycle","trace":"<16 hex>","request":0,"seq":3,"at_ms":1.5,"stage":"window","window":2}`.
    pub fn json_line(&self) -> String {
        let mut extra = String::new();
        match &self.stage {
            LifecycleStage::Window { window } => {
                extra = format!(",\"window\":{window}");
            }
            LifecycleStage::Recover { round } => {
                extra = format!(",\"round\":{round}");
            }
            LifecycleStage::Degrade { reason }
            | LifecycleStage::Reject { reason }
            | LifecycleStage::Shed { reason } => {
                extra = format!(",\"reason\":\"{}\"", json_escape(reason));
            }
            LifecycleStage::Complete { latency_ms } => {
                extra = format!(",\"latency_ms\":{}", json_num(*latency_ms));
            }
            LifecycleStage::Admit | LifecycleStage::Plan | LifecycleStage::Execute => {}
        }
        format!(
            "{{\"event\":\"lifecycle\",\"trace\":\"{}\",\"request\":{},\"seq\":{},\"at_ms\":{},\"stage\":\"{}\"{}}}",
            self.trace,
            self.request.0,
            self.seq,
            json_num(self.at_ms),
            self.stage.tag(),
            extra
        )
    }
}

/// Causal-order violation found by [`validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleViolation {
    /// A request's first event was not an admission.
    MissingAdmit { request: RequestId },
    /// An event followed a terminal complete/degrade on the same
    /// request.
    AfterTerminal { request: RequestId, seq: u64 },
    /// A completion with no prior execute/recover on the request.
    CompleteWithoutExecute { request: RequestId, seq: u64 },
    /// A second `complete` after the request already completed — a
    /// double-accounted request, reported as its own typed violation
    /// rather than a generic after-terminal event.
    DuplicateComplete { request: RequestId, seq: u64 },
    /// A `reject` on a request that was already admitted: admission
    /// control may only turn requests away at the door (an admitted
    /// request that must be abandoned is shed or degraded instead).
    RejectAfterAdmit { request: RequestId, seq: u64 },
}

impl fmt::Display for LifecycleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleViolation::MissingAdmit { request } => {
                write!(f, "request {request}: first lifecycle event is not admit")
            }
            LifecycleViolation::AfterTerminal { request, seq } => {
                write!(f, "request {request}: event seq {seq} after terminal stage")
            }
            LifecycleViolation::CompleteWithoutExecute { request, seq } => {
                write!(
                    f,
                    "request {request}: complete at seq {seq} without execute"
                )
            }
            LifecycleViolation::DuplicateComplete { request, seq } => {
                write!(f, "request {request}: duplicate complete at seq {seq}")
            }
            LifecycleViolation::RejectAfterAdmit { request, seq } => {
                write!(
                    f,
                    "request {request}: reject at seq {seq} after the request was admitted"
                )
            }
        }
    }
}

/// Checks the per-request causal ordering of a lifecycle stream (any
/// interleaving across requests is legal; order within a request is
/// `seq`-ascending as recorded). Histories are keyed on
/// `(trace, request)`, so a log that interleaves several batches —
/// e.g. per-window planner streams under window-local trace ids — is
/// validated per batch rather than falsely cross-linked.
pub fn validate(events: &[LifecycleEvent]) -> Vec<LifecycleViolation> {
    use std::collections::BTreeMap;
    #[derive(Clone, Copy, PartialEq)]
    enum Terminal {
        Completed,
        Other,
    }
    #[derive(Default)]
    struct ReqState {
        seen_any: bool,
        /// True only on an *actual* admit event (not the implicit
        /// admission assumed after a MissingAdmit), so RejectAfterAdmit
        /// fires precisely when the log recorded a real admission.
        seen_admit: bool,
        executed: bool,
        terminal: Option<Terminal>,
    }
    let mut states: BTreeMap<(u64, usize), ReqState> = BTreeMap::new();
    let mut violations = Vec::new();
    for e in events {
        let st = states.entry((e.trace.0, e.request.0)).or_default();
        if let Some(kind) = st.terminal {
            if kind == Terminal::Completed && matches!(e.stage, LifecycleStage::Complete { .. }) {
                violations.push(LifecycleViolation::DuplicateComplete {
                    request: e.request,
                    seq: e.seq,
                });
            } else {
                violations.push(LifecycleViolation::AfterTerminal {
                    request: e.request,
                    seq: e.seq,
                });
            }
            continue;
        }
        if !st.seen_any {
            st.seen_any = true;
            // A request may open with an admission or with a rejection
            // at the door; anything else (including a shed, which needs
            // a prior admit) is out of order. Flag once and treat as
            // implicitly admitted so one missing admit doesn't cascade
            // into a violation per event.
            if !matches!(
                e.stage,
                LifecycleStage::Admit | LifecycleStage::Reject { .. }
            ) {
                violations.push(LifecycleViolation::MissingAdmit { request: e.request });
            }
        }
        match &e.stage {
            LifecycleStage::Admit => st.seen_admit = true,
            LifecycleStage::Execute | LifecycleStage::Recover { .. } => st.executed = true,
            LifecycleStage::Complete { .. } => {
                if !st.executed {
                    violations.push(LifecycleViolation::CompleteWithoutExecute {
                        request: e.request,
                        seq: e.seq,
                    });
                }
                st.terminal = Some(Terminal::Completed);
            }
            LifecycleStage::Degrade { .. } | LifecycleStage::Shed { .. } => {
                st.terminal = Some(Terminal::Other);
            }
            LifecycleStage::Reject { .. } => {
                if st.seen_admit {
                    violations.push(LifecycleViolation::RejectAfterAdmit {
                        request: e.request,
                        seq: e.seq,
                    });
                }
                st.terminal = Some(Terminal::Other);
            }
            LifecycleStage::Plan | LifecycleStage::Window { .. } => {}
        }
    }
    violations
}

/// Append-only, thread-safe log of lifecycle events. Sequence numbers
/// are assigned under the lock in record order, so a single log yields
/// a totally ordered stream even when planner threads record
/// concurrently.
#[derive(Debug, Default)]
pub struct LifecycleLog {
    events: Mutex<Vec<LifecycleEvent>>,
}

impl LifecycleLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event, assigning the next sequence number.
    pub fn record(&self, trace: TraceId, request: RequestId, at_ms: f64, stage: LifecycleStage) {
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = events.len() as u64;
        events.push(LifecycleEvent {
            trace,
            request,
            seq,
            at_ms,
            stage,
        });
    }

    /// Copies the recorded events out, in sequence order.
    pub fn records(&self) -> Vec<LifecycleEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events (e.g. between planning invocations in
    /// a long-lived process).
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Renders every event as a JSONL line, in sequence order.
    pub fn json_lines(&self) -> Vec<String> {
        self.records()
            .iter()
            .map(LifecycleEvent::json_line)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_is_content_deterministic() {
        let a = TraceId::of_names(["bert", "vit"]);
        let b = TraceId::of_names(["bert", "vit"]);
        assert_eq!(a, b);
        assert_ne!(a, TraceId::of_names(["vit", "bert"]));
        // Separator prevents concatenation collisions.
        assert_ne!(
            TraceId::of_names(["ab", "c"]),
            TraceId::of_names(["a", "bc"])
        );
        let rendered = a.to_string();
        assert_eq!(rendered.len(), 16);
        assert_eq!(TraceId::parse(&rendered), Some(a));
        assert_eq!(TraceId::parse("xyz"), None);
    }

    #[test]
    fn log_assigns_sequence_numbers_in_record_order() {
        let log = LifecycleLog::new();
        let t = TraceId::of_names(["m"]);
        log.record(t, RequestId(0), 0.0, LifecycleStage::Admit);
        log.record(t, RequestId(1), 0.0, LifecycleStage::Admit);
        log.record(t, RequestId(0), 0.0, LifecycleStage::Plan);
        let events = log.records();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(log.len(), 3);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn json_lines_are_flat_and_tagged() {
        let log = LifecycleLog::new();
        let t = TraceId(0xabc);
        log.record(t, RequestId(2), 0.0, LifecycleStage::Admit);
        log.record(t, RequestId(2), 0.0, LifecycleStage::Window { window: 3 });
        log.record(
            t,
            RequestId(2),
            1.5,
            LifecycleStage::Degrade {
                reason: "deadline \"exceeded\"".into(),
            },
        );
        log.record(
            t,
            RequestId(2),
            9.25,
            LifecycleStage::Complete { latency_ms: 9.25 },
        );
        let lines = log.json_lines();
        assert_eq!(
            lines[0],
            "{\"event\":\"lifecycle\",\"trace\":\"0000000000000abc\",\"request\":2,\"seq\":0,\"at_ms\":0,\"stage\":\"admit\"}"
        );
        assert!(lines[1].contains("\"stage\":\"window\",\"window\":3"));
        assert!(lines[2].contains("\"reason\":\"deadline \\\"exceeded\\\"\""));
        assert!(lines[3].contains("\"latency_ms\":9.25"));
    }

    #[test]
    fn validate_flags_causal_violations() {
        let t = TraceId(1);
        let ev = |request: usize, seq: u64, stage: LifecycleStage| LifecycleEvent {
            trace: t,
            request: RequestId(request),
            seq,
            at_ms: 0.0,
            stage,
        };
        // Clean history: admit → plan → execute → complete.
        let ok = vec![
            ev(0, 0, LifecycleStage::Admit),
            ev(0, 1, LifecycleStage::Plan),
            ev(0, 2, LifecycleStage::Execute),
            ev(0, 3, LifecycleStage::Complete { latency_ms: 1.0 }),
        ];
        assert!(validate(&ok).is_empty());
        // Duplicate admit (recovery re-admission) is legal.
        let readmit = vec![
            ev(0, 0, LifecycleStage::Admit),
            ev(0, 1, LifecycleStage::Admit),
            ev(0, 2, LifecycleStage::Recover { round: 1 }),
            ev(0, 3, LifecycleStage::Complete { latency_ms: 2.0 }),
        ];
        assert!(validate(&readmit).is_empty());
        // First event not admit.
        let v = validate(&[ev(1, 0, LifecycleStage::Plan)]);
        assert_eq!(
            v,
            vec![LifecycleViolation::MissingAdmit {
                request: RequestId(1)
            }]
        );
        // Event after terminal.
        let v = validate(&[
            ev(0, 0, LifecycleStage::Admit),
            ev(0, 1, LifecycleStage::Degrade { reason: "x".into() }),
            ev(0, 2, LifecycleStage::Plan),
        ]);
        assert_eq!(
            v,
            vec![LifecycleViolation::AfterTerminal {
                request: RequestId(0),
                seq: 2
            }]
        );
        // Complete without execute.
        let v = validate(&[
            ev(0, 0, LifecycleStage::Admit),
            ev(0, 1, LifecycleStage::Complete { latency_ms: 1.0 }),
        ]);
        assert_eq!(
            v,
            vec![LifecycleViolation::CompleteWithoutExecute {
                request: RequestId(0),
                seq: 1
            }]
        );
    }

    #[test]
    fn validate_flags_duplicate_complete() {
        let t = TraceId(7);
        let ev = |seq: u64, stage: LifecycleStage| LifecycleEvent {
            trace: t,
            request: RequestId(0),
            seq,
            at_ms: 0.0,
            stage,
        };
        // A second complete on the same (trace, request) is its own
        // typed violation, not a generic AfterTerminal.
        let v = validate(&[
            ev(0, LifecycleStage::Admit),
            ev(1, LifecycleStage::Execute),
            ev(2, LifecycleStage::Complete { latency_ms: 1.0 }),
            ev(3, LifecycleStage::Complete { latency_ms: 1.0 }),
        ]);
        assert_eq!(
            v,
            vec![LifecycleViolation::DuplicateComplete {
                request: RequestId(0),
                seq: 3
            }]
        );
        // A complete after a degrade stays the generic AfterTerminal.
        let v = validate(&[
            ev(0, LifecycleStage::Admit),
            ev(1, LifecycleStage::Degrade { reason: "x".into() }),
            ev(2, LifecycleStage::Complete { latency_ms: 1.0 }),
        ]);
        assert_eq!(
            v,
            vec![LifecycleViolation::AfterTerminal {
                request: RequestId(0),
                seq: 2
            }]
        );
    }

    #[test]
    fn validate_enforces_reject_and_shed_rules() {
        let t = TraceId(9);
        let ev = |request: usize, seq: u64, stage: LifecycleStage| LifecycleEvent {
            trace: t,
            request: RequestId(request),
            seq,
            at_ms: 0.0,
            stage,
        };
        // Reject as the first (and only) event is legal: the request
        // was turned away at the door, never admitted.
        let v = validate(&[ev(
            0,
            0,
            LifecycleStage::Reject {
                reason: "queue_full".into(),
            },
        )]);
        assert!(v.is_empty(), "{v:?}");
        // Reject after an actual admit is a typed violation.
        let v = validate(&[
            ev(1, 0, LifecycleStage::Admit),
            ev(
                1,
                1,
                LifecycleStage::Reject {
                    reason: "shedding".into(),
                },
            ),
        ]);
        assert_eq!(
            v,
            vec![LifecycleViolation::RejectAfterAdmit {
                request: RequestId(1),
                seq: 1
            }]
        );
        // Shed requires a prior admit: admit → shed is clean...
        let v = validate(&[
            ev(2, 0, LifecycleStage::Admit),
            ev(
                2,
                1,
                LifecycleStage::Shed {
                    reason: "slack_below_solo".into(),
                },
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
        // ...but shed as a request's first event is a MissingAdmit.
        let v = validate(&[ev(3, 0, LifecycleStage::Shed { reason: "s".into() })]);
        assert_eq!(
            v,
            vec![LifecycleViolation::MissingAdmit {
                request: RequestId(3)
            }]
        );
        // Both are terminal: nothing may follow a reject or a shed.
        let v = validate(&[
            ev(4, 0, LifecycleStage::Reject { reason: "q".into() }),
            ev(4, 1, LifecycleStage::Plan),
        ]);
        assert_eq!(
            v,
            vec![LifecycleViolation::AfterTerminal {
                request: RequestId(4),
                seq: 1
            }]
        );
    }

    #[test]
    fn reject_and_shed_json_lines_carry_reasons() {
        let log = LifecycleLog::new();
        let t = TraceId(0x1);
        log.record(
            t,
            RequestId(0),
            2.0,
            LifecycleStage::Reject {
                reason: "queue_full".into(),
            },
        );
        log.record(
            t,
            RequestId(1),
            3.0,
            LifecycleStage::Shed {
                reason: "slack_below_solo".into(),
            },
        );
        let lines = log.json_lines();
        assert!(lines[0].contains("\"stage\":\"reject\",\"reason\":\"queue_full\""));
        assert!(lines[1].contains("\"stage\":\"shed\",\"reason\":\"slack_below_solo\""));
        assert!(LifecycleStage::Reject { reason: "x".into() }.is_terminal());
        assert!(LifecycleStage::Shed { reason: "x".into() }.is_terminal());
    }

    #[test]
    fn qos_class_roundtrips() {
        for c in QosClass::ALL {
            assert_eq!(QosClass::parse(c.name()), Some(c));
        }
        assert_eq!(QosClass::parse("bogus"), None);
    }
}
