//! Concrete models: the planner-stack code paths explored under
//! controlled schedules, plus the abstract recovery-round machine.
//!
//! Every scenario runs the *production* code (`par::map`/`try_map`, the
//! estimator's tables cache, `Planner::plan_with_threads`,
//! `recovery::replan_on_survivors`) — not a re-implementation — and
//! asserts the repo's standing determinism invariants:
//!
//! * cursor claims form an exact partition of the items (no lost, no
//!   double-claimed index);
//! * `try_map` reports the lowest-index error and claims stay a prefix;
//! * concurrent tables-cache lookups return one shared `Arc` with
//!   exactly one miss;
//! * `plan_with_threads` is bit-identical to the frozen
//!   `Planner::plan_reference` under every schedule;
//! * recovery replans never assign a stage, run or slot to a down
//!   processor (H2P009 stays hard).

use crate::explore::{explore_exhaustive, explore_pct, ModelReport};
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::Planner;
use hetero2pipe::recovery::replan_on_survivors;
use hetero2pipe::sync::model::InjectedFault;
use hetero2pipe::sync::{self, Arc};
use hetero2pipe::{error::PlanError, par};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Exploration bounds shared by every scenario.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// DFS schedule cap per scenario (hit ⇒ reported incomplete).
    pub exhaustive_cap: usize,
    /// PCT schedule count for the large (full-planner) model.
    pub pct_seeds: u64,
    /// Stop a scenario at its first violating schedule.
    pub stop_on_violation: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        Self {
            exhaustive_cap: 60_000,
            pct_seeds: 24,
            stop_on_violation: false,
        }
    }
}

fn setup_failure(name: &str, err: &PlanError) -> ModelReport {
    ModelReport {
        name: name.to_owned(),
        schedules: 0,
        steps: 0,
        complete: false,
        violations: 1,
        samples: vec![format!("scenario setup failed: {err}")],
    }
}

/// Exhaustive model of `par::map`'s chunked-cursor claim loop:
/// `workers` scoped threads race the shared cursor over `items` items.
/// Claim counts are recorded with *real* (unscheduled) atomics so the
/// instrumentation adds no yield points of its own.
pub fn cursor_map(
    workers: usize,
    items: usize,
    fault: Option<InjectedFault>,
    opts: CheckOptions,
) -> ModelReport {
    let name = match fault {
        Some(f) => format!("cursor_map(w={workers},n={items})+{}", f.name()),
        None => format!("cursor_map(w={workers},n={items})"),
    };
    let data: Vec<usize> = (0..items).map(|i| i * 13 + 5).collect();
    let expected: Vec<usize> = data.iter().map(|&x| x.wrapping_mul(31) + 7).collect();
    explore_exhaustive(
        &name,
        workers,
        fault,
        opts.exhaustive_cap,
        opts.stop_on_violation,
        move || {
            let claims: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
            let out = par::map(workers, &data, |idx, &x| {
                claims[idx].fetch_add(1, Ordering::SeqCst);
                x.wrapping_mul(31) + 7
            });
            assert_eq!(out, expected, "cursor_map output differs from sequential");
            for (idx, claim) in claims.iter().enumerate() {
                let n = claim.load(Ordering::SeqCst);
                assert!(
                    n == 1,
                    "exact-partition violation: item {idx} claimed {n} times"
                );
            }
        },
    )
}

/// Exhaustive model of `par::try_map` with failures injected at the
/// given item indices: the claimed set must stay a prefix with no index
/// claimed twice, and the reported error must be the lowest-index one.
pub fn cursor_try_map(
    workers: usize,
    items: usize,
    fails: Vec<usize>,
    opts: CheckOptions,
) -> ModelReport {
    let name = format!("cursor_try_map(w={workers},n={items},fails={fails:?})");
    let data: Vec<usize> = (0..items).collect();
    let expected: Vec<usize> = data.iter().map(|&x| x + 1).collect();
    explore_exhaustive(
        &name,
        workers,
        None,
        opts.exhaustive_cap,
        opts.stop_on_violation,
        move || {
            let claims: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
            let out: Result<Vec<usize>, String> = par::try_map(workers, &data, |idx, &x| {
                claims[idx].fetch_add(1, Ordering::SeqCst);
                if fails.contains(&idx) {
                    Err(format!("item {idx} failed"))
                } else {
                    Ok(x + 1)
                }
            });
            let counts: Vec<usize> = claims.iter().map(|c| c.load(Ordering::SeqCst)).collect();
            for (idx, &n) in counts.iter().enumerate() {
                assert!(n <= 1, "item {idx} claimed {n} times (double claim)");
            }
            let prefix_len = counts.iter().position(|&n| n == 0).unwrap_or(items);
            assert!(
                counts.iter().skip(prefix_len).all(|&n| n == 0),
                "claimed set is not a prefix: counts={counts:?}"
            );
            match fails.iter().min() {
                Some(&lowest) => {
                    assert!(
                        prefix_len > lowest,
                        "failing item {lowest} was never claimed (counts={counts:?})"
                    );
                    assert_eq!(
                        out,
                        Err(format!("item {lowest} failed")),
                        "lowest-index error rule violated"
                    );
                }
                None => {
                    assert_eq!(prefix_len, items, "success run left unclaimed items");
                    assert_eq!(out, Ok(expected.clone()), "try_map output mismatch");
                }
            }
        },
    )
}

/// Exhaustive model of the cross-invocation tables cache: two scoped
/// threads race `Estimator::tables_cached` on one key. Under every
/// schedule both must receive the *same* `Arc` (pointer-identical) with
/// exactly one of them missing.
pub fn tables_cache(opts: CheckOptions) -> ModelReport {
    let name = "tables_cache(2 threads, 1 key)";
    let soc = SocSpec::kirin_990();
    let planner = match Planner::new(&soc) {
        Ok(p) => p,
        Err(e) => return setup_failure(name, &e),
    };
    let graph = ModelId::SqueezeNet.graph();
    let procs = planner.pipeline_procs();
    let est = planner.estimator();
    explore_exhaustive(
        name,
        2,
        None,
        opts.exhaustive_cap,
        opts.stop_on_violation,
        || {
            est.clear_tables_cache();
            let (a, b) = sync::scope(|s| {
                let h1 = s.spawn(|| est.tables_cached(&graph, &procs));
                let h2 = s.spawn(|| est.tables_cached(&graph, &procs));
                let a = match h1.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                let b = match h2.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                (a, b)
            });
            let (tables_a, hit_a) = a;
            let (tables_b, hit_b) = b;
            assert!(
                Arc::ptr_eq(&tables_a, &tables_b),
                "tables cache returned two distinct Arcs for one key"
            );
            assert_eq!(
                usize::from(hit_a) + usize::from(hit_b),
                1,
                "exactly one of two concurrent lookups must miss (hits: {hit_a}, {hit_b})"
            );
        },
    )
}

/// PCT model of the full planner: `plan_with_threads(_, 2)` must stay
/// bit-identical to the frozen sequential `plan_reference` under every
/// sampled schedule (warm and cold caches alike — the first schedule
/// runs cold, the rest warm).
pub fn planner_bits(opts: CheckOptions) -> ModelReport {
    let name = "planner_bits(2 requests, 2 threads)";
    let soc = SocSpec::kirin_990();
    let planner = match Planner::new(&soc) {
        Ok(p) => p,
        Err(e) => return setup_failure(name, &e),
    };
    let requests: Vec<ModelGraph> = vec![ModelId::SqueezeNet.graph(), ModelId::MobileNetV2.graph()];
    let reference = match planner.plan_reference(&requests) {
        Ok(p) => p,
        Err(e) => return setup_failure(name, &e),
    };
    explore_pct(
        name,
        2,
        None,
        opts.pct_seeds,
        0x4845_5432, // "HET2"
        opts.stop_on_violation,
        || {
            let planned = match planner.plan_with_threads(&requests, 2) {
                Ok(p) => p,
                Err(e) => panic!("plan_with_threads failed under schedule: {e}"),
            };
            assert!(
                planned.plan == reference.plan,
                "plan bits diverged from plan_reference under this schedule"
            );
        },
    )
}

/// Abstract DFS over the recovery round machine's fault/completion
/// event space: from a 3-request workload, explore every sequence of
/// request completions and processor dropouts (up to 2 drops), calling
/// the real `replan_on_survivors` at every state and asserting no
/// surviving plan ever assigns work to a down processor.
/// Exhaustive model of the planner's pooled-scratch pattern
/// (`Planner::with_plan_scratch`): workers fanning out over `par::map`
/// each pop a reusable buffer from a shared `sync::Mutex` pool (or
/// allocate on a miss), stamp it with checkout-local state, derive
/// their result from the buffer, and push it back for reuse. The
/// invariant is exclusivity — a pool bug handing one buffer to two
/// concurrent checkouts would tear the stamped pattern — plus the
/// standing rule that the map output equals the sequential result, and
/// that the pool never grows past the worker high-water mark.
pub fn scratch_pool(opts: CheckOptions) -> ModelReport {
    let name = "scratch_pool(w=2,n=3)";
    let items: Vec<usize> = vec![3, 5, 7];
    let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
    explore_exhaustive(
        name,
        2,
        None,
        opts.exhaustive_cap,
        opts.stop_on_violation,
        move || {
            let pool: sync::Mutex<Vec<Vec<usize>>> = sync::Mutex::new(Vec::new());
            let out = par::map(2, &items, |idx, &x| {
                let stamp = (idx + 1) * 1000 + x;
                let mut buf = {
                    let mut guard = match pool.lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard.pop()
                }
                .unwrap_or_default();
                buf.clear();
                buf.resize(8, stamp);
                let result = (buf[0] - (idx + 1) * 1000) * x; // x * x
                assert!(
                    buf.iter().all(|&v| v == stamp),
                    "scratch shared between concurrent checkouts"
                );
                let mut guard = match pool.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard.push(buf);
                drop(guard);
                result
            });
            assert_eq!(out, expected, "pooled-scratch map diverged from sequential");
            let pooled = match pool.lock() {
                Ok(guard) => guard.len(),
                Err(poisoned) => poisoned.into_inner().len(),
            };
            assert!(
                pooled <= 2,
                "pool grew past the worker high-water mark: {pooled}"
            );
        },
    )
}

/// PCT model of the intra-request subset-DP fan-out: a single BERT
/// request (62 layers, past `INTRA_DP_MIN_LAYERS`) planned at 2 virtual
/// workers routes the whole thread budget into the per-subset DP
/// fan-out inside `plan_request_cached` — concurrent kernel runs on
/// pooled scratches followed by the sequential selection replay. The
/// plan must stay bit-identical to the frozen sequential reference
/// under every explored schedule.
pub fn intra_request_bits(opts: CheckOptions) -> ModelReport {
    let name = "intra_request_bits(BERT, 2 threads)";
    let soc = SocSpec::kirin_990();
    let planner = match Planner::new(&soc) {
        Ok(p) => p,
        Err(e) => return setup_failure(name, &e),
    };
    let requests: Vec<ModelGraph> = vec![ModelId::Bert.graph()];
    let reference = match planner.plan_reference(&requests) {
        Ok(p) => p,
        Err(e) => return setup_failure(name, &e),
    };
    explore_pct(
        name,
        2,
        None,
        opts.pct_seeds,
        0x4450_4b46, // "DPKF"
        opts.stop_on_violation,
        || {
            let planned = match planner.plan_with_threads(&requests, 2) {
                Ok(p) => p,
                Err(e) => panic!("plan_with_threads failed under schedule: {e}"),
            };
            assert!(
                planned.plan == reference.plan,
                "single-request plan bits diverged from plan_reference under this schedule"
            );
        },
    )
}

pub fn recovery_rounds() -> ModelReport {
    let name = "recovery_rounds(3 requests, <=2 drops)";
    let mut report = ModelReport {
        name: name.to_owned(),
        schedules: 0,
        steps: 0,
        complete: true,
        violations: 0,
        samples: Vec::new(),
    };
    let soc = SocSpec::kirin_990();
    let planner = match Planner::new(&soc) {
        Ok(p) => p,
        Err(e) => return setup_failure(name, &e),
    };
    let graphs: Vec<Arc<ModelGraph>> =
        [ModelId::SqueezeNet, ModelId::MobileNetV2, ModelId::AlexNet]
            .iter()
            .map(|id| Arc::new(id.graph()))
            .collect();
    let procs = planner.pipeline_procs();
    let down_len = procs.iter().map(|p| p.index()).max().unwrap_or(0) + 1;
    // Replans are a pure function of (down set, pending count): memoize
    // the validation verdict across the whole event DFS.
    let mut memo: HashMap<(u64, usize), Result<(), String>> = HashMap::new();
    let mut stack: Vec<(Vec<bool>, usize, usize)> = vec![(vec![false; down_len], 3, 0)];
    while let Some((down, pending_count, drops)) = stack.pop() {
        let pending: Vec<usize> = (3 - pending_count..3).collect();
        let mask: u64 = down
            .iter()
            .enumerate()
            .map(|(i, &d)| if d { 1u64 << i } else { 0 })
            .sum();
        let verdict = memo
            .entry((mask, pending_count))
            .or_insert_with(|| validate_replan(&planner, &graphs, &pending, &down))
            .clone();
        report.steps += 1;
        if let Err(msg) = verdict {
            report.violations += 1;
            if report.samples.len() < 6 {
                report.samples.push(msg);
            }
            continue;
        }
        let mut expanded = false;
        if pending_count > 0 {
            stack.push((down.clone(), pending_count - 1, drops));
            expanded = true;
            if drops < 2 {
                for slot in &procs {
                    let p = slot.index();
                    if !down[p] {
                        let mut next = down.clone();
                        next[p] = true;
                        stack.push((next, pending_count, drops + 1));
                        expanded = true;
                    }
                }
            }
        }
        if !expanded {
            report.schedules += 1;
        }
    }
    // Interior states with violations never reach a leaf; count paths
    // conservatively as leaves only.
    report
}

fn validate_replan(
    planner: &Planner,
    graphs: &[Arc<ModelGraph>],
    pending: &[usize],
    down: &[bool],
) -> Result<(), String> {
    if pending.is_empty() {
        return Ok(());
    }
    match replan_on_survivors(planner, graphs, pending, down) {
        Ok((plan, _contexts)) => {
            // `plan.procs` deliberately keeps the full slot list (slot
            // identity is stable across rounds); the hard invariant is
            // that no *stage or run* lands on a down processor.
            for request in &plan.requests {
                for stage in request.stages.iter().flatten() {
                    if down.get(stage.proc.index()).copied().unwrap_or(false) {
                        return Err(format!(
                            "replan assigned request {} a stage on down processor {:?}",
                            request.request, stage.proc
                        ));
                    }
                    for run in &stage.runs {
                        if down.get(run.proc.index()).copied().unwrap_or(false) {
                            return Err(format!(
                                "replan routed a fallback run of request {} to down \
                                 processor {:?}",
                                request.request, run.proc
                            ));
                        }
                    }
                }
            }
            Ok(())
        }
        // Typed degraded outcome: acceptable end state.
        Err(PlanError::NoSurvivingProcessors) => Ok(()),
        // The release-mode H2P009 gate tripping means a down processor
        // made it into a plan — exactly the violation we hunt.
        Err(e @ PlanError::UnavailableProcessor { .. }) => {
            Err(format!("H2P009 gate tripped during replan: {e}"))
        }
        Err(e) => Err(format!("replan failed with unexpected error: {e}")),
    }
}

/// Exhaustive model of the serving front-end's admit/shed race: one
/// admitter thread pushing two interactive requests races one shedder
/// thread evicting slack-expired entries from the same
/// [`h2p_serve::AdmitQueue`] (depth limit 1). Under every interleaving:
///
/// * the per-class counters partition the entries and never exceed the
///   depth limit ([`h2p_serve::AdmitQueue::check_consistency`]);
/// * every admitted request is accounted exactly once — shed or still
///   queued, never both, never lost;
/// * nothing is shed that was never admitted.
///
/// The interesting schedule is the one where the shedder runs *between*
/// the two admissions: the eviction frees the slot, the second admit
/// succeeds, and the accounting must still balance.
pub fn serve_admit_shed(opts: CheckOptions) -> ModelReport {
    let name = "serve_admit_shed(1 admitter, 1 shedder)";
    explore_exhaustive(
        name,
        2,
        None,
        opts.exhaustive_cap,
        opts.stop_on_violation,
        || {
            let queue = h2p_serve::AdmitQueue::new([1, 1, 1]);
            // Both requests arrive at t=0 with solo 5 ms and deadline
            // 6 ms: at the shed instant t=4 their slack (2 ms) is below
            // the solo path, so anything queued then is evicted.
            let mk = |id: usize| h2p_serve::QueuedRequest {
                id,
                model: ModelId::SqueezeNet,
                class: h2p_serve::QosClass::Interactive,
                arrival_ms: 0.0,
                solo_ms: 5.0,
                deadline_ms: 6.0,
            };
            let q = &queue;
            let (admitted, shed) = sync::scope(|s| {
                let h1 = s.spawn(move || {
                    let mut ok = Vec::new();
                    for id in 0..2usize {
                        if q.try_admit(mk(id)).is_ok() {
                            ok.push(id);
                        }
                    }
                    ok
                });
                let h2 = s.spawn(move || {
                    q.shed_expired(4.0)
                        .into_iter()
                        .map(|r| r.id)
                        .collect::<Vec<usize>>()
                });
                let admitted = match h1.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                let shed = match h2.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                (admitted, shed)
            });
            if let Some(problem) = queue.check_consistency() {
                panic!("queue accounting broken: {problem}");
            }
            let (max_total, max_class) = queue.high_water();
            assert!(
                max_total <= 1 && max_class[0] <= 1,
                "depth limit 1 exceeded: total {max_total}, class {max_class:?}"
            );
            let remaining: Vec<usize> = queue
                .pop_batch(usize::MAX)
                .into_iter()
                .map(|r| r.id)
                .collect();
            assert_eq!(
                admitted.len(),
                shed.len() + remaining.len(),
                "admitted {admitted:?} must equal shed {shed:?} + queued {remaining:?}"
            );
            for id in &shed {
                assert!(
                    admitted.contains(id),
                    "request {id} shed without ever being admitted"
                );
                assert!(
                    !remaining.contains(id),
                    "request {id} both shed and still queued"
                );
            }
            for id in &remaining {
                assert!(
                    admitted.contains(id),
                    "request {id} queued without ever being admitted"
                );
            }
        },
    )
}
