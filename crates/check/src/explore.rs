//! Schedule exploration engines on top of
//! [`hetero2pipe::sync::model::run_schedule`].
//!
//! Two strategies, matching the tentpole spec:
//!
//! * **Exhaustive DFS** — replays a recorded choice prefix, extends it
//!   greedily with choice 0, and backtracks over the last branchable
//!   decision. Because thread ids and runnable sets are deterministic
//!   functions of the decision sequence (spawn rendezvous in the shim),
//!   the enumeration covers *every* distinct interleaving of the yield
//!   points, up to a schedule cap.
//! * **PCT-style randomized** — per-seed random thread priorities with a
//!   few random change points that demote the currently-preferred
//!   thread, the classic probabilistic concurrency-testing shape for
//!   configurations too large to enumerate.
//!
//! Scenario closures assert their invariants; the engines convert
//! panics, deadlocks, budget exhaustion and replay divergence into
//! recorded violations.

use hetero2pipe::sync::model::{run_schedule, InjectedFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once};

/// Hard per-schedule yield budget: generous (the largest standard
/// scenario takes a few hundred steps) so hitting it means a livelock.
const STEP_LIMIT: usize = 50_000;

/// How many violation messages a report keeps verbatim.
const SAMPLE_CAP: usize = 6;

/// Outcome of exploring one model (one scenario × one strategy).
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Scenario name, e.g. `cursor_map(w=2,n=4)`.
    pub name: String,
    /// Distinct schedules executed.
    pub schedules: usize,
    /// Total yield points across all schedules.
    pub steps: usize,
    /// For DFS: the enumeration finished below the cap (every
    /// interleaving was visited). Always true for PCT (it ran all seeds).
    pub complete: bool,
    /// Number of schedules that violated an invariant.
    pub violations: usize,
    /// First few violation messages, verbatim.
    pub samples: Vec<String>,
}

impl ModelReport {
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// How many explorations are currently running (panic output is
/// suppressed while > 0: scenario panics are *expected* — they are the
/// violation signal, and their messages land in the report samples).
static SUPPRESS_PANICS: AtomicUsize = AtomicUsize::new(0);
static PANIC_HOOK: Once = Once::new();

fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPPRESS_PANICS.load(Ordering::Relaxed) == 0 {
                prev(info);
            }
        }));
    });
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SUPPRESS_PANICS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    SUPPRESS_PANICS.fetch_add(1, Ordering::Relaxed);
    let _guard = Guard;
    f()
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        "scenario panicked with a non-string payload".to_owned()
    }
}

struct Dfs {
    /// Decision prefix to replay on the next schedule.
    prefix: Vec<usize>,
    /// `(choice, options)` actually taken this schedule.
    trace: Vec<(usize, usize)>,
    /// A replayed choice exceeded the runnable count — the schedule
    /// space itself is nondeterministic, which is a finding of its own.
    diverged: bool,
}

fn record_violation(report: &mut ModelReport, msg: String) {
    report.violations += 1;
    if report.samples.len() < SAMPLE_CAP {
        report.samples.push(msg);
    }
}

fn harvest<T>(report: &mut ModelReport, run: &hetero2pipe::sync::model::RunReport<T>) -> bool {
    let mut violated = false;
    if let Err(payload) = &run.result {
        record_violation(report, panic_message(payload.as_ref()));
        violated = true;
    }
    if run.deadlock {
        record_violation(report, "schedule deadlocked: no runnable thread".to_owned());
        violated = true;
    }
    if run.budget_exhausted {
        record_violation(
            report,
            format!("schedule exceeded the {STEP_LIMIT}-step budget (livelock?)"),
        );
        violated = true;
    }
    violated
}

/// Exhaustive DFS over every interleaving of `scenario`'s yield points,
/// with `vpar` virtual cores and an optional injected fault. Stops at
/// `cap` schedules (reported as incomplete) or, when `stop_on_violation`
/// is set, at the first violating schedule.
pub fn explore_exhaustive<S>(
    name: &str,
    vpar: usize,
    fault: Option<InjectedFault>,
    cap: usize,
    stop_on_violation: bool,
    scenario: S,
) -> ModelReport
where
    S: Fn() + Sync,
{
    quiet_panics(move || {
        let mut report = ModelReport {
            name: name.to_owned(),
            schedules: 0,
            steps: 0,
            complete: false,
            violations: 0,
            samples: Vec::new(),
        };
        let shared = Arc::new(Mutex::new(Dfs {
            prefix: Vec::new(),
            trace: Vec::new(),
            diverged: false,
        }));
        loop {
            let decide_state = Arc::clone(&shared);
            let decide = move |runnable: &[usize]| -> usize {
                let mut d = lock(&decide_state);
                let pos = d.trace.len();
                let mut choice = if pos < d.prefix.len() {
                    d.prefix[pos]
                } else {
                    0
                };
                if choice >= runnable.len() {
                    d.diverged = true;
                    choice = runnable.len() - 1;
                }
                d.trace.push((choice, runnable.len()));
                choice
            };
            let run = run_schedule(vpar, fault, STEP_LIMIT, decide, &scenario);
            report.schedules += 1;
            report.steps += run.steps;
            let violated = harvest(&mut report, &run);
            let mut d = lock(&shared);
            if d.diverged {
                record_violation(
                    &mut report,
                    "schedule replay diverged: runnable set is not a deterministic \
                 function of the decision sequence"
                        .to_owned(),
                );
                return report;
            }
            // Backtrack: flip the deepest decision that still has an
            // untried option; exhausted means full coverage.
            let mut next = std::mem::take(&mut d.trace);
            let mut found = false;
            while let Some((choice, options)) = next.pop() {
                if choice + 1 < options {
                    next.push((choice + 1, options));
                    found = true;
                    break;
                }
            }
            if !found {
                report.complete = true;
                return report;
            }
            d.prefix = next.iter().map(|(c, _)| *c).collect();
            drop(d);
            if violated && stop_on_violation {
                return report;
            }
            if report.schedules >= cap {
                return report;
            }
        }
    })
}

struct Pct {
    rng: StdRng,
    /// Priority per thread id, assigned on first sight. Base priorities
    /// live in `1_000_000..2_000_000`; change-point demotions hand out
    /// strictly decreasing values below that band.
    priorities: Vec<u64>,
    next_low: u64,
    change_points: [usize; 3],
    step: usize,
}

impl Pct {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let change_points = [
            rng.gen_range(1usize..40),
            rng.gen_range(1usize..120),
            rng.gen_range(1usize..240),
        ];
        Self {
            rng,
            priorities: Vec::new(),
            next_low: 999_999,
            change_points,
            step: 0,
        }
    }

    fn decide(&mut self, runnable: &[usize]) -> usize {
        self.step += 1;
        let max_id = runnable.iter().copied().max().unwrap_or(0);
        while self.priorities.len() <= max_id {
            let p = self.rng.gen_range(1_000_000u64..2_000_000);
            self.priorities.push(p);
        }
        if self.change_points.contains(&self.step) {
            // Demote the thread that would have run: the PCT "priority
            // change point" that surfaces ordering bugs needing a
            // specific preemption.
            if let Some(pos) = self.best(runnable) {
                self.priorities[runnable[pos]] = self.next_low;
                self.next_low = self.next_low.saturating_sub(1);
            }
        }
        self.best(runnable).unwrap_or(0)
    }

    fn best(&self, runnable: &[usize]) -> Option<usize> {
        (0..runnable.len()).max_by_key(|&i| self.priorities.get(runnable[i]).copied())
    }
}

/// Randomized PCT-style exploration: `seeds` schedules, each fully
/// determined by its seed (deterministic priorities + change points).
pub fn explore_pct<S>(
    name: &str,
    vpar: usize,
    fault: Option<InjectedFault>,
    seeds: u64,
    base_seed: u64,
    stop_on_violation: bool,
    scenario: S,
) -> ModelReport
where
    S: Fn() + Sync,
{
    quiet_panics(move || {
        let mut report = ModelReport {
            name: name.to_owned(),
            schedules: 0,
            steps: 0,
            complete: true,
            violations: 0,
            samples: Vec::new(),
        };
        for i in 0..seeds {
            let mut pct = Pct::new(base_seed.wrapping_add(i.wrapping_mul(0x9e37_79b9)));
            let decide = move |runnable: &[usize]| pct.decide(runnable);
            let run = run_schedule(vpar, fault, STEP_LIMIT, decide, &scenario);
            report.schedules += 1;
            report.steps += run.steps;
            let violated = harvest(&mut report, &run);
            if violated && stop_on_violation {
                report.complete = false;
                return report;
            }
        }
        report
    })
}
