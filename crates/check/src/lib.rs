//! # h2p-check
//!
//! Loom-style schedule-space model checker for the planner's
//! concurrency layer. Built on the `h2p_core::sync` shim compiled with
//! `feature = "model-check"`: every atomic, mutex and scoped spawn/join
//! in `par.rs`, `estimate.rs`, `online.rs` and the planner fan-out
//! becomes a yield point of a controlled scheduler, and this crate
//! enumerates schedules — exhaustive DFS for small configurations,
//! randomized PCT for the full planner — asserting the determinism
//! invariants under every one.
//!
//! The checker also verifies *itself*: [`run_injected`] seeds a
//! concurrency bug into the cursor claim path (a dropped or torn claim)
//! and demands the exploration catch it.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod explore;
pub mod scenarios;

pub use explore::ModelReport;
pub use hetero2pipe::sync::model::InjectedFault;
pub use scenarios::CheckOptions;

/// Run the standard model suite: cursor partition/error-rule models
/// (exhaustive), the tables cache (exhaustive), the full planner under
/// PCT, and the recovery-round event machine.
pub fn run_standard(opts: CheckOptions) -> Vec<ModelReport> {
    vec![
        scenarios::cursor_map(2, 3, None, opts),
        scenarios::cursor_map(2, 4, None, opts),
        scenarios::cursor_map(3, 4, None, opts),
        scenarios::cursor_try_map(2, 3, vec![1], opts),
        scenarios::cursor_try_map(2, 4, Vec::new(), opts),
        scenarios::cursor_try_map(2, 4, vec![1, 3], opts),
        scenarios::cursor_try_map(3, 3, vec![0], opts),
        scenarios::tables_cache(opts),
        scenarios::scratch_pool(opts),
        scenarios::planner_bits(opts),
        scenarios::intra_request_bits(opts),
        scenarios::recovery_rounds(),
        scenarios::serve_admit_shed(opts),
    ]
}

/// Run the cursor model with an injected claim bug. A healthy checker
/// returns a report with `violations > 0`: the dropped claim
/// (`skip-claim`) loses an item under every schedule, the torn claim
/// (`split-claim`) double-claims only under adversarial interleavings —
/// both must be found.
pub fn run_injected(fault: InjectedFault, opts: CheckOptions) -> ModelReport {
    let opts = CheckOptions {
        stop_on_violation: true,
        ..opts
    };
    scenarios::cursor_map(2, 3, Some(fault), opts)
}
