//! Adversarial-interleaving regression tests for the `par` chunked
//! cursor and the rest of the model suite (ISSUE 7 satellite).
//!
//! These drive the controlled scheduler end to end: exhaustive DFS over
//! every interleaving of two/three workers racing the claim cursor,
//! with the exact-partition and lowest-index-error invariants asserted
//! under each schedule — plus the self-checks proving injected claim
//! bugs are caught.

use h2p_check::{run_injected, scenarios, CheckOptions, InjectedFault};

fn opts() -> CheckOptions {
    CheckOptions::default()
}

#[test]
fn two_workers_race_the_last_chunk() {
    // w=2, n=3 with chunk size 1: the last chunk is claimed while the
    // other worker still runs — every interleaving must keep the claim
    // set an exact partition and the output bit-identical.
    let report = scenarios::cursor_map(2, 3, None, opts());
    assert!(
        report.complete,
        "DFS must enumerate to completion: {report:?}"
    );
    assert!(report.schedules > 10, "too few interleavings: {report:?}");
    assert_eq!(report.violations, 0, "violations: {:?}", report.samples);
}

#[test]
fn three_workers_exact_partition() {
    let report = scenarios::cursor_map(3, 4, None, opts());
    assert!(
        report.complete,
        "DFS must enumerate to completion: {report:?}"
    );
    assert_eq!(report.violations, 0, "violations: {:?}", report.samples);
}

#[test]
fn error_raised_mid_claim_pins_lowest_index() {
    // An error at item 1 while both workers are mid-claim: the claimed
    // set must stay a prefix and the reported error must be item 1's
    // under every interleaving.
    let report = scenarios::cursor_try_map(2, 3, vec![1], opts());
    assert!(
        report.complete,
        "DFS must enumerate to completion: {report:?}"
    );
    assert!(report.schedules > 10, "too few interleavings: {report:?}");
    assert_eq!(report.violations, 0, "violations: {:?}", report.samples);
}

#[test]
fn competing_errors_still_report_lowest() {
    let report = scenarios::cursor_try_map(2, 4, vec![1, 3], opts());
    assert!(
        report.complete,
        "DFS must enumerate to completion: {report:?}"
    );
    assert_eq!(report.violations, 0, "violations: {:?}", report.samples);
}

#[test]
fn tables_cache_single_arc_per_key() {
    let report = scenarios::tables_cache(opts());
    assert!(
        report.complete,
        "DFS must enumerate to completion: {report:?}"
    );
    assert!(
        report.schedules > 1,
        "cache race needs >1 schedule: {report:?}"
    );
    assert_eq!(report.violations, 0, "violations: {:?}", report.samples);
}

#[test]
fn recovery_rounds_never_use_down_processors() {
    let report = scenarios::recovery_rounds();
    assert!(report.schedules > 50, "too few event paths: {report:?}");
    assert_eq!(report.violations, 0, "violations: {:?}", report.samples);
}

#[test]
fn injected_skip_claim_is_caught() {
    // The seeded "dropped cursor claim" bug: the cursor over-advances
    // past one index, the item is never handed out, and the merge's
    // lost-item check must fire.
    let report = run_injected(InjectedFault::SkipClaim, opts());
    assert!(
        report.violations > 0,
        "skip-claim was NOT caught: {report:?}"
    );
    assert!(
        report.samples.iter().any(|s| s.contains("lost the result")),
        "unexpected violation shape: {:?}",
        report.samples
    );
}

#[test]
fn injected_split_claim_is_caught() {
    // The torn (load/yield/store) claim: correct under most schedules,
    // double-claims an item only when the DFS drives both workers into
    // the window — the exact-partition instrumentation must catch it.
    let report = run_injected(InjectedFault::SplitClaim, opts());
    assert!(
        report.violations > 0,
        "split-claim was NOT caught: {report:?}"
    );
    assert!(
        report
            .samples
            .iter()
            .any(|s| s.contains("exact-partition violation")),
        "unexpected violation shape: {:?}",
        report.samples
    );
}
