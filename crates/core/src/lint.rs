//! Bridge from planner types to the `h2p-analyze` static verifier.
//!
//! `h2p-analyze` sits below this crate in the dependency graph (so the
//! planner can gate on it in debug builds) and therefore defines its own
//! plan IR. This module owns the `PipelinePlan → PlanIr` conversion plus
//! the planner-side extra checks the analyzer cannot express: validity
//! of the mitigation permutation and finiteness of its LAP cost.

use h2p_analyze::{DiagCode, Diagnostic, Diagnostics, PlanIr, RequestIr, RunIr, Severity, StageIr};
use h2p_models::graph::ModelGraph;
use h2p_simulator::soc::SocSpec;

use crate::executor::WEIGHT_STAGING_GBPS;
use crate::plan::PipelinePlan;
use crate::planner::PlannedPipeline;

/// Converts a plan to the analyzer IR.
///
/// `graphs[i]` must be the model graph of *original* request index `i`
/// (the indexing `PlannedPipeline::contexts` uses) — the plan's request
/// order may be a mitigation permutation of it. A request whose original
/// index has no graph converts with `layer_count = 0`, which the
/// coverage check reports; that only happens for corrupted plans.
pub fn plan_ir(plan: &PipelinePlan, graphs: &[&ModelGraph]) -> PlanIr {
    let requests = plan
        .requests
        .iter()
        .map(|req| {
            let (layer_count, npu_supported) = match graphs.get(req.request) {
                Some(g) => (
                    g.len(),
                    g.layers().iter().map(|l| l.op.npu_supported()).collect(),
                ),
                None => (0, Vec::new()),
            };
            RequestIr {
                request: req.request,
                model: req.model.clone(),
                layer_count,
                npu_supported,
                class: req.class,
                stages: req
                    .stages
                    .iter()
                    .map(|s| {
                        s.as_ref().map(|s| StageIr {
                            range: s.range,
                            proc: s.proc,
                            exec_ms: s.exec_ms,
                            copy_in_ms: s.copy_in_ms,
                            intensity: s.intensity,
                            footprint_bytes: s.footprint_bytes,
                            runs: s
                                .runs
                                .iter()
                                .map(|r| RunIr {
                                    range: r.range,
                                    proc: r.proc,
                                    ms: r.ms,
                                })
                                .collect(),
                        })
                    })
                    .collect(),
            }
        })
        .collect();
    PlanIr {
        procs: plan.procs.clone(),
        requests,
        claimed_makespan_ms: plan.estimated_makespan_ms(),
        claimed_bubble_ms: plan.total_bubble_ms(),
        staging_gbps: WEIGHT_STAGING_GBPS,
    }
}

impl PlannedPipeline {
    /// Converts this pipeline's plan to the analyzer IR, using the
    /// planning contexts as the source of model-graph truth.
    pub fn plan_ir(&self) -> PlanIr {
        let graphs: Vec<&ModelGraph> = self.contexts.iter().map(|c| c.graph.as_ref()).collect();
        plan_ir(&self.plan, &graphs)
    }

    /// Statically verifies this pipeline against `soc` without executing
    /// it: the full `h2p-analyze` check battery over the plan, plus
    /// planner-side checks of the mitigation outcome.
    pub fn lint(&self, soc: &SocSpec) -> Diagnostics {
        let mut out = h2p_analyze::lint_plan(soc, &self.plan_ir());
        if let Some(m) = &self.mitigation {
            out.record_check();
            let n = self.plan.requests.len();
            let mut seen = vec![false; n];
            let valid = m.order.len() == n
                && m.order
                    .iter()
                    .all(|&orig| orig < n && !std::mem::replace(&mut seen[orig], true));
            if !valid {
                let mut d = Diagnostic::new(
                    DiagCode::ContentionWindow,
                    format!(
                        "mitigation order {:?} is not a permutation of {} requests — the \
                         relocation pass corrupted the sequence",
                        m.order, n
                    ),
                );
                d.severity = Severity::Error;
                out.push(d);
            }
            if !(m.displacement_cost.is_finite() && m.displacement_cost >= 0.0) {
                out.push(Diagnostic::new(
                    DiagCode::NonFiniteCost,
                    format!(
                        "mitigation displacement cost {} is not a finite non-negative number — \
                         the LAP assignment matched a padded slot to a real request",
                        m.displacement_cost
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mitigation::MitigationOutcome;
    use crate::planner::Planner;
    use h2p_models::zoo::ModelId;

    #[test]
    fn planner_output_lints_clean() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).expect("planner builds");
        let planned = planner
            .plan_models(&[ModelId::YoloV4, ModelId::MobileNetV2, ModelId::Bert])
            .expect("plan succeeds");
        let diags = planned.lint(&soc);
        assert!(diags.is_clean(), "{diags}");
    }

    #[test]
    fn corrupt_mitigation_order_is_an_error() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).expect("planner builds");
        let mut planned = planner
            .plan_models(&[ModelId::YoloV4, ModelId::MobileNetV2, ModelId::Bert])
            .expect("plan succeeds");
        planned.mitigation = Some(MitigationOutcome {
            order: vec![0, 0, 2], // not a permutation
            moves: 1,
            displacement_cost: f64::INFINITY,
            resolved: true,
        });
        let diags = planned.lint(&soc);
        assert!(
            diags
                .diags
                .iter()
                .any(|d| d.code == DiagCode::ContentionWindow && d.severity == Severity::Error),
            "{diags}"
        );
        assert!(
            diags
                .diags
                .iter()
                .any(|d| d.code == DiagCode::NonFiniteCost),
            "{diags}"
        );
    }

    #[test]
    fn mutated_plans_fail_the_lint() {
        let soc = SocSpec::snapdragon_870();
        let planner = Planner::new(&soc).expect("planner builds");
        let planned = planner
            .plan_models(&[ModelId::ResNet50, ModelId::MobileNetV2])
            .expect("plan succeeds");
        for m in h2p_analyze::Mutation::ALL {
            let mut ir = planned.plan_ir();
            assert!(h2p_analyze::apply(&mut ir, m), "{} applies", m.name());
            let diags = h2p_analyze::lint_plan(&soc, &ir);
            assert!(
                !diags.is_clean(),
                "{} must be caught, got: {diags}",
                m.name()
            );
        }
    }
}
