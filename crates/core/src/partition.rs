//! Horizontal model partitioning (Sec. V-A, Algorithm 1).
//!
//! Splits an `n`-layer model into `K` contiguous, non-empty slices mapped
//! onto an ordered processor sequence, minimizing the maximum stage time
//! (the makespan of one inference traversing the pipeline):
//!
//! ```text
//! S*(j, k) = min_i max( S*(i-1, k-1), T_k(i, j) )
//! ```
//!
//! Three implementations are provided:
//!
//! * [`min_max_partition`] — the reference O(n²K) dynamic program. It
//!   accepts *any* cost oracle, including ones with inter-processor copy
//!   costs and NPU-unsupported ranges (returned as `None` = infeasible).
//! * [`min_max_partition_fast`] — the paper's optimized O(nK log n)
//!   variant exploiting Property 2 (monotonicity): the inner minimization
//!   becomes a binary search for the balance point between
//!   `S*(i-1, k-1)` and `T_k(i, j)`, and the per-row search window only
//!   moves right as `j` grows. Exact for homogeneous stage costs; a fast
//!   heuristic for heterogeneous ones (see the function's exactness
//!   caveat — a finding of this reproduction about the paper's
//!   complexity claim).
//! * [`min_max_partition_prefix`] — the planner's production kernel: the
//!   same recurrence specialized for branch-free prefix-sum stage costs
//!   ([`PrefixStage`]), running over a flat arena ([`DpScratch`]) so the
//!   steady state touches no allocator, with an optional row fan-out
//!   over the [`crate::par`] runtime. Bit-identical to
//!   [`min_max_partition`] over the equivalent oracle by construction
//!   (same candidate order, same float-op order), pinned by debug
//!   assertions in the planner and by the kernel proptests.
//!
//! All DP state is flat and row-major — `s[kk * n + j]` — so one warm
//! [`DpScratch`] plans any request without allocating, and the inner loop
//! walks contiguous memory.
//!
//! The test suite cross-checks all implementations exhaustively and
//! property-based.

use crate::{par, sync};

/// Result of partitioning one model across `K` pipeline stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// `K-1` ascending split points; slice `s` covers
    /// `[splits[s-1], splits[s])` with sentinels 0 and `n`.
    pub splits: Vec<usize>,
    /// Per-stage cost under the oracle used for planning.
    pub stage_ms: Vec<f64>,
    /// The minimized maximum stage cost.
    pub makespan_ms: f64,
}

impl Partition {
    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stage_ms.len()
    }

    /// The inclusive layer range `(first, last)` of stage `s` for a model
    /// with `n` layers.
    pub fn stage_range(&self, s: usize, n: usize) -> (usize, usize) {
        let first = if s == 0 { 0 } else { self.splits[s - 1] };
        let last = if s == self.splits.len() {
            n - 1
        } else {
            self.splits[s] - 1
        };
        (first, last)
    }
}

/// Reusable flat DP state: one contiguous `f64` arena plus the
/// backtracking table, grown on demand and never shrunk, so a warm
/// scratch plans any same-sized-or-smaller request without touching the
/// allocator (the planner pools these — see `Planner`).
///
/// Layout is row-major by slot count: cell `(kk, j)` lives at
/// `kk * n + j` for `kk` in `1..=k` (row 0 is unused padding so the
/// index needs no offset arithmetic). Rows are only *written* for
/// `j >= kk - 1` and only *read* at indices a previous row has written,
/// so stale values from an earlier, differently-shaped run are never
/// observed.
#[derive(Debug, Default, Clone)]
pub struct DpScratch {
    /// Flat DP table, `s[kk * n + j]` = best makespan of layers `0..=j`
    /// over the first `kk` pipeline slots.
    s: Vec<f64>,
    /// Backtracking choices, same indexing: the `i` realizing `s`.
    choice: Vec<u32>,
    /// Split points of the most recent successful kernel run.
    splits: Vec<usize>,
    /// Inner-loop candidate evaluations accumulated since the last
    /// [`DpScratch::take_cells`] (telemetry: `planner.dp.cells`).
    cells: u64,
}

impl DpScratch {
    /// A fresh, empty scratch. Buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Split points of the most recent successful kernel run
    /// (`k - 1` ascending entries).
    pub fn splits(&self) -> &[usize] {
        &self.splits
    }

    /// Drains the inner-loop candidate-evaluation counter.
    pub fn take_cells(&mut self) -> u64 {
        std::mem::take(&mut self.cells)
    }

    /// Grows the arena to cover an `(n, k)` problem. Never shrinks;
    /// after the first call at the high-water shape, subsequent calls
    /// are allocation-free (`splits` is resized within capacity).
    fn ensure(&mut self, n: usize, k: usize) {
        let need = (k + 1) * n;
        if self.s.len() < need {
            self.s.resize(need, 0.0);
            self.choice.resize(need, 0);
        }
        self.splits.clear();
        self.splits.resize(k.saturating_sub(1), 0);
    }
}

/// One pipeline stage's cost function, lowered to branch-free prefix-sum
/// slices for [`min_max_partition_prefix`]. Infeasibility is encoded in
/// the data (`feas_from`), not in an `Option` per cell, so the DP inner
/// loop has no branches beyond the loop bounds and the running-min
/// compare.
#[derive(Debug, Clone, Copy)]
pub enum PrefixStage<'a> {
    /// A directly-supported processor slot. The stage cost of layers
    /// `[i, j]` is `(pm[j + 1] - pm[i]) + copy[i]` — the exact float-op
    /// order of `CostTable::slice_ms` plus the copy-in term, so results
    /// are bit-identical to the `Option` oracle path.
    Plain {
        /// Latency prefix sums, `n + 1` entries (`pm[0] == 0`).
        pm: &'a [f64],
        /// `feas_from[j]` = smallest `i` such that every layer in
        /// `[i, j]` is supported on this slot: one past the last
        /// unsupported layer at or before `j` (`j + 1` when layer `j`
        /// itself is unsupported, making the candidate range empty).
        /// Feasible start points for a slice ending at `j` form the
        /// suffix `[feas_from[j], j]`.
        feas_from: &'a [u32],
        /// Copy-in cost when the slice starts at layer `i`; an all-zeros
        /// slice for stage 0 (the literal `+ 0.0` keeps the float-op
        /// order of the reference, which is bit-exact because every
        /// cost in the domain is finite and non-negative).
        copy: &'a [f64],
    },
    /// The NPU slot of a model with unsupported operators: unsupported
    /// runs detour to the fallback processor, so every slice is feasible
    /// and costs `(((lp[j + 1] - lp[i]) + cp[j]) - cp[i]) + copy[i]` —
    /// the exact op order of `NpuFallback::slice_ms` plus copy-in.
    Fallback {
        /// Mixed NPU/fallback latency prefix, `n + 1` entries.
        lp: &'a [f64],
        /// Prefix of detour copy penalties, `n` entries.
        cp: &'a [f64],
        /// Copy-in cost by start layer (see [`PrefixStage::Plain`]).
        copy: &'a [f64],
    },
}

/// Minimum inner-row width (number of `j` cells in one `kk` frontier)
/// before [`min_max_partition_prefix`] fans the row out across worker
/// threads. One cell is a handful of nanoseconds, so below roughly this
/// many cells a scoped-thread spawn (tens of microseconds) can only
/// lose; the zoo's largest model (BERT, 62 layers) stays sequential and
/// relies on the per-subset fan-out in the planner instead.
pub const DP_ROW_PAR_MIN: usize = 512;

/// The planner's production DP kernel: the recurrence of
/// [`min_max_partition`] specialized for [`PrefixStage`] cost rows over
/// a flat, reusable [`DpScratch`] arena.
///
/// `stage(a)` resolves the cost rows of pipeline stage `a` (called once
/// per row, not per cell). On success returns the minimized makespan and
/// leaves the `k - 1` split points in [`DpScratch::splits`]; returns
/// `None` when no feasible `k`-way partition exists or the shape is
/// degenerate (`n == 0`, `k == 0`, `k > n`) — the same contract as
/// [`min_max_partition`].
///
/// **Bit-identity.** For every cell the kernel evaluates the same
/// candidates in the same order with the same float-op order as
/// [`min_max_partition`] over the equivalent `Option` oracle, and the
/// returned makespan equals the `max` fold the oracle path computes in
/// `finish` (IEEE `max` returns one of its operands unchanged, and the
/// domain has no NaNs: prefixes are finite, infinities only encode
/// infeasibility and never reach a successful backtrack).
///
/// With `threads > 1` and a row frontier of at least [`DP_ROW_PAR_MIN`]
/// cells, each row is split into contiguous spans computed by scoped
/// workers ([`par::span_bounds`]); cells within a row are independent
/// (they read only the previous row), so the fan-out is trivially
/// bit-identical to the sequential row and the `h2p-check` model
/// explores its schedules.
pub fn min_max_partition_prefix<'a, F>(
    n: usize,
    k: usize,
    threads: usize,
    stage: F,
    scratch: &mut DpScratch,
) -> Option<f64>
where
    F: Fn(usize) -> PrefixStage<'a>,
{
    if n == 0 || k == 0 || k > n {
        return None;
    }
    scratch.ensure(n, k);
    let mut cells = 0u64;
    // Row 1: single stage over layers 0..=j.
    {
        let row = &mut scratch.s[n..2 * n];
        match stage(0) {
            PrefixStage::Plain {
                pm,
                feas_from,
                copy,
            } => {
                for (j, out) in row.iter_mut().enumerate() {
                    *out = if feas_from[j] == 0 {
                        (pm[j + 1] - pm[0]) + copy[0]
                    } else {
                        f64::INFINITY
                    };
                }
            }
            PrefixStage::Fallback { lp, cp, copy } => {
                for (j, out) in row.iter_mut().enumerate() {
                    *out = (((lp[j + 1] - lp[0]) + cp[j]) - cp[0]) + copy[0];
                }
            }
        }
        cells += n as u64;
    }
    for kk in 2..=k {
        let st = stage(kk - 1);
        let (head, tail) = scratch.s.split_at_mut(kk * n);
        let prev = &head[(kk - 1) * n..];
        let cur = &mut tail[..n];
        let ch = &mut scratch.choice[kk * n..(kk + 1) * n];
        let lo_j = kk - 1;
        let width = n - lo_j;
        let workers = if width >= DP_ROW_PAR_MIN {
            par::worker_count(threads, width)
        } else {
            1
        };
        if workers <= 1 {
            cells += dp_row_span(st, prev, &mut cur[lo_j..], &mut ch[lo_j..], lo_j, kk);
        } else {
            // Carve the row into disjoint contiguous spans, one per
            // worker; each cell depends only on the (shared, read-only)
            // previous row, so any schedule produces the sequential row.
            let mut spans: Vec<(usize, &mut [f64], &mut [u32])> = Vec::with_capacity(workers);
            let mut rest_c = &mut cur[lo_j..];
            let mut rest_h = &mut ch[lo_j..];
            for (b0, b1) in par::span_bounds(width, workers) {
                let (c0, c1) = rest_c.split_at_mut(b1 - b0);
                let (h0, h1) = rest_h.split_at_mut(b1 - b0);
                spans.push((lo_j + b0, c0, h0));
                rest_c = c1;
                rest_h = h1;
            }
            let span_cells: Vec<u64> = sync::scope(|scope| {
                let mut iter = spans.into_iter();
                let first = iter.next();
                let handles: Vec<_> = iter
                    .map(|(j0, c, h)| scope.spawn(move || dp_row_span(st, prev, c, h, j0, kk)))
                    .collect();
                let mut all = Vec::with_capacity(workers);
                if let Some((j0, c, h)) = first {
                    all.push(dp_row_span(st, prev, c, h, j0, kk));
                }
                for handle in handles {
                    match handle.join() {
                        Ok(c) => all.push(c),
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
                all
            });
            cells += span_cells.iter().sum::<u64>();
        }
    }
    scratch.cells += cells;
    let best = scratch.s[k * n + (n - 1)];
    if !best.is_finite() {
        return None;
    }
    let mut j = n - 1;
    for kk in (2..=k).rev() {
        let i = scratch.choice[kk * n + j] as usize;
        scratch.splits[kk - 2] = i;
        j = i - 1;
    }
    Some(best)
}

/// Computes one contiguous span of a DP row: `out[off]` is cell
/// `j = j0 + off` of row `kk`, minimizing over start points `i` with the
/// exact candidate order and float-op order of the reference DP. Returns
/// the number of candidates evaluated.
fn dp_row_span(
    st: PrefixStage<'_>,
    prev: &[f64],
    out: &mut [f64],
    ch: &mut [u32],
    j0: usize,
    kk: usize,
) -> u64 {
    const INF: f64 = f64::INFINITY;
    let mut cells = 0u64;
    match st {
        PrefixStage::Plain {
            pm,
            feas_from,
            copy,
        } => {
            for (off, (o, c)) in out.iter_mut().zip(ch.iter_mut()).enumerate() {
                let j = j0 + off;
                // Feasible starts form the suffix [feas_from[j], j];
                // infeasible candidates would be INF and can never win,
                // so skipping them preserves the reference's winner
                // (strict `<` never fires on INF) and its tie-breaks.
                let lo = (feas_from[j] as usize).max(kk - 1);
                let end = pm[j + 1];
                let mut best = INF;
                let mut best_i = 0u32;
                for i in lo..=j {
                    let v = prev[i - 1].max((end - pm[i]) + copy[i]);
                    if v < best {
                        best = v;
                        best_i = i as u32;
                    }
                }
                cells += (j + 1).saturating_sub(lo) as u64;
                *o = best;
                *c = best_i;
            }
        }
        PrefixStage::Fallback { lp, cp, copy } => {
            for (off, (o, c)) in out.iter_mut().zip(ch.iter_mut()).enumerate() {
                let j = j0 + off;
                let lo = kk - 1;
                let end = lp[j + 1];
                let cpj = cp[j];
                let mut best = INF;
                let mut best_i = 0u32;
                for i in lo..=j {
                    let v = prev[i - 1].max((((end - lp[i]) + cpj) - cp[i]) + copy[i]);
                    if v < best {
                        best = v;
                        best_i = i as u32;
                    }
                }
                cells += (j + 1 - lo) as u64;
                *o = best;
                *c = best_i;
            }
        }
    }
    cells
}

/// Reference O(n²K) dynamic program. `cost(slot, i, j)` returns the stage
/// cost of layers `[i, j]` on processor slot `slot`, or `None` if that
/// placement is infeasible (unsupported operator). Returns `None` when no
/// feasible K-way partition exists or `k > n` / `k == 0` / `n == 0`.
///
/// ```
/// use hetero2pipe::partition::min_max_partition;
///
/// // Six unit-cost layers over three identical processors: 2+2+2.
/// let p = min_max_partition(6, 3, |_slot, i, j| Some((j - i + 1) as f64))
///     .expect("feasible");
/// assert_eq!(p.splits, vec![2, 4]);
/// assert_eq!(p.makespan_ms, 2.0);
/// ```
pub fn min_max_partition<F>(n: usize, k: usize, cost: F) -> Option<Partition>
where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    min_max_partition_in(n, k, cost, &mut DpScratch::new())
}

/// [`min_max_partition`] over a caller-provided [`DpScratch`], so warm
/// callers (tests, baselines re-partitioning in a loop) skip the arena
/// allocation entirely.
pub fn min_max_partition_in<F>(
    n: usize,
    k: usize,
    cost: F,
    scratch: &mut DpScratch,
) -> Option<Partition>
where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    if n == 0 || k == 0 || k > n {
        return None;
    }
    const INF: f64 = f64::INFINITY;
    scratch.ensure(n, k);
    // s[kk * n + j] = best makespan for layers 0..=j on the first kk
    // slots (flat row-major arena — see DpScratch).
    for (j, out) in scratch.s[n..2 * n].iter_mut().enumerate() {
        *out = cost(0, 0, j).unwrap_or(INF);
    }
    for kk in 2..=k {
        let (head, tail) = scratch.s.split_at_mut(kk * n);
        let prev = &head[(kk - 1) * n..];
        let cur = &mut tail[..n];
        for (j, out) in cur.iter_mut().enumerate().skip(kk - 1) {
            let mut best = INF;
            let mut best_i = 0u32;
            // No early termination: for arbitrary oracles (restricted
            // split points, infeasible ranges, copy costs) the prefix
            // table is not monotone in i, so every candidate must be
            // scanned. The optimized variant below exploits monotonicity
            // when it does hold.
            for i in (kk - 1)..=j {
                let prev_ms = prev[i - 1];
                let c = cost(kk - 1, i, j).unwrap_or(INF);
                let v = prev_ms.max(c);
                if v < best {
                    best = v;
                    best_i = i as u32;
                }
            }
            *out = best;
            scratch.choice[kk * n + j] = best_i;
        }
    }
    if !scratch.s[k * n + (n - 1)].is_finite() {
        return None;
    }
    // Backtrack split points.
    let mut j = n - 1;
    for kk in (2..=k).rev() {
        let i = scratch.choice[kk * n + j] as usize;
        scratch.splits[kk - 2] = i;
        j = i - 1;
    }
    finish(n, k, scratch.splits.clone(), cost)
}

/// The optimized variant of Algorithm 1: O(nK log n) via binary search on
/// the balance point (Property 2), with the per-row search window
/// shrunk monotonically — the crossing point can only move right as `j`
/// grows when the cost oracle is monotone, so each row's binary search
/// starts where the previous cell's landed.
///
/// **Exactness caveat.** The balance-point argument requires the prefix
/// optimum `S(j, k)` to be non-decreasing in `j`. With *homogeneous*
/// stage costs (every pipeline slot prices a slice identically) this
/// follows from Property 2. With heterogeneous processors and mandatory
/// non-empty stages it can fail: when the optimal partition of a longer
/// prefix ends in a singleton stage, the shorter prefix cannot inherit
/// it, and `S(j, k)` may *decrease* as `j` grows (a concrete 7-layer,
/// 4-processor counterexample lives in the test suite). In that regime
/// this variant is a fast heuristic; the planner therefore uses the
/// reference recurrence (as the [`min_max_partition_prefix`] kernel),
/// which is exact for any oracle.
pub fn min_max_partition_fast<F>(n: usize, k: usize, cost: F) -> Option<Partition>
where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    min_max_partition_fast_in(n, k, cost, &mut DpScratch::new())
}

/// [`min_max_partition_fast`] over a caller-provided [`DpScratch`].
pub fn min_max_partition_fast_in<F>(
    n: usize,
    k: usize,
    cost: F,
    scratch: &mut DpScratch,
) -> Option<Partition>
where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    if n == 0 || k == 0 || k > n {
        return None;
    }
    const INF: f64 = f64::INFINITY;
    let get = |slot: usize, i: usize, j: usize| cost(slot, i, j).unwrap_or(INF);
    scratch.ensure(n, k);
    for (j, out) in scratch.s[n..2 * n].iter_mut().enumerate() {
        *out = get(0, 0, j);
    }
    for kk in 2..=k {
        let (head, tail) = scratch.s.split_at_mut(kk * n);
        let prev = &head[(kk - 1) * n..];
        let cur = &mut tail[..n];
        // The balance point is non-decreasing in j for monotone oracles,
        // so the search window's left edge ratchets forward across the
        // row instead of restarting at kk-1 for every cell.
        let mut win_lo = kk - 1;
        for (j, out) in cur.iter_mut().enumerate().skip(kk - 1) {
            // Find the smallest i in [win_lo, j] with
            // prev[i-1] >= cost(kk-1, i, j); the optimum is at that i
            // or the one before (the "balance point" of Algorithm 1).
            let (mut lo, mut hi) = (win_lo, j);
            while lo < hi {
                let mid = (lo + hi) / 2;
                let prev_ms = prev[mid - 1];
                let cur_ms = get(kk - 1, mid, j);
                // With INF on both sides the predicate treats INF >= INF
                // as true, steering towards smaller i, which is safe: the
                // candidate scan below evaluates real values.
                if prev_ms >= cur_ms {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let mut best = INF;
            let mut best_i = lo;
            // Evaluate the crossing point and its neighbours.
            let lo_cand = lo.saturating_sub(1).max(kk - 1);
            for i in lo_cand..=(lo + 1).min(j) {
                let v = prev[i - 1].max(get(kk - 1, i, j));
                if v < best {
                    best = v;
                    best_i = i;
                }
            }
            *out = best;
            scratch.choice[kk * n + j] = best_i as u32;
            win_lo = lo;
        }
    }
    if !scratch.s[k * n + (n - 1)].is_finite() {
        return None;
    }
    let mut j = n - 1;
    for kk in (2..=k).rev() {
        let i = scratch.choice[kk * n + j] as usize;
        scratch.splits[kk - 2] = i;
        j = i - 1;
    }
    finish(n, k, scratch.splits.clone(), cost)
}

/// Evaluates the stage times of `splits` under `cost` and assembles the
/// [`Partition`], used by both DP variants and by work stealing when it
/// perturbs split points.
pub fn finish<F>(n: usize, k: usize, splits: Vec<usize>, cost: F) -> Option<Partition>
where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    debug_assert_eq!(splits.len(), k - 1);
    let mut stage_ms = Vec::with_capacity(k);
    let mut prev = 0usize;
    for (slot, &split) in splits.iter().chain(std::iter::once(&n)).enumerate() {
        if split <= prev || split > n {
            return None;
        }
        stage_ms.push(cost(slot, prev, split - 1)?);
        prev = split;
    }
    let makespan_ms = stage_ms.iter().copied().fold(0.0, f64::max);
    Some(Partition {
        splits,
        stage_ms,
        makespan_ms,
    })
}

/// Upper bound on the number of split-point combinations
/// ([`split_combinations`], i.e. C(n-1, k-1)) that
/// [`min_max_partition_exhaustive`] will enumerate. Above this the call
/// panics immediately instead of silently running for hours: at roughly
/// 100 ns per combination the budget caps a single call near a minute,
/// which is already far beyond any legitimate test or baseline sweep
/// (the Fig. 8a baseline tops out around C(61, 3) ≈ 36k).
pub const EXHAUSTIVE_COMBINATION_BUDGET: u64 = 5_000_000;

/// The number of split-point combinations a brute-force `(n, k)`
/// enumeration visits: C(n - 1, k - 1), saturating at `u64::MAX`.
pub fn split_combinations(n: usize, k: usize) -> u64 {
    if n == 0 || k == 0 || k > n {
        return 0;
    }
    let (n, k) = (n - 1, k - 1);
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // Multiply-then-divide keeps every intermediate an exact
        // integer (C(n, i+1) = C(n, i) * (n - i) / (i + 1)).
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

/// Brute-force optimal min-max partition by enumerating every split-point
/// combination. Exponential; exposed for tests and the exhaustive-search
/// baseline (Fig. 8a).
///
/// # Panics
///
/// Panics when the enumeration would visit more than
/// [`EXHAUSTIVE_COMBINATION_BUDGET`] combinations ([`split_combinations`]
/// of the shape) — a guard against test misuse wedging CI; use
/// [`min_max_partition`] for anything that large.
pub fn min_max_partition_exhaustive<F>(n: usize, k: usize, cost: F) -> Option<Partition>
where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    if n == 0 || k == 0 || k > n {
        return None;
    }
    let combos = split_combinations(n, k);
    assert!(
        combos <= EXHAUSTIVE_COMBINATION_BUDGET,
        "min_max_partition_exhaustive(n={n}, k={k}): C({}, {}) = {combos} split combinations \
         exceeds the budget of {EXHAUSTIVE_COMBINATION_BUDGET}; use min_max_partition instead",
        n - 1,
        k - 1,
    );
    let mut best: Option<Partition> = None;
    let mut splits = vec![0usize; k - 1];
    enumerate(n, k, 0, 1, &mut splits, &cost, &mut best);
    best
}

fn enumerate<F>(
    n: usize,
    k: usize,
    idx: usize,
    min_next: usize,
    splits: &mut Vec<usize>,
    cost: &F,
    best: &mut Option<Partition>,
) where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    if idx == k - 1 {
        if let Some(p) = finish(n, k, splits.clone(), cost) {
            if best.as_ref().is_none_or(|b| p.makespan_ms < b.makespan_ms) {
                *best = Some(p);
            }
        }
        return;
    }
    // Leave room for the remaining stages.
    for s in min_next..=(n - (k - 1 - idx)) {
        splits[idx] = s;
        enumerate(n, k, idx + 1, s + 1, splits, cost, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a monotone cost oracle from per-slot per-layer times.
    fn oracle(times: Vec<Vec<f64>>) -> impl Fn(usize, usize, usize) -> Option<f64> {
        let prefix: Vec<Vec<f64>> = times
            .iter()
            .map(|row| {
                let mut p = vec![0.0];
                for &t in row {
                    p.push(p.last().unwrap() + t);
                }
                p
            })
            .collect();
        move |slot, i, j| {
            if slot >= prefix.len() || j >= prefix[slot].len() - 1 || i > j {
                None
            } else {
                Some(prefix[slot][j + 1] - prefix[slot][i])
            }
        }
    }

    /// Runs the prefix kernel over per-slot layer times with optional
    /// per-slot unsupported layers and per-stage copy curves, mirroring
    /// how the planner lowers `RequestTables`.
    fn run_prefix_kernel(
        times: &[Vec<f64>],
        unsupported: &[Vec<usize>],
        copies: &[Vec<f64>],
        threads: usize,
        scratch: &mut DpScratch,
    ) -> Option<f64> {
        let n = times[0].len();
        let k = times.len();
        let pm: Vec<Vec<f64>> = times
            .iter()
            .map(|row| {
                let mut p = vec![0.0];
                for &t in row {
                    p.push(p.last().unwrap() + t);
                }
                p
            })
            .collect();
        let feas: Vec<Vec<u32>> = unsupported
            .iter()
            .map(|un| {
                let mut row = vec![0u32; n];
                let mut from = 0u32;
                for (i, slot) in row.iter_mut().enumerate() {
                    if un.contains(&i) {
                        from = (i + 1) as u32;
                    }
                    *slot = from;
                }
                row
            })
            .collect();
        min_max_partition_prefix(
            n,
            k,
            threads,
            |a| PrefixStage::Plain {
                pm: &pm[a],
                feas_from: &feas[a],
                copy: &copies[a],
            },
            scratch,
        )
    }

    #[test]
    fn balances_uniform_layers_on_identical_processors() {
        // 6 identical layers on 3 identical processors: 2+2+2.
        let c = oracle(vec![vec![1.0; 6]; 3]);
        let p = min_max_partition(6, 3, &c).unwrap();
        assert_eq!(p.splits, vec![2, 4]);
        assert_eq!(p.makespan_ms, 2.0);
    }

    #[test]
    fn loads_follow_processor_speed() {
        // Slot 0 is 4x faster than slot 1: it should take more layers.
        let fast: Vec<f64> = vec![1.0; 8];
        let slow: Vec<f64> = vec![4.0; 8];
        let c = oracle(vec![fast, slow]);
        let p = min_max_partition(8, 2, &c).unwrap();
        assert!(p.splits[0] > 4, "fast slot takes the bigger share");
        // Optimal is 6/2: max(6, 8) = 8? 7/1: max(7,4)=7. Check optimum.
        let ex = min_max_partition_exhaustive(8, 2, &c).unwrap();
        assert_eq!(p.makespan_ms, ex.makespan_ms);
    }

    #[test]
    fn dp_matches_exhaustive_on_heterogeneous_costs() {
        let mut seed = 7u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 50 + 1) as f64 / 10.0
        };
        for n in 3..9 {
            for k in 1..=n.min(4) {
                let times: Vec<Vec<f64>> =
                    (0..k).map(|_| (0..n).map(|_| next()).collect()).collect();
                let c = oracle(times);
                let dp = min_max_partition(n, k, &c).unwrap();
                let ex = min_max_partition_exhaustive(n, k, &c).unwrap();
                assert!(
                    (dp.makespan_ms - ex.makespan_ms).abs() < 1e-9,
                    "n={n} k={k}: dp {} vs exhaustive {}",
                    dp.makespan_ms,
                    ex.makespan_ms
                );
            }
        }
    }

    #[test]
    fn prefix_kernel_matches_reference_bit_for_bit() {
        // Randomized heterogeneous times, unsupported layers and copy
        // curves: kernel makespan and splits must be bit-identical to
        // the Option-oracle reference over the equivalent oracle.
        let mut seed = 11u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        let mut scratch = DpScratch::new();
        for trial in 0..200 {
            let n = 2 + next() % 12;
            let k = 1 + next() % n.min(4);
            let times: Vec<Vec<f64>> = (0..k)
                .map(|_| (0..n).map(|_| (next() % 997 + 1) as f64 / 10.0).collect())
                .collect();
            // Sprinkle unsupported layers on some slots (never making
            // stage feasibility trivially empty on every slot).
            let unsupported: Vec<Vec<usize>> = (0..k)
                .map(|s| {
                    if s % 2 == 1 && next() % 2 == 0 {
                        vec![next() % n]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let copies: Vec<Vec<f64>> = (0..k)
                .map(|s| {
                    if s == 0 {
                        vec![0.0; n]
                    } else {
                        (0..n).map(|_| (next() % 53) as f64 / 100.0).collect()
                    }
                })
                .collect();
            // The equivalent Option oracle.
            let pm: Vec<Vec<f64>> = times
                .iter()
                .map(|row| {
                    let mut p = vec![0.0];
                    for &t in row {
                        p.push(p.last().unwrap() + t);
                    }
                    p
                })
                .collect();
            let un = unsupported.clone();
            let cp = copies.clone();
            let c = move |slot: usize, i: usize, j: usize| -> Option<f64> {
                if un[slot].iter().any(|&u| i <= u && u <= j) {
                    return None;
                }
                Some((pm[slot][j + 1] - pm[slot][i]) + cp[slot][i])
            };
            let reference = min_max_partition(n, k, &c);
            let kernel = run_prefix_kernel(&times, &unsupported, &copies, 1, &mut scratch);
            match (reference, kernel) {
                (None, None) => {}
                (Some(r), Some(ms)) => {
                    assert_eq!(
                        r.makespan_ms.to_bits(),
                        ms.to_bits(),
                        "trial {trial}: makespan bits n={n} k={k}"
                    );
                    assert_eq!(r.splits, scratch.splits(), "trial {trial}: splits");
                }
                (r, k) => panic!("trial {trial}: feasibility diverged: {r:?} vs {k:?}"),
            }
        }
    }

    #[test]
    fn prefix_kernel_row_fanout_is_bit_identical() {
        // A row wide enough to cross DP_ROW_PAR_MIN: the fanned-out rows
        // must reproduce the sequential kernel exactly.
        let n = DP_ROW_PAR_MIN + 37;
        let mut seed = 3u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 997 + 1) as f64 / 10.0
        };
        let times: Vec<Vec<f64>> = (0..3).map(|_| (0..n).map(|_| next()).collect()).collect();
        let unsupported = vec![Vec::new(), vec![n / 2], Vec::new()];
        let copies = vec![vec![0.0; n], vec![0.25; n], vec![0.5; n]];
        let mut seq = DpScratch::new();
        let seq_ms = run_prefix_kernel(&times, &unsupported, &copies, 1, &mut seq).unwrap();
        for threads in [2, 4] {
            let mut par_scratch = DpScratch::new();
            let par_ms =
                run_prefix_kernel(&times, &unsupported, &copies, threads, &mut par_scratch)
                    .unwrap();
            assert_eq!(seq_ms.to_bits(), par_ms.to_bits(), "threads={threads}");
            assert_eq!(seq.splits(), par_scratch.splits(), "threads={threads}");
        }
    }

    #[test]
    fn scratch_reuse_across_shapes_is_clean() {
        // A big run followed by smaller ones must not observe stale
        // state from the earlier shape.
        let mut scratch = DpScratch::new();
        let big = oracle(vec![vec![1.0; 24]; 4]);
        let p_big = min_max_partition_in(24, 4, &big, &mut scratch).unwrap();
        assert_eq!(p_big.makespan_ms, 6.0);
        for n in 2..10 {
            for k in 1..=n.min(4) {
                let c = oracle(vec![vec![1.0; n]; k]);
                let fresh = min_max_partition(n, k, &c).unwrap();
                let reused = min_max_partition_in(n, k, &c, &mut scratch).unwrap();
                assert_eq!(fresh.splits, reused.splits, "n={n} k={k}");
                assert_eq!(
                    fresh.makespan_ms.to_bits(),
                    reused.makespan_ms.to_bits(),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn fast_variant_is_exact_on_homogeneous_costs() {
        // The balance-point optimization is provably exact when every
        // slot prices slices identically (see the exactness caveat).
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((seed >> 33) % 100 + 1) as f64
        };
        for n in 2..14 {
            for k in 1..=n.min(5) {
                let row: Vec<f64> = (0..n).map(|_| next()).collect();
                let times: Vec<Vec<f64>> = (0..k).map(|_| row.clone()).collect();
                let c = oracle(times);
                let slow = min_max_partition(n, k, &c).unwrap();
                let fast = min_max_partition_fast(n, k, &c).unwrap();
                assert!(
                    (slow.makespan_ms - fast.makespan_ms).abs() < 1e-9,
                    "n={n} k={k}: {} vs {}",
                    slow.makespan_ms,
                    fast.makespan_ms
                );
            }
        }
    }

    #[test]
    fn fast_variant_is_heuristic_on_heterogeneous_costs() {
        // The documented counterexample: heterogeneous rows where the
        // prefix optimum is non-monotone because of a singleton stage.
        let times = vec![
            vec![2.8, 0.2, 0.5, 0.2, 7.7, 6.0, 9.4],
            vec![6.1, 0.2, 0.4, 8.9, 6.2, 7.0, 5.1],
            vec![3.7, 1.7, 7.3, 9.9, 2.9, 7.2, 2.4],
            vec![8.9, 8.5, 9.1, 7.1, 2.4, 6.7, 0.2],
        ];
        let c = oracle(times);
        let exact = min_max_partition(7, 4, &c).unwrap();
        let brute = min_max_partition_exhaustive(7, 4, &c).unwrap();
        assert!((exact.makespan_ms - brute.makespan_ms).abs() < 1e-9);
        let fast = min_max_partition_fast(7, 4, &c).unwrap();
        // The heuristic stays feasible and within 25% here, but is not
        // exact — which is why the planner uses the reference DP.
        assert!(fast.makespan_ms >= exact.makespan_ms);
        assert!(fast.makespan_ms <= exact.makespan_ms * 1.25);
    }

    #[test]
    fn infeasible_slots_are_avoided() {
        // Slot 1 (e.g. NPU) cannot run layer 2.
        let c = |slot: usize, i: usize, j: usize| -> Option<f64> {
            if slot == 1 && i <= 2 && 2 <= j {
                return None;
            }
            Some((j - i + 1) as f64)
        };
        let p = min_max_partition(5, 2, c).unwrap();
        // Layer 2 must be in stage 0 (slot 0), so the split is after 2.
        assert!(p.splits[0] > 2);
    }

    #[test]
    fn fully_infeasible_partition_returns_none() {
        // Slot 0 supports nothing.
        let c = |slot: usize, _i: usize, _j: usize| -> Option<f64> {
            if slot == 0 {
                None
            } else {
                Some(1.0)
            }
        };
        assert!(min_max_partition(4, 2, c).is_none());
    }

    #[test]
    fn prefix_kernel_fully_infeasible_returns_none() {
        // Every layer unsupported on the only slot.
        let times = vec![vec![1.0; 4]];
        let unsupported = vec![vec![0, 1, 2, 3]];
        let copies = vec![vec![0.0; 4]];
        let mut scratch = DpScratch::new();
        assert!(run_prefix_kernel(&times, &unsupported, &copies, 1, &mut scratch).is_none());
    }

    #[test]
    fn degenerate_sizes_are_rejected() {
        let c = |_: usize, i: usize, j: usize| Some((j - i + 1) as f64);
        assert!(min_max_partition(0, 1, c).is_none());
        assert!(min_max_partition(3, 0, c).is_none());
        assert!(min_max_partition(3, 4, c).is_none());
        let mut scratch = DpScratch::new();
        let pm = [0.0, 1.0, 2.0, 3.0];
        let feas = [0u32; 3];
        let copy = [0.0; 3];
        let stage = |_a: usize| PrefixStage::Plain {
            pm: &pm,
            feas_from: &feas,
            copy: &copy,
        };
        assert!(min_max_partition_prefix(0, 1, 1, stage, &mut scratch).is_none());
        assert!(min_max_partition_prefix(3, 0, 1, stage, &mut scratch).is_none());
        assert!(min_max_partition_prefix(3, 4, 1, stage, &mut scratch).is_none());
    }

    #[test]
    fn k_equals_n_gives_one_layer_per_stage() {
        let c = oracle(vec![vec![2.0, 3.0, 1.0]; 3]);
        let p = min_max_partition(3, 3, &c).unwrap();
        assert_eq!(p.splits, vec![1, 2]);
        assert_eq!(p.stage_ms, vec![2.0, 3.0, 1.0]);
        assert_eq!(p.makespan_ms, 3.0);
    }

    #[test]
    fn stage_range_reconstructs_slices() {
        let c = oracle(vec![vec![1.0; 6]; 3]);
        let p = min_max_partition(6, 3, &c).unwrap();
        assert_eq!(p.stage_range(0, 6), (0, 1));
        assert_eq!(p.stage_range(1, 6), (2, 3));
        assert_eq!(p.stage_range(2, 6), (4, 5));
    }

    #[test]
    fn split_combinations_counts_choose() {
        assert_eq!(split_combinations(6, 3), 10); // C(5, 2)
        assert_eq!(split_combinations(8, 1), 1);
        assert_eq!(split_combinations(8, 8), 1);
        assert_eq!(split_combinations(62, 4), 35990); // C(61, 3): Fig. 8a scale
        assert_eq!(split_combinations(0, 1), 0);
        assert_eq!(split_combinations(128, 64), u64::MAX); // saturates
    }

    #[test]
    #[should_panic(expected = "exceeds the budget")]
    fn exhaustive_rejects_oversized_enumerations() {
        // C(199, 99) is astronomically past the budget: the guard must
        // fire before any recursion happens.
        let c = |_: usize, i: usize, j: usize| Some((j - i + 1) as f64);
        let _ = min_max_partition_exhaustive(200, 100, c);
    }

    #[test]
    fn cells_counter_accumulates_and_drains() {
        let times = vec![vec![1.0; 6]; 3];
        let unsupported = vec![Vec::new(); 3];
        let copies = vec![vec![0.0; 6]; 3];
        let mut scratch = DpScratch::new();
        run_prefix_kernel(&times, &unsupported, &copies, 1, &mut scratch).unwrap();
        let cells = scratch.take_cells();
        assert!(cells > 0, "kernel evaluated no cells?");
        assert_eq!(scratch.take_cells(), 0, "drain must reset");
    }
}
