//! Horizontal model partitioning (Sec. V-A, Algorithm 1).
//!
//! Splits an `n`-layer model into `K` contiguous, non-empty slices mapped
//! onto an ordered processor sequence, minimizing the maximum stage time
//! (the makespan of one inference traversing the pipeline):
//!
//! ```text
//! S*(j, k) = min_i max( S*(i-1, k-1), T_k(i, j) )
//! ```
//!
//! Two implementations are provided:
//!
//! * [`min_max_partition`] — the reference O(n²K) dynamic program. It
//!   accepts *any* cost oracle, including ones with inter-processor copy
//!   costs and NPU-unsupported ranges (returned as `None` = infeasible).
//! * [`min_max_partition_fast`] — the paper's optimized O(nK log n)
//!   variant exploiting Property 2 (monotonicity): the inner minimization
//!   becomes a binary search for the balance point between
//!   `S*(i-1, k-1)` and `T_k(i, j)`. Exact for homogeneous stage costs;
//!   a fast heuristic for heterogeneous ones (see the function's
//!   exactness caveat — a finding of this reproduction about the paper's
//!   complexity claim).
//!
//! The test suite cross-checks all three implementations exhaustively
//! and property-based.

/// Result of partitioning one model across `K` pipeline stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// `K-1` ascending split points; slice `s` covers
    /// `[splits[s-1], splits[s])` with sentinels 0 and `n`.
    pub splits: Vec<usize>,
    /// Per-stage cost under the oracle used for planning.
    pub stage_ms: Vec<f64>,
    /// The minimized maximum stage cost.
    pub makespan_ms: f64,
}

impl Partition {
    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stage_ms.len()
    }

    /// The inclusive layer range `(first, last)` of stage `s` for a model
    /// with `n` layers.
    pub fn stage_range(&self, s: usize, n: usize) -> (usize, usize) {
        let first = if s == 0 { 0 } else { self.splits[s - 1] };
        let last = if s == self.splits.len() {
            n - 1
        } else {
            self.splits[s] - 1
        };
        (first, last)
    }
}

/// Reference O(n²K) dynamic program. `cost(slot, i, j)` returns the stage
/// cost of layers `[i, j]` on processor slot `slot`, or `None` if that
/// placement is infeasible (unsupported operator). Returns `None` when no
/// feasible K-way partition exists or `k > n` / `k == 0` / `n == 0`.
///
/// ```
/// use hetero2pipe::partition::min_max_partition;
///
/// // Six unit-cost layers over three identical processors: 2+2+2.
/// let p = min_max_partition(6, 3, |_slot, i, j| Some((j - i + 1) as f64))
///     .expect("feasible");
/// assert_eq!(p.splits, vec![2, 4]);
/// assert_eq!(p.makespan_ms, 2.0);
/// ```
pub fn min_max_partition<F>(n: usize, k: usize, cost: F) -> Option<Partition>
where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    if n == 0 || k == 0 || k > n {
        return None;
    }
    const INF: f64 = f64::INFINITY;
    // s[j][kk] = best makespan for layers 0..=j on the first kk slots.
    let mut s = vec![vec![INF; k + 1]; n];
    let mut choice = vec![vec![0usize; k + 1]; n];
    for (j, row) in s.iter_mut().enumerate() {
        row[1] = cost(0, 0, j).unwrap_or(INF);
    }
    for kk in 2..=k {
        for j in (kk - 1)..n {
            let mut best = INF;
            let mut best_i = 0;
            // No early termination: for arbitrary oracles (restricted
            // split points, infeasible ranges, copy costs) the prefix
            // table is not monotone in i, so every candidate must be
            // scanned. The optimized variant below exploits monotonicity
            // when it does hold.
            for i in (kk - 1)..=j {
                let prev = s[i - 1][kk - 1];
                let c = cost(kk - 1, i, j).unwrap_or(INF);
                let v = prev.max(c);
                if v < best {
                    best = v;
                    best_i = i;
                }
            }
            s[j][kk] = best;
            choice[j][kk] = best_i;
        }
    }
    if !s[n - 1][k].is_finite() {
        return None;
    }
    // Backtrack split points.
    let mut splits = vec![0usize; k - 1];
    let mut j = n - 1;
    for kk in (2..=k).rev() {
        let i = choice[j][kk];
        splits[kk - 2] = i;
        j = i - 1;
    }
    finish(n, k, splits, cost)
}

/// The optimized variant of Algorithm 1: O(nK log n) via binary search on
/// the balance point (Property 2).
///
/// **Exactness caveat.** The balance-point argument requires the prefix
/// optimum `S(j, k)` to be non-decreasing in `j`. With *homogeneous*
/// stage costs (every pipeline slot prices a slice identically) this
/// follows from Property 2. With heterogeneous processors and mandatory
/// non-empty stages it can fail: when the optimal partition of a longer
/// prefix ends in a singleton stage, the shorter prefix cannot inherit
/// it, and `S(j, k)` may *decrease* as `j` grows (a concrete 7-layer,
/// 4-processor counterexample lives in the test suite). In that regime
/// this variant is a fast heuristic; the planner therefore uses the
/// reference [`min_max_partition`], which is exact for any oracle.
pub fn min_max_partition_fast<F>(n: usize, k: usize, cost: F) -> Option<Partition>
where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    if n == 0 || k == 0 || k > n {
        return None;
    }
    const INF: f64 = f64::INFINITY;
    let get = |slot: usize, i: usize, j: usize| cost(slot, i, j).unwrap_or(INF);
    let mut s = vec![vec![INF; k + 1]; n];
    let mut choice = vec![vec![0usize; k + 1]; n];
    for (j, row) in s.iter_mut().enumerate() {
        row[1] = get(0, 0, j);
    }
    for kk in 2..=k {
        for j in (kk - 1)..n {
            // Find the smallest i in [kk-1, j] with
            // s[i-1][kk-1] >= cost(kk-1, i, j); the optimum is at that i
            // or the one before (the "balance point" of Algorithm 1).
            let (mut lo, mut hi) = (kk - 1, j);
            while lo < hi {
                let mid = (lo + hi) / 2;
                let prev = s[mid - 1][kk - 1];
                let cur = get(kk - 1, mid, j);
                // With INF on both sides the predicate treats INF >= INF
                // as true, steering towards smaller i, which is safe: the
                // candidate scan below evaluates real values.
                if prev >= cur {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let mut best = INF;
            let mut best_i = lo;
            // Evaluate the crossing point and its neighbours.
            let lo_cand = lo.saturating_sub(1).max(kk - 1);
            for i in lo_cand..=(lo + 1).min(j) {
                let v = s[i - 1][kk - 1].max(get(kk - 1, i, j));
                if v < best {
                    best = v;
                    best_i = i;
                }
            }
            s[j][kk] = best;
            choice[j][kk] = best_i;
        }
    }
    if !s[n - 1][k].is_finite() {
        return None;
    }
    let mut splits = vec![0usize; k - 1];
    let mut j = n - 1;
    for kk in (2..=k).rev() {
        let i = choice[j][kk];
        splits[kk - 2] = i;
        j = i - 1;
    }
    finish(n, k, splits, cost)
}

/// Evaluates the stage times of `splits` under `cost` and assembles the
/// [`Partition`], used by both DP variants and by work stealing when it
/// perturbs split points.
pub fn finish<F>(n: usize, k: usize, splits: Vec<usize>, cost: F) -> Option<Partition>
where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    debug_assert_eq!(splits.len(), k - 1);
    let mut stage_ms = Vec::with_capacity(k);
    let mut prev = 0usize;
    for (slot, &split) in splits.iter().chain(std::iter::once(&n)).enumerate() {
        if split <= prev || split > n {
            return None;
        }
        stage_ms.push(cost(slot, prev, split - 1)?);
        prev = split;
    }
    let makespan_ms = stage_ms.iter().copied().fold(0.0, f64::max);
    Some(Partition {
        splits,
        stage_ms,
        makespan_ms,
    })
}

/// Brute-force optimal min-max partition by enumerating every split-point
/// combination. Exponential; exposed for tests and the exhaustive-search
/// baseline (Fig. 8a).
pub fn min_max_partition_exhaustive<F>(n: usize, k: usize, cost: F) -> Option<Partition>
where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    if n == 0 || k == 0 || k > n {
        return None;
    }
    let mut best: Option<Partition> = None;
    let mut splits = vec![0usize; k - 1];
    enumerate(n, k, 0, 1, &mut splits, &cost, &mut best);
    best
}

fn enumerate<F>(
    n: usize,
    k: usize,
    idx: usize,
    min_next: usize,
    splits: &mut Vec<usize>,
    cost: &F,
    best: &mut Option<Partition>,
) where
    F: Fn(usize, usize, usize) -> Option<f64>,
{
    if idx == k - 1 {
        if let Some(p) = finish(n, k, splits.clone(), cost) {
            if best.as_ref().is_none_or(|b| p.makespan_ms < b.makespan_ms) {
                *best = Some(p);
            }
        }
        return;
    }
    // Leave room for the remaining stages.
    for s in min_next..=(n - (k - 1 - idx)) {
        splits[idx] = s;
        enumerate(n, k, idx + 1, s + 1, splits, cost, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a monotone cost oracle from per-slot per-layer times.
    fn oracle(times: Vec<Vec<f64>>) -> impl Fn(usize, usize, usize) -> Option<f64> {
        let prefix: Vec<Vec<f64>> = times
            .iter()
            .map(|row| {
                let mut p = vec![0.0];
                for &t in row {
                    p.push(p.last().unwrap() + t);
                }
                p
            })
            .collect();
        move |slot, i, j| {
            if slot >= prefix.len() || j >= prefix[slot].len() - 1 || i > j {
                None
            } else {
                Some(prefix[slot][j + 1] - prefix[slot][i])
            }
        }
    }

    #[test]
    fn balances_uniform_layers_on_identical_processors() {
        // 6 identical layers on 3 identical processors: 2+2+2.
        let c = oracle(vec![vec![1.0; 6]; 3]);
        let p = min_max_partition(6, 3, &c).unwrap();
        assert_eq!(p.splits, vec![2, 4]);
        assert_eq!(p.makespan_ms, 2.0);
    }

    #[test]
    fn loads_follow_processor_speed() {
        // Slot 0 is 4x faster than slot 1: it should take more layers.
        let fast: Vec<f64> = vec![1.0; 8];
        let slow: Vec<f64> = vec![4.0; 8];
        let c = oracle(vec![fast, slow]);
        let p = min_max_partition(8, 2, &c).unwrap();
        assert!(p.splits[0] > 4, "fast slot takes the bigger share");
        // Optimal is 6/2: max(6, 8) = 8? 7/1: max(7,4)=7. Check optimum.
        let ex = min_max_partition_exhaustive(8, 2, &c).unwrap();
        assert_eq!(p.makespan_ms, ex.makespan_ms);
    }

    #[test]
    fn dp_matches_exhaustive_on_heterogeneous_costs() {
        let mut seed = 7u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 50 + 1) as f64 / 10.0
        };
        for n in 3..9 {
            for k in 1..=n.min(4) {
                let times: Vec<Vec<f64>> =
                    (0..k).map(|_| (0..n).map(|_| next()).collect()).collect();
                let c = oracle(times);
                let dp = min_max_partition(n, k, &c).unwrap();
                let ex = min_max_partition_exhaustive(n, k, &c).unwrap();
                assert!(
                    (dp.makespan_ms - ex.makespan_ms).abs() < 1e-9,
                    "n={n} k={k}: dp {} vs exhaustive {}",
                    dp.makespan_ms,
                    ex.makespan_ms
                );
            }
        }
    }

    #[test]
    fn fast_variant_is_exact_on_homogeneous_costs() {
        // The balance-point optimization is provably exact when every
        // slot prices slices identically (see the exactness caveat).
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((seed >> 33) % 100 + 1) as f64
        };
        for n in 2..14 {
            for k in 1..=n.min(5) {
                let row: Vec<f64> = (0..n).map(|_| next()).collect();
                let times: Vec<Vec<f64>> = (0..k).map(|_| row.clone()).collect();
                let c = oracle(times);
                let slow = min_max_partition(n, k, &c).unwrap();
                let fast = min_max_partition_fast(n, k, &c).unwrap();
                assert!(
                    (slow.makespan_ms - fast.makespan_ms).abs() < 1e-9,
                    "n={n} k={k}: {} vs {}",
                    slow.makespan_ms,
                    fast.makespan_ms
                );
            }
        }
    }

    #[test]
    fn fast_variant_is_heuristic_on_heterogeneous_costs() {
        // The documented counterexample: heterogeneous rows where the
        // prefix optimum is non-monotone because of a singleton stage.
        let times = vec![
            vec![2.8, 0.2, 0.5, 0.2, 7.7, 6.0, 9.4],
            vec![6.1, 0.2, 0.4, 8.9, 6.2, 7.0, 5.1],
            vec![3.7, 1.7, 7.3, 9.9, 2.9, 7.2, 2.4],
            vec![8.9, 8.5, 9.1, 7.1, 2.4, 6.7, 0.2],
        ];
        let c = oracle(times);
        let exact = min_max_partition(7, 4, &c).unwrap();
        let brute = min_max_partition_exhaustive(7, 4, &c).unwrap();
        assert!((exact.makespan_ms - brute.makespan_ms).abs() < 1e-9);
        let fast = min_max_partition_fast(7, 4, &c).unwrap();
        // The heuristic stays feasible and within 25% here, but is not
        // exact — which is why the planner uses the reference DP.
        assert!(fast.makespan_ms >= exact.makespan_ms);
        assert!(fast.makespan_ms <= exact.makespan_ms * 1.25);
    }

    #[test]
    fn infeasible_slots_are_avoided() {
        // Slot 1 (e.g. NPU) cannot run layer 2.
        let c = |slot: usize, i: usize, j: usize| -> Option<f64> {
            if slot == 1 && i <= 2 && 2 <= j {
                return None;
            }
            Some((j - i + 1) as f64)
        };
        let p = min_max_partition(5, 2, c).unwrap();
        // Layer 2 must be in stage 0 (slot 0), so the split is after 2.
        assert!(p.splits[0] > 2);
    }

    #[test]
    fn fully_infeasible_partition_returns_none() {
        // Slot 0 supports nothing.
        let c = |slot: usize, _i: usize, _j: usize| -> Option<f64> {
            if slot == 0 {
                None
            } else {
                Some(1.0)
            }
        };
        assert!(min_max_partition(4, 2, c).is_none());
    }

    #[test]
    fn degenerate_sizes_are_rejected() {
        let c = |_: usize, i: usize, j: usize| Some((j - i + 1) as f64);
        assert!(min_max_partition(0, 1, c).is_none());
        assert!(min_max_partition(3, 0, c).is_none());
        assert!(min_max_partition(3, 4, c).is_none());
    }

    #[test]
    fn k_equals_n_gives_one_layer_per_stage() {
        let c = oracle(vec![vec![2.0, 3.0, 1.0]; 3]);
        let p = min_max_partition(3, 3, &c).unwrap();
        assert_eq!(p.splits, vec![1, 2]);
        assert_eq!(p.stage_ms, vec![2.0, 3.0, 1.0]);
        assert_eq!(p.makespan_ms, 3.0);
    }

    #[test]
    fn stage_range_reconstructs_slices() {
        let c = oracle(vec![vec![1.0; 6]; 3]);
        let p = min_max_partition(6, 3, &c).unwrap();
        assert_eq!(p.stage_range(0, 6), (0, 1));
        assert_eq!(p.stage_range(1, 6), (2, 3));
        assert_eq!(p.stage_range(2, 6), (4, 5));
    }
}
