//! Vertical alignment by work stealing (Sec. V-C, Algorithm 3) and tail
//! bubble optimization.
//!
//! After horizontal partitioning, each request is individually min-max
//! balanced, but *across* requests the stage times disagree, creating
//! pipeline bubbles (Def. 3). Work stealing slides a contention window of
//! `K` positions over the request sequence, finds the window's critical
//! path (the request with the largest total time), and re-balances the
//! other requests' split points so their stage times align with the
//! critical request's — moving layers between adjacent stages exactly as
//! Algorithm 3's left/right stealing does.
//!
//! The tail phase exploits an inference-only freedom the paper points out:
//! unlike pipelined training, the draining tail of the pipeline can be
//! collapsed — the last requests may abandon their deep pipelines and run
//! on a single processor if that shrinks the tail bubbles. The search
//! space is only `K` options per request, so it is searched exhaustively.
//!
//! Every adjustment is guarded: a candidate re-balance is kept only if it
//! does not increase the plan's total bubbles (stealing) or estimated
//! makespan (tail), so both passes are monotone improvements by
//! construction.

use h2p_models::cost::CostModel;

use crate::estimate::{Estimator, RequestContext, RequestTables};
use crate::plan::{PipelinePlan, StagePlan};

/// Precomputed single-slot collapse candidates for one request: entry
/// `slot` holds the stages and derived context of running the whole model
/// alone on that slot, or `None` where the model is infeasible there.
/// Computed once per request from its shared cost tables (in parallel with
/// the rest of step 1) and reused across every candidate-order assembly.
pub type CollapseSlots = Vec<Option<(Vec<Option<StagePlan>>, RequestContext)>>;

/// Outcome statistics of the vertical-alignment passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StealReport {
    /// Number of contention windows visited.
    pub windows: usize,
    /// Number of requests whose splits were re-balanced.
    pub adjustments: usize,
    /// Number of tail requests collapsed onto a single processor.
    pub tail_merges: usize,
    /// Total plan bubbles before any adjustment.
    pub bubbles_before_ms: f64,
    /// Total plan bubbles after all adjustments.
    pub bubbles_after_ms: f64,
}

/// Greedily re-partitions a request so its per-stage times track
/// `targets` (one target per active stage), instead of min-max balance.
/// Walks the layer chain left to right, ending each stage at the boundary
/// whose cost is closest to the target (Algorithm 3's layer-granularity
/// stealing). Returns `None` if no feasible split assignment exists.
pub fn align_to_targets(
    ctx: &RequestContext,
    cost: &CostModel,
    targets: &[f64],
) -> Option<Vec<usize>> {
    let stages = ctx.stage_count();
    debug_assert_eq!(targets.len(), stages);
    let n = ctx.layer_count();
    if stages > n {
        return None;
    }
    let mut splits = Vec::with_capacity(stages - 1);
    let mut i = 0usize;
    for (a, &target) in targets.iter().enumerate().take(stages - 1) {
        let remaining = stages - 1 - a; // later stages each need ≥1 layer
        let j_max = n - 1 - remaining;
        let mut best: Option<(usize, f64)> = None;
        let mut j = i;
        while j <= j_max {
            match ctx.stage_cost(cost, a, i, j) {
                Some(c) => {
                    let diff = (c - target).abs();
                    if best.is_none_or(|(_, d)| diff < d) {
                        best = Some((j, diff));
                    }
                    if c > target {
                        break; // costs grow with j: no closer boundary ahead
                    }
                }
                None => break, // unsupported layer: stage must end before it
            }
            j += 1;
        }
        let (end, _) = best?;
        splits.push(end + 1);
        i = end + 1;
    }
    // The final stage takes the rest; it must be feasible.
    ctx.stage_cost(cost, stages - 1, i, n - 1)?;
    Some(splits)
}

/// Algorithm 3: slide contention windows of size `K` over the plan and
/// re-balance each non-critical request's splits towards the window's
/// critical path. `ctxs` is indexed by *original* request index
/// ([`crate::plan::RequestPlan::request`]).
pub fn align_by_stealing(
    plan: &mut PipelinePlan,
    ctxs: &[RequestContext],
    cost: &CostModel,
) -> StealReport {
    let k = plan.depth().max(1);
    let m = plan.requests.len();
    let bubbles_before_ms = plan.total_bubble_ms();
    let mut adjustments = 0usize;
    let mut windows = 0usize;

    let mut u = 0usize;
    while u < m {
        let end = (u + k).min(m);
        windows += 1;
        // Critical path: the request with the largest total time
        // (deterministic tie-break on position).
        let Some(critical) = (u..end).max_by(|&a, &b| {
            plan.requests[a]
                .total_ms()
                .total_cmp(&plan.requests[b].total_ms())
                .then(b.cmp(&a))
        }) else {
            break;
        };
        let critical_total = plan.requests[critical].total_ms();
        let critical_stage_ms: Vec<f64> = (0..k)
            .map(|s| plan.requests[critical].stage_ms(s))
            .collect();

        for pos in u..end {
            if pos == critical {
                continue;
            }
            let orig = plan.requests[pos].request;
            let ctx = &ctxs[orig];
            if ctx.stage_count() < 2 {
                continue; // single-stage requests have nothing to steal
            }
            // Algorithm 3 aligns along columns: the stage of position
            // `pos` at slot `s` runs concurrently with the critical
            // request's stage at slot `s + (pos - critical)` (they share
            // column `pos + s`). Target those times; where the critical
            // path has no stage there, aim for an even share.
            let offset = pos as isize - critical as isize;
            let fallback = critical_total / ctx.stage_count() as f64;
            let targets: Vec<f64> = ctx
                .active_slots
                .iter()
                .map(|&s| {
                    let partner = s as isize + offset;
                    let t = if (0..k as isize).contains(&partner) {
                        critical_stage_ms[partner as usize]
                    } else {
                        0.0
                    };
                    if t > 0.0 {
                        t
                    } else {
                        fallback
                    }
                })
                .collect();
            let Some(splits) = align_to_targets(ctx, cost, &targets) else {
                continue;
            };
            let Some(stages) = ctx.build_stages(cost, &splits, k) else {
                continue;
            };
            // Guarded accept: keep only if total bubbles do not grow.
            let before = plan.total_bubble_ms();
            let saved = std::mem::replace(&mut plan.requests[pos].stages, stages);
            if plan.total_bubble_ms() > before + 1e-9 {
                plan.requests[pos].stages = saved;
            } else if plan.requests[pos].stages != saved {
                adjustments += 1;
            }
        }
        u += k; // slide by K, as in Algorithm 3 line 15
    }

    StealReport {
        windows,
        adjustments,
        tail_merges: 0,
        bubbles_before_ms,
        bubbles_after_ms: plan.total_bubble_ms(),
    }
}

/// Tail-bubble optimization: for each of the last `K−1` requests (the
/// draining tail) *and* the first `K−1` requests (the filling head —
/// Fig. 6's "under-utilization at the beginning"), try collapsing its
/// pipeline onto each single processor (the exhaustive `K`-way local
/// search of Sec. V-C) and keep the variant minimizing the plan's
/// estimated makespan. Updates `ctxs` in place for collapsed requests;
/// returns the number of merges performed.
pub fn optimize_tail(
    plan: &mut PipelinePlan,
    ctxs: &mut [RequestContext],
    estimator: &Estimator,
) -> usize {
    let k = plan.depth();
    let m = plan.requests.len();
    if m == 0 || k < 2 {
        return 0;
    }
    // The pipeline's fill (head) and drain (tail) positions benefit most
    // from collapsing, but a mid-sequence request whose stages cannot be
    // aligned (e.g. far smaller than its column mates) may also win, so
    // the K-way local search sweeps every position; the guarded accept
    // keeps the pass monotone.
    let positions: Vec<usize> = (0..m).collect();
    optimize_positions(plan, ctxs, estimator, &positions)
}

/// Builds the [`CollapseSlots`] for one request from its shared cost
/// tables: the stages and context of collapsing onto each single slot.
/// The candidates are exactly what [`optimize_tail`]'s inner loop would
/// rebuild per position — but computed once, from the cached tables.
pub fn collapse_candidates(
    tables: &RequestTables,
    cost: &CostModel,
    total_slots: usize,
) -> CollapseSlots {
    (0..total_slots)
        .map(|slot| {
            let ctx = tables.context(vec![slot]);
            let stages = ctx.build_stages(cost, &[], total_slots)?;
            Some((stages, ctx))
        })
        .collect()
}

/// The cached equivalent of [`optimize_tail`]: the same K-way
/// single-processor local search with the same visit order and the same
/// guarded accept (`makespan + 1e-9 < best`), but reading precomputed
/// [`CollapseSlots`] (indexed by *original* request index) instead of
/// rebuilding a context per `(position, slot)` pair, and evaluating each
/// candidate with the allocation-free
/// [`PipelinePlan::estimated_makespan_ms_substituting`]. Bit-identical
/// merge decisions to the reference.
pub fn optimize_tail_cached(
    plan: &mut PipelinePlan,
    ctxs: &mut [RequestContext],
    collapse: &[CollapseSlots],
) -> usize {
    let k = plan.depth();
    let m = plan.requests.len();
    if m == 0 || k < 2 {
        return 0;
    }
    let mut merges = 0usize;
    for pos in 0..m {
        let orig = plan.requests[pos].request;
        let mut best_makespan = plan.estimated_makespan_ms();
        let mut best: Option<&(Vec<Option<StagePlan>>, RequestContext)> = None;
        for candidate in collapse[orig].iter().flatten() {
            let makespan = plan.estimated_makespan_ms_substituting(pos, &candidate.0);
            if makespan + 1e-9 < best_makespan {
                best_makespan = makespan;
                best = Some(candidate);
            }
        }
        if let Some((stages, ctx)) = best {
            plan.requests[pos].stages = stages.clone();
            ctxs[orig] = ctx.clone();
            merges += 1;
        }
    }
    merges
}

/// The K-way single-processor collapse search over the given positions.
fn optimize_positions(
    plan: &mut PipelinePlan,
    ctxs: &mut [RequestContext],
    estimator: &Estimator,
    positions: &[usize],
) -> usize {
    let k = plan.depth();
    let procs = plan.procs.clone();
    let mut merges = 0usize;
    for &pos in positions {
        let orig = plan.requests[pos].request;
        let graph = ctxs[orig].graph.clone();
        let mut best_makespan = plan.estimated_makespan_ms();
        let mut best: Option<(Vec<Option<crate::plan::StagePlan>>, RequestContext)> = None;
        for slot in 0..k {
            let ctx = estimator.context(&graph, &procs, vec![slot]);
            let Some(stages) = ctx.build_stages(estimator.cost(), &[], k) else {
                continue;
            };
            let saved = std::mem::replace(&mut plan.requests[pos].stages, stages.clone());
            let makespan = plan.estimated_makespan_ms();
            plan.requests[pos].stages = saved;
            if makespan + 1e-9 < best_makespan {
                best_makespan = makespan;
                best = Some((stages, ctx));
            }
        }
        if let Some((stages, ctx)) = best {
            plan.requests[pos].stages = stages;
            ctxs[orig] = ctx;
            merges += 1;
        }
    }
    merges
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;
    use h2p_simulator::SocSpec;

    use crate::partition::DpScratch;
    use crate::plan::RequestPlan;

    /// Builds a simple plan: every request min-max partitioned (via the
    /// production DP kernel over shared tables) across all four Kirin
    /// slots (falling back to CPU-feasible slot sets).
    fn build_plan(models: &[ModelId]) -> (PipelinePlan, Vec<RequestContext>, Estimator) {
        let soc = SocSpec::kirin_990();
        let est = Estimator::new(&soc).unwrap();
        let procs = soc.processors_by_power();
        let mut ctxs = Vec::new();
        let mut requests = Vec::new();
        let mut scratch = DpScratch::new();
        for (idx, id) in models.iter().enumerate() {
            let graph = id.graph();
            let tables = est.tables(std::sync::Arc::new(graph.clone()), &procs);
            // Choose all slots if feasible, else skip the NPU slot (0).
            let candidates: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3], vec![1, 2, 3]];
            let mut placed = false;
            for slots in candidates {
                let cost = est.cost();
                if tables.partition_into(&slots, 1, &mut scratch).is_some() {
                    let ctx = tables.context(slots);
                    let stages = ctx
                        .build_stages(cost, scratch.splits(), procs.len())
                        .expect("partition is feasible");
                    requests.push(RequestPlan {
                        request: idx,
                        model: graph.name().to_owned(),
                        stages,
                        intensity: est.predict_intensity(&graph),
                        class: est.classify(&graph),
                    });
                    ctxs.push(ctx);
                    placed = true;
                    break;
                }
            }
            assert!(placed, "{id} must be placeable");
        }
        (PipelinePlan { procs, requests }, ctxs, est)
    }

    #[test]
    fn stealing_never_increases_bubbles() {
        let (mut plan, ctxs, est) = build_plan(&[
            ModelId::Vgg16,
            ModelId::SqueezeNet,
            ModelId::ResNet50,
            ModelId::MobileNetV2,
            ModelId::Bert,
            ModelId::GoogLeNet,
        ]);
        let report = align_by_stealing(&mut plan, &ctxs, est.cost());
        assert!(
            report.bubbles_after_ms <= report.bubbles_before_ms + 1e-9,
            "{report:?}"
        );
    }

    #[test]
    fn stealing_reduces_bubbles_on_imbalanced_mixes() {
        // A heavy model next to feather-light ones leaves big bubbles that
        // stealing must shrink.
        let (mut plan, ctxs, est) = build_plan(&[
            ModelId::Bert,
            ModelId::SqueezeNet,
            ModelId::MobileNetV2,
            ModelId::Vgg16,
        ]);
        let before = plan.total_bubble_ms();
        let report = align_by_stealing(&mut plan, &ctxs, est.cost());
        assert!(report.adjustments > 0, "{report:?}");
        assert!(plan.total_bubble_ms() < before, "{report:?}");
    }

    #[test]
    fn plans_remain_valid_partitions_after_stealing() {
        let (mut plan, ctxs, est) = build_plan(&[
            ModelId::Vgg16,
            ModelId::AlexNet,
            ModelId::ResNet50,
            ModelId::Vit,
        ]);
        align_by_stealing(&mut plan, &ctxs, est.cost());
        for req in &plan.requests {
            let n = ctxs[req.request].layer_count();
            let mut covered = 0usize;
            let mut next = 0usize;
            for stage in req.stages.iter().flatten() {
                assert_eq!(stage.range.first, next, "{}", req.model);
                next = stage.range.last + 1;
                covered += stage.range.len();
            }
            assert_eq!(covered, n, "{} must tile all layers", req.model);
        }
    }

    #[test]
    fn tail_optimization_never_increases_makespan() {
        let (mut plan, mut ctxs, est) = build_plan(&[
            ModelId::ResNet50,
            ModelId::GoogLeNet,
            ModelId::SqueezeNet,
            ModelId::MobileNetV2,
            ModelId::AlexNet,
        ]);
        let before = plan.estimated_makespan_ms();
        let merges = optimize_tail(&mut plan, &mut ctxs, &est);
        let after = plan.estimated_makespan_ms();
        assert!(after <= before + 1e-9, "makespan {before} -> {after}");
        // Contexts stay consistent with the plan.
        let _ = merges;
        for req in &plan.requests {
            let ctx = &ctxs[req.request];
            assert_eq!(req.active_stage_count(), ctx.stage_count(), "{}", req.model);
        }
    }

    #[test]
    fn align_to_targets_tracks_targets() {
        let soc = SocSpec::kirin_990();
        let est = Estimator::new(&soc).unwrap();
        let procs = soc.processors_by_power();
        let g = ModelId::Vgg16.graph();
        let ctx = est.context(&g, &procs, vec![0, 1, 2, 3]);
        let whole: f64 = (0..1)
            .map(|_| {
                est.cost()
                    .model_latency_ms(&g, procs[0])
                    .expect("vgg on npu")
            })
            .sum();
        // Ask for a front-loaded split: stage 0 gets ~70% of NPU time.
        let targets = vec![0.7 * whole, 1.0, 1.0, 1.0];
        let splits = align_to_targets(&ctx, est.cost(), &targets).unwrap();
        assert_eq!(splits.len(), 3);
        let stage0 = ctx.stage_cost(est.cost(), 0, 0, splits[0] - 1).unwrap();
        // Should be much more than an even 1/4 share.
        let even = ctx.stage_cost(est.cost(), 0, 0, g.len() / 4).unwrap();
        assert!(stage0 > even, "front-loaded stage {stage0} vs even {even}");
    }

    #[test]
    fn align_to_targets_handles_npu_fallback_stages() {
        let soc = SocSpec::kirin_990();
        let est = Estimator::new(&soc).unwrap();
        let procs = soc.processors_by_power();
        let g = ModelId::YoloV4.graph(); // Mish layers interleave NPU-unsupported ops
        let ctx = est.context(&g, &procs, vec![0, 1]);
        // Huge targets: the greedy walk extends the NPU stage as far as
        // possible (operator fallback keeps every boundary feasible) but
        // must still leave the final stage at least one layer.
        let splits = align_to_targets(&ctx, est.cost(), &[1e9, 1e9]).unwrap();
        assert_eq!(splits.len(), 1);
        assert!(splits[0] >= 1 && splits[0] < g.len());
        assert!(
            ctx.build_stages(est.cost(), &splits, procs.len()).is_some(),
            "aligned splits remain buildable"
        );
    }

    #[test]
    fn single_stage_requests_are_left_alone() {
        let (mut plan, ctxs, est) = build_plan(&[ModelId::SqueezeNet]);
        let before = plan.clone();
        align_by_stealing(&mut plan, &ctxs, est.cost());
        assert_eq!(plan.requests.len(), before.requests.len());
    }
}
