//! Synchronization shim: every concurrency primitive the planner stack
//! touches goes through this module instead of `std` directly.
//!
//! In normal builds the shim is zero-cost: the atomics and [`Mutex`] are
//! plain re-exports of `std::sync`, and [`scope`]/[`Scope::spawn`] are
//! `#[inline]` wrappers around `std::thread::scope` that add nothing but
//! a struct field. Under `cfg(feature = "model-check")` the same names
//! resolve to *virtualized* primitives whose every operation is a yield
//! point of a controlled scheduler ([`model`]): a model checker (the
//! `h2p-check` crate) can then enumerate thread interleavings
//! deterministically — DFS-exhaustive for small configurations,
//! randomized PCT-style for larger ones — and assert the planner's
//! determinism invariants under every explored schedule.
//!
//! Two properties make it safe to enable the feature workspace-wide
//! (Cargo feature unification turns it on for every dependent once any
//! crate asks for it):
//!
//! * **Participant gating.** The virtualized operations consult a
//!   thread-local participant id and fall straight through to the real
//!   `std` primitive when the current thread is not registered with an
//!   active exploration. Ordinary tests and benches running in the same
//!   process are therefore untouched — semantics stay bit-identical,
//!   overhead is one thread-local read per operation.
//! * **Real primitives underneath.** The virtual layer only *schedules*;
//!   the data operations still go through genuine `std` atomics and
//!   mutexes. If the controller ever abandons a run (step budget,
//!   deadlock, participant panic) it releases all threads to run freely
//!   and the underlying primitives keep the program memory-safe.
//!
//! `worksteal.rs` is intentionally absent from the routing table: its
//! tail-optimization passes are pure sequential functions over plan
//! snapshots and own no synchronization state (the model checker reaches
//! them only *through* `par`/planner fan-out).

pub use std::sync::atomic::Ordering;
pub use std::sync::Arc;

#[cfg(not(feature = "model-check"))]
pub use std::sync::atomic::{AtomicBool, AtomicUsize};
#[cfg(not(feature = "model-check"))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(feature = "model-check")]
pub use virt::{AtomicBool, AtomicUsize, Mutex, MutexGuard};

/// The machine's available parallelism (or 1 when unknown). Inside an
/// active model-check exploration this reports the *virtual* parallelism
/// of the scenario instead, so `par::worker_count` fans out the modeled
/// worker count even on a single-core host.
pub fn available_parallelism() -> usize {
    #[cfg(feature = "model-check")]
    if let Some(vpar) = model::virtual_parallelism() {
        return vpar;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scoped-thread spawner mirroring [`std::thread::Scope`]. Under
/// model check, threads spawned *by a participant* register with the
/// controller before the spawner resumes (a rendezvous that keeps the
/// runnable set deterministic for schedule replay); everything else is a
/// plain pass-through.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

// `Scope` is just a reference; copying it lets `move` closures capture
// it per spawn exactly like `&std::thread::Scope` does.
impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle for a thread spawned through [`Scope::spawn`]. `join` blocks
/// virtually (controller-scheduled) before the real join so a controlled
/// run never wedges an OS thread inside `std`'s join.
pub struct JoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    #[cfg(feature = "model-check")]
    participant: Option<usize>,
}

impl<'scope, T> JoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        #[cfg(feature = "model-check")]
        if let Some(target) = self.participant {
            model::join_wait(target);
        }
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        #[cfg(feature = "model-check")]
        {
            if model::participating() {
                let (tx, rx) = std::sync::mpsc::channel();
                let inner = self.inner.spawn(move || {
                    let id = model::register_child();
                    // The spawner blocks on this rendezvous, so the
                    // channel cannot be closed yet; if it somehow is,
                    // fall through and run unscheduled (real primitives
                    // keep the run safe, the explorer records divergence).
                    let _ = tx.send(id);
                    model::run_participant(id, f)
                });
                // Rendezvous: the child is registered (runnable but not
                // scheduled) before spawn returns, making thread ids and
                // runnable sets a deterministic function of the schedule.
                let participant = rx.recv().ok();
                return JoinHandle { inner, participant };
            }
            let inner = self.inner.spawn(f);
            JoinHandle {
                inner,
                participant: None,
            }
        }
        #[cfg(not(feature = "model-check"))]
        JoinHandle {
            inner: self.inner.spawn(f),
        }
    }
}

/// Mirror of [`std::thread::scope`] handing out the shim's [`Scope`].
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|inner| f(Scope { inner }))
}

#[cfg(feature = "model-check")]
mod virt {
    //! Virtualized primitives: real `std` data operations preceded by
    //! controller yield points when the current thread participates in
    //! an exploration.

    use super::model;
    use std::sync::atomic::Ordering;

    /// Virtualized [`std::sync::atomic::AtomicUsize`].
    #[derive(Debug, Default)]
    pub struct AtomicUsize {
        inner: std::sync::atomic::AtomicUsize,
    }

    impl AtomicUsize {
        pub fn new(v: usize) -> Self {
            Self {
                inner: std::sync::atomic::AtomicUsize::new(v),
            }
        }

        pub fn load(&self, order: Ordering) -> usize {
            model::yield_point();
            self.inner.load(order)
        }

        pub fn store(&self, v: usize, order: Ordering) {
            model::yield_point();
            self.inner.store(v, order);
        }

        /// Read-modify-write with the model checker's fault hook: an
        /// armed injected bug replaces the atomic RMW with a broken
        /// variant (see [`model::InjectedFault`]) so the explorer can
        /// prove the invariant instrumentation catches it.
        pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
            model::yield_point();
            match model::take_fault() {
                Some(model::InjectedFault::SkipClaim) => {
                    // Dropped claim: the cursor advances one index past
                    // the claimed chunk, so one item is never handed out.
                    let cur = self.inner.load(Ordering::SeqCst);
                    self.inner.store(cur + v + 1, Ordering::SeqCst);
                    cur
                }
                Some(model::InjectedFault::SplitClaim) => {
                    // Torn claim: load and store are separate steps with
                    // a schedule point between them — the classic lost
                    // update. Only adversarial interleavings expose it.
                    let cur = self.inner.load(Ordering::SeqCst);
                    model::yield_point();
                    self.inner.store(cur + v, Ordering::SeqCst);
                    cur
                }
                None => self.inner.fetch_add(v, order),
            }
        }
    }

    /// Virtualized [`std::sync::atomic::AtomicBool`].
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            model::yield_point();
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            model::yield_point();
            self.inner.store(v, order);
        }
    }

    /// Virtualized [`std::sync::Mutex`]: acquisition is a scheduling
    /// decision; ownership is tracked by the controller so a scheduled
    /// thread never blocks the OS thread inside the real lock.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
        id: usize,
    }

    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Self {
                inner: std::sync::Mutex::new(v),
                id: model::next_mutex_id(),
            }
        }

        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            // Virtual wait-until-free: among participants only one thread
            // runs at a time and ownership is controller-tracked, so the
            // real lock below is acquired without blocking.
            let virtually_held = model::mutex_acquire(self.id);
            match self.inner.lock() {
                Ok(guard) => Ok(MutexGuard {
                    guard: Some(guard),
                    mutex_id: self.id,
                    virtually_held,
                }),
                Err(poisoned) => Err(std::sync::PoisonError::new(MutexGuard {
                    guard: Some(poisoned.into_inner()),
                    mutex_id: self.id,
                    virtually_held,
                })),
            }
        }
    }

    /// Guard for the virtualized [`Mutex`]. On drop the *real* guard is
    /// released first, then the virtual ownership is cleared and waiters
    /// are woken — so a woken thread's real `lock()` always succeeds.
    #[derive(Debug)]
    pub struct MutexGuard<'a, T> {
        guard: Option<std::sync::MutexGuard<'a, T>>,
        mutex_id: usize,
        virtually_held: bool,
    }

    impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            match &self.guard {
                Some(g) => g,
                // The Option is only emptied in drop().
                None => unreachable!("mutex guard used after drop"),
            }
        }
    }

    impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            match &mut self.guard {
                Some(g) => g,
                None => unreachable!("mutex guard used after drop"),
            }
        }
    }

    impl<'a, T> Drop for MutexGuard<'a, T> {
        fn drop(&mut self) {
            drop(self.guard.take());
            if self.virtually_held {
                model::mutex_release(self.mutex_id);
            }
        }
    }
}

#[cfg(feature = "model-check")]
pub mod model {
    //! The controlled scheduler: at most one participant thread runs at
    //! a time; every virtualized operation is a *yield point* where the
    //! controller consults a pluggable decision function (DFS replay or
    //! PCT priorities, supplied by `h2p-check`) to pick the next thread.
    //!
    //! Threads become participants only through [`run_schedule`]'s
    //! scenario root or a [`super::Scope::spawn`] issued by an existing
    //! participant; unrelated threads in the same process (other tests)
    //! are never captured. A global exclusivity lock serializes whole
    //! explorations.

    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

    /// Seeded concurrency bugs the checker must be able to catch. Both
    /// corrupt the `par` cursor claim RMW (see
    /// [`super::virt::AtomicUsize::fetch_add`]).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum InjectedFault {
        /// Every claim becomes a non-atomic load/yield/store — a lost
        /// update double-claims an item under racing schedules.
        SplitClaim,
        /// The first claim over-advances the cursor by one, silently
        /// dropping an item (fires once).
        SkipClaim,
    }

    impl InjectedFault {
        pub fn parse(s: &str) -> Option<Self> {
            match s {
                "split-claim" => Some(Self::SplitClaim),
                "skip-claim" => Some(Self::SkipClaim),
                _ => None,
            }
        }

        pub fn name(self) -> &'static str {
            match self {
                Self::SplitClaim => "split-claim",
                Self::SkipClaim => "skip-claim",
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum TState {
        Runnable,
        WaitingThread(usize),
        WaitingMutex(usize),
        Finished,
    }

    /// Scheduling decision callback: picks an index into the runnable set.
    type DecideFn = Box<dyn FnMut(&[usize]) -> usize + Send>;

    struct Ctl {
        active: Option<usize>,
        states: Vec<TState>,
        held: HashMap<usize, usize>,
        decide: Option<DecideFn>,
        fault: Option<InjectedFault>,
        fault_armed: bool,
        vpar: usize,
        steps: usize,
        step_limit: usize,
        /// Controlled scheduling abandoned (budget, deadlock or panic):
        /// all threads run freely on the real primitives underneath.
        released: bool,
        deadlock: bool,
        budget_exhausted: bool,
    }

    static CTL: StdMutex<Option<Ctl>> = StdMutex::new(None);
    static CV: Condvar = Condvar::new();
    static EXCLUSIVE: StdMutex<()> = StdMutex::new(());
    static MUTEX_IDS: StdAtomicUsize = StdAtomicUsize::new(0);

    thread_local! {
        static PARTICIPANT: std::cell::Cell<Option<usize>> =
            const { std::cell::Cell::new(None) };
    }

    fn ctl_lock() -> StdMutexGuard<'static, Option<Ctl>> {
        match CTL.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn cv_wait(g: StdMutexGuard<'static, Option<Ctl>>) -> StdMutexGuard<'static, Option<Ctl>> {
        match CV.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub(super) fn next_mutex_id() -> usize {
        MUTEX_IDS.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether the current thread is a registered participant of the
    /// active exploration. All virtualization is gated on this.
    pub(super) fn participating() -> bool {
        PARTICIPANT.with(std::cell::Cell::get).is_some()
    }

    /// The scenario's virtual parallelism, when called by a participant.
    pub(super) fn virtual_parallelism() -> Option<usize> {
        let _me = PARTICIPANT.with(std::cell::Cell::get)?;
        let g = ctl_lock();
        g.as_ref().map(|c| c.vpar)
    }

    /// Consume the armed fault, if any (participants only). SplitClaim
    /// stays armed — it models a *persistently* broken claim path.
    pub(super) fn take_fault() -> Option<InjectedFault> {
        let _me = PARTICIPANT.with(std::cell::Cell::get)?;
        let mut g = ctl_lock();
        let c = g.as_mut()?;
        if !c.fault_armed {
            return None;
        }
        let fault = c.fault?;
        if fault == InjectedFault::SkipClaim {
            c.fault_armed = false;
        }
        Some(fault)
    }

    fn runnable_ids(c: &Ctl) -> Vec<usize> {
        c.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TState::Runnable)
            .map(|(id, _)| id)
            .collect()
    }

    /// Pick the next active thread via the decision function. Caller
    /// must have cleared `active` (or left it on a non-runnable thread).
    fn schedule_next(c: &mut Ctl) {
        if c.released {
            return;
        }
        let runnable = runnable_ids(c);
        if runnable.is_empty() {
            let anyone_waiting = c
                .states
                .iter()
                .any(|s| matches!(s, TState::WaitingThread(_) | TState::WaitingMutex(_)));
            if anyone_waiting {
                // No runnable thread but blocked threads remain: a
                // genuine deadlock under this schedule. Release
                // everything so the OS threads can unwind on the real
                // primitives; the explorer reports the violation.
                c.deadlock = true;
                c.released = true;
            }
            c.active = None;
            return;
        }
        let choice = match c.decide.as_mut() {
            Some(decide) => decide(&runnable).min(runnable.len() - 1),
            None => 0,
        };
        c.active = Some(runnable[choice]);
    }

    fn wait_until_scheduled(me: usize, mut g: StdMutexGuard<'static, Option<Ctl>>) {
        loop {
            let Some(c) = g.as_ref() else { return };
            if c.released || c.active == Some(me) {
                return;
            }
            g = cv_wait(g);
        }
    }

    /// A yield point: the active participant pauses, the decision
    /// function picks who runs next. No-op for non-participants.
    pub fn yield_point() {
        let Some(me) = PARTICIPANT.with(std::cell::Cell::get) else {
            return;
        };
        let mut g = ctl_lock();
        let Some(c) = g.as_mut() else { return };
        if c.released {
            return;
        }
        c.steps += 1;
        if c.steps >= c.step_limit {
            c.budget_exhausted = true;
            c.released = true;
            CV.notify_all();
            return;
        }
        c.active = None;
        schedule_next(c);
        if g.as_ref().and_then(|c| c.active) == Some(me) {
            return;
        }
        CV.notify_all();
        wait_until_scheduled(me, g);
    }

    /// Register the child of a participant spawn: runnable immediately,
    /// scheduled later. Returns the child's deterministic id.
    pub(super) fn register_child() -> usize {
        let mut g = ctl_lock();
        let Some(c) = g.as_mut() else {
            // Exploration torn down mid-spawn (released run): run free.
            return usize::MAX;
        };
        let id = c.states.len();
        c.states.push(TState::Runnable);
        CV.notify_all();
        id
    }

    /// Body wrapper for spawned participants: waits for its first
    /// schedule slot, runs `f`, and always deregisters — a panic in `f`
    /// releases the exploration so joiners and blocked threads unwind
    /// instead of deadlocking.
    pub(super) fn run_participant<F, T>(id: usize, f: F) -> T
    where
        F: FnOnce() -> T,
    {
        if id == usize::MAX {
            return f();
        }
        PARTICIPANT.with(|p| p.set(Some(id)));
        wait_until_scheduled(id, ctl_lock());
        let mut guard = FinishGuard {
            id,
            completed: false,
        };
        let out = f();
        guard.completed = true;
        drop(guard);
        out
    }

    struct FinishGuard {
        id: usize,
        completed: bool,
    }

    impl Drop for FinishGuard {
        fn drop(&mut self) {
            finish(self.id, !self.completed);
        }
    }

    fn finish(id: usize, panicked: bool) {
        let mut g = ctl_lock();
        if let Some(c) = g.as_mut() {
            if let Some(slot) = c.states.get_mut(id) {
                *slot = TState::Finished;
            }
            if panicked {
                // Unwinding tears through scopes that real-join siblings
                // still waiting for schedule slots; release them all.
                c.released = true;
            }
            for s in &mut c.states {
                if *s == TState::WaitingThread(id) {
                    *s = TState::Runnable;
                }
            }
            if c.active == Some(id) {
                c.active = None;
                schedule_next(c);
            }
            CV.notify_all();
        }
        drop(g);
        PARTICIPANT.with(|p| p.set(None));
    }

    /// Virtually block until `target` finishes (then continue as the
    /// active thread). Called by `JoinHandle::join` before the real join.
    pub(super) fn join_wait(target: usize) {
        let Some(me) = PARTICIPANT.with(std::cell::Cell::get) else {
            return;
        };
        let mut g = ctl_lock();
        loop {
            let Some(c) = g.as_mut() else { return };
            if c.released {
                return;
            }
            if c.states.get(target).copied() == Some(TState::Finished) {
                return;
            }
            if let Some(slot) = c.states.get_mut(me) {
                *slot = TState::WaitingThread(target);
            }
            if c.active == Some(me) {
                c.active = None;
                schedule_next(c);
            }
            CV.notify_all();
            loop {
                let Some(c) = g.as_ref() else { return };
                if c.released || c.active == Some(me) {
                    break;
                }
                g = cv_wait(g);
            }
        }
    }

    /// Virtually acquire mutex `mid`: yields, then blocks until no other
    /// participant holds it. Returns whether virtual ownership was taken
    /// (false for non-participants and released runs — the caller then
    /// relies on the real lock alone).
    pub(super) fn mutex_acquire(mid: usize) -> bool {
        let Some(me) = PARTICIPANT.with(std::cell::Cell::get) else {
            return false;
        };
        yield_point();
        let mut g = ctl_lock();
        loop {
            let Some(c) = g.as_mut() else { return false };
            if c.released {
                return false;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = c.held.entry(mid) {
                e.insert(me);
                return true;
            }
            if let Some(slot) = c.states.get_mut(me) {
                *slot = TState::WaitingMutex(mid);
            }
            if c.active == Some(me) {
                c.active = None;
                schedule_next(c);
            }
            CV.notify_all();
            loop {
                let Some(c) = g.as_ref() else { return false };
                if c.released || c.active == Some(me) {
                    break;
                }
                g = cv_wait(g);
            }
        }
    }

    /// Release virtual ownership of `mid` and wake its waiters; the
    /// release is itself a scheduling decision so "waiter preempts
    /// releaser" interleavings are explored too.
    pub(super) fn mutex_release(mid: usize) {
        if !participating() {
            return;
        }
        {
            let mut g = ctl_lock();
            if let Some(c) = g.as_mut() {
                c.held.remove(&mid);
                for s in &mut c.states {
                    if *s == TState::WaitingMutex(mid) {
                        *s = TState::Runnable;
                    }
                }
                CV.notify_all();
            }
        }
        yield_point();
    }

    /// Outcome of one controlled schedule.
    #[derive(Debug)]
    pub struct RunReport<T> {
        /// The scenario's return value, or the payload of its panic —
        /// invariant violations inside scenarios are `assert!` panics.
        pub result: std::thread::Result<T>,
        /// Yield points executed under this schedule.
        pub steps: usize,
        /// The schedule wedged every thread (a real liveness bug).
        pub deadlock: bool,
        /// The step budget ran out before the scenario finished.
        pub budget_exhausted: bool,
    }

    /// Run `scenario` once under a controlled schedule. `decide` is
    /// called at every scheduling decision with the sorted runnable
    /// thread ids and returns the index of the thread to run next; the
    /// sequence of choices fully determines the schedule, which is what
    /// makes DFS replay exploration possible. Explorations are globally
    /// serialized.
    pub fn run_schedule<T, F, D>(
        vpar: usize,
        fault: Option<InjectedFault>,
        step_limit: usize,
        decide: D,
        scenario: F,
    ) -> RunReport<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
        D: FnMut(&[usize]) -> usize + Send + 'static,
    {
        let _exclusive = match EXCLUSIVE.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        {
            let mut g = ctl_lock();
            *g = Some(Ctl {
                active: None,
                states: Vec::new(),
                held: HashMap::new(),
                decide: Some(Box::new(decide)),
                fault,
                fault_armed: fault.is_some(),
                vpar,
                steps: 0,
                step_limit,
                released: false,
                deadlock: false,
                budget_exhausted: false,
            });
        }
        let result = std::thread::scope(|s| {
            s.spawn(|| {
                let id = {
                    let mut g = ctl_lock();
                    match g.as_mut() {
                        Some(c) => {
                            let id = c.states.len();
                            c.states.push(TState::Runnable);
                            if c.active.is_none() {
                                schedule_next(c);
                            }
                            id
                        }
                        None => usize::MAX,
                    }
                };
                run_participant(id, scenario)
            })
            .join()
        });
        let mut g = ctl_lock();
        let (steps, deadlock, budget_exhausted) = match g.take() {
            Some(c) => (c.steps, c.deadlock, c.budget_exhausted),
            None => (0, false, false),
        };
        RunReport {
            result,
            steps,
            deadlock,
            budget_exhausted,
        }
    }
}
