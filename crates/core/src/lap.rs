//! Linear Assignment Problem solver: the Kuhn–Munkres ("Hungarian")
//! algorithm in its O(n³) shortest-augmenting-path form.
//!
//! The contention-mitigation step (Sec. V-B, Eq. 9–10) relocates
//! low-contention requests into slots between high-contention requests at
//! minimum total displacement cost — a classic LAP. Infeasible pairings
//! carry cost `f64::INFINITY` and are never selected; if no feasible
//! perfect assignment exists the solver reports it.

/// A solved assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `row_to_col[r]` = column assigned to row `r`.
    pub row_to_col: Vec<usize>,
    /// Total cost of the assignment.
    pub total_cost: f64,
}

/// Work counters from one [`solve_with_stats`] call, independent of
/// whether the instance turned out feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LapStats {
    /// Number of rows in the cost matrix.
    pub rows: usize,
    /// Number of columns in the cost matrix.
    pub cols: usize,
    /// Shortest-augmenting-path relaxation steps performed (each step
    /// scans all unvisited columns, so work ≈ `augment_steps × cols`).
    pub augment_steps: usize,
}

/// Solves the rectangular LAP `min Σ c[r][assign(r)]` with every row
/// assigned to a distinct column. Requires `rows ≤ cols`; entries may be
/// `f64::INFINITY` to forbid a pairing.
///
/// Returns `None` if the matrix is empty, ragged, has `rows > cols`, or
/// no feasible (finite-cost) perfect assignment exists.
///
/// ```
/// use hetero2pipe::lap::solve;
///
/// let cost = vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]];
/// let a = solve(&cost).expect("feasible");
/// assert_eq!(a.total_cost, 5.0);
/// assert_eq!(a.row_to_col, vec![1, 0, 2]);
/// ```
pub fn solve(cost: &[Vec<f64>]) -> Option<Assignment> {
    solve_with_stats(cost).0
}

/// Like [`solve`], but also reports how much work the solver did — the
/// stats are meaningful even when the instance is rejected or
/// infeasible (they cover the steps taken before bailing out).
pub fn solve_with_stats(cost: &[Vec<f64>]) -> (Option<Assignment>, LapStats) {
    let n = cost.len();
    let mut stats = LapStats {
        rows: n,
        cols: cost.first().map_or(0, Vec::len),
        augment_steps: 0,
    };
    if n == 0 {
        return (None, stats);
    }
    let m = cost[0].len();
    if m < n || cost.iter().any(|row| row.len() != m) {
        return (None, stats);
    }
    // Reject NaN and any cost below the rounding tolerance. `-∞` must be
    // caught here too: it satisfies `c < -1e-12` but is *not* finite, so
    // any "negative and finite" phrasing would wave it through into the
    // potential updates below, where it poisons every delta.
    if cost.iter().flatten().any(|&c| c.is_nan() || c < -1e-12) {
        return (None, stats);
    }

    // Shortest-augmenting-path Hungarian with potentials, 1-indexed
    // internal arrays per the classic formulation.
    const INF: f64 = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    // way[j] = previous column on the augmenting path to column j.
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j (0 = none)

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        let mut way = vec![0usize; m + 1];
        loop {
            stats.augment_steps += 1;
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            if !delta.is_finite() {
                // No augmenting path with finite cost: infeasible.
                return (None, stats);
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            row_to_col[p[j] - 1] = j - 1;
        }
    }
    if row_to_col.contains(&usize::MAX) {
        return (None, stats);
    }
    // Every *individual* assigned cell must be finite, not just the sum.
    // A sum-only check can be fooled by cancelling infinities, and its
    // failure mode is exactly the one mitigation must never hit: a real
    // request silently assigned to a forbidden (padded) slot.
    let mut total_cost = 0.0f64;
    for (r, &c) in row_to_col.iter().enumerate() {
        if !cost[r][c].is_finite() {
            return (None, stats);
        }
        total_cost += cost[r][c];
    }
    if !total_cost.is_finite() {
        return (None, stats);
    }
    (
        Some(Assignment {
            row_to_col,
            total_cost,
        }),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal assignment for cross-checking.
    fn brute_force(cost: &[Vec<f64>]) -> Option<f64> {
        let n = cost.len();
        let m = cost[0].len();
        let mut cols: Vec<usize> = (0..m).collect();
        let mut best: Option<f64> = None;
        fn permute(
            cols: &mut Vec<usize>,
            k: usize,
            n: usize,
            cost: &[Vec<f64>],
            best: &mut Option<f64>,
        ) {
            if k == n {
                let total: f64 = (0..n).map(|r| cost[r][cols[r]]).sum();
                if total.is_finite() && best.is_none_or(|b| total < b) {
                    *best = Some(total);
                }
                return;
            }
            for i in k..cols.len() {
                cols.swap(k, i);
                permute(cols, k + 1, n, cost, best);
                cols.swap(k, i);
            }
        }
        permute(&mut cols, 0, n, cost, &mut best);
        best
    }

    #[test]
    fn solves_textbook_square_case() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = solve(&cost).unwrap();
        assert_eq!(a.total_cost, 5.0);
        assert_eq!(a.row_to_col, vec![1, 0, 2]);
    }

    #[test]
    fn rectangular_assignment_picks_best_columns() {
        let cost = vec![vec![10.0, 1.0, 10.0, 10.0], vec![1.0, 10.0, 10.0, 10.0]];
        let a = solve(&cost).unwrap();
        assert_eq!(a.total_cost, 2.0);
        assert_eq!(a.row_to_col, vec![1, 0]);
    }

    #[test]
    fn infinity_blocks_pairings() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, 1.0], vec![inf, 2.0]];
        // Both rows need column 1: infeasible.
        assert!(solve(&cost).is_none());
        let cost2 = vec![vec![inf, 1.0], vec![2.0, inf]];
        let a = solve(&cost2).unwrap();
        assert_eq!(a.row_to_col, vec![1, 0]);
        assert_eq!(a.total_cost, 3.0);
    }

    #[test]
    fn matches_brute_force_on_dense_matrices() {
        // Deterministic pseudo-random matrices.
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 1000) as f64 / 10.0
        };
        for n in 1..=5 {
            for m in n..=6 {
                let cost: Vec<Vec<f64>> =
                    (0..n).map(|_| (0..m).map(|_| next()).collect()).collect();
                let a = solve(&cost).expect("feasible dense matrix");
                let bf = brute_force(&cost).unwrap();
                assert!(
                    (a.total_cost - bf).abs() < 1e-9,
                    "n={n} m={m}: got {} expected {bf}",
                    a.total_cost
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_with_sparse_infinities() {
        let inf = f64::INFINITY;
        let mut seed = 999u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..50 {
            let n = 3 + (next() % 3) as usize;
            let m = n + (next() % 3) as usize;
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    (0..m)
                        .map(|_| {
                            if next() % 4 == 0 {
                                inf
                            } else {
                                (next() % 100) as f64
                            }
                        })
                        .collect()
                })
                .collect();
            let ours = solve(&cost).map(|a| a.total_cost);
            let brute = brute_force(&cost);
            match (ours, brute) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{cost:?}"),
                (None, None) => {}
                other => panic!("feasibility mismatch {other:?} for {cost:?}"),
            }
        }
    }

    #[test]
    fn empty_and_ragged_inputs_are_rejected() {
        assert!(solve(&[]).is_none());
        assert!(solve(&[vec![1.0, 2.0], vec![1.0]]).is_none());
        // More rows than columns.
        assert!(solve(&[vec![1.0], vec![2.0]]).is_none());
    }

    /// Regression: the entry validation used to phrase "negative" as
    /// `c < 0.0 && c.is_finite() && c < -1e-12`, which `-∞` slips past
    /// (it is negative but not finite). A `-∞` entry then acts as an
    /// irresistible zero-cost pairing and corrupts the potentials.
    #[test]
    fn negative_infinity_entries_are_rejected() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, f64::NEG_INFINITY, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        assert!(solve(&cost).is_none());
        // A whole row of -∞ must not read as "maximally attractive".
        assert!(solve(&[vec![f64::NEG_INFINITY; 2], vec![1.0, 2.0]]).is_none());
    }

    #[test]
    fn nan_and_negative_entries_are_rejected() {
        assert!(solve(&[vec![f64::NAN, 1.0], vec![1.0, 2.0]]).is_none());
        assert!(solve(&[vec![-1.0, 1.0], vec![1.0, 2.0]]).is_none());
        // Tiny negative rounding noise is tolerated.
        assert!(solve(&[vec![-1e-13, 1.0], vec![1.0, 2.0]]).is_some());
    }

    /// Mitigation pads its LAP matrix with forbidden (`+∞`) cells when
    /// there are more candidate positions than movable requests. The
    /// solver must never hand a real row one of those cells — each
    /// assigned cell is checked for finiteness individually, so a padded
    /// slot can never be silently matched to a real request.
    #[test]
    fn padded_slots_are_never_assigned_to_real_rows() {
        let inf = f64::INFINITY;
        // Square padded matrix: row 2 is a padding row (all finite zeros
        // would be typical), but here every feasible column for row 0 is
        // forbidden — the whole instance must be rejected rather than
        // matching row 0 to a forbidden column.
        let cost = vec![
            vec![inf, inf, inf],
            vec![1.0, 2.0, 3.0],
            vec![0.0, 0.0, 0.0],
        ];
        assert!(solve(&cost).is_none());
        // Feasible padded instance: assignments exist and avoid ∞ cells.
        let cost = vec![
            vec![inf, 5.0, inf],
            vec![1.0, 2.0, 3.0],
            vec![0.0, 0.0, 0.0],
        ];
        let a = solve(&cost).expect("feasible around the padding");
        for (r, &c) in a.row_to_col.iter().enumerate() {
            assert!(cost[r][c].is_finite(), "row {r} got forbidden column {c}");
        }
        assert_eq!(a.row_to_col[0], 1);
    }

    #[test]
    fn stats_count_augmenting_work() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (a, stats) = solve_with_stats(&cost);
        assert_eq!(a, solve(&cost));
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.cols, 3);
        // Every row augmentation takes at least one relaxation step.
        assert!(stats.augment_steps >= 3, "{stats:?}");
        // Rejected inputs still report their shape, with zero steps.
        let (none, stats) = solve_with_stats(&[vec![f64::NAN]]);
        assert!(none.is_none());
        assert_eq!((stats.rows, stats.cols, stats.augment_steps), (1, 1, 0));
    }

    #[test]
    fn assignment_columns_are_distinct() {
        let cost = vec![
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ];
        let a = solve(&cost).unwrap();
        let mut cols = a.row_to_col.clone();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3);
    }
}
