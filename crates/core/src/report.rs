//! Human-readable rendering of plans and execution reports.
//!
//! The CLI, examples and experiment binaries all need the same summary
//! views; this module centralizes them as `Display` wrappers so the
//! formatting is tested once.
//!
//! ```
//! use hetero2pipe::planner::Planner;
//! use hetero2pipe::report::PlanSummary;
//! use h2p_models::zoo::ModelId;
//! use h2p_simulator::SocSpec;
//!
//! # fn main() -> Result<(), hetero2pipe::error::PlanError> {
//! let soc = SocSpec::kirin_990();
//! let planner = Planner::new(&soc)?;
//! let planned = planner.plan_models(&[ModelId::ResNet50, ModelId::SqueezeNet])?;
//! let text = PlanSummary::new(&planned.plan, &soc).to_string();
//! assert!(text.contains("ResNet50"));
//! # Ok(())
//! # }
//! ```

use std::fmt;

use h2p_simulator::soc::SocSpec;

use crate::executor::ExecutionReport;
use crate::plan::PipelinePlan;

/// Displayable summary of a pipeline plan: one line per request with its
/// stage layout, plus plan-level estimates.
#[derive(Debug, Clone)]
pub struct PlanSummary<'a> {
    plan: &'a PipelinePlan,
    soc: &'a SocSpec,
}

impl<'a> PlanSummary<'a> {
    /// Wraps a plan for display against its SoC.
    pub fn new(plan: &'a PipelinePlan, soc: &'a SocSpec) -> Self {
        PlanSummary { plan, soc }
    }
}

impl fmt::Display for PlanSummary<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline depth {} | est. makespan {:.1} ms | planned bubbles {:.1} ms | peak footprint {:.0} MB",
            self.plan.depth(),
            self.plan.estimated_makespan_ms(),
            self.plan.total_bubble_ms(),
            self.plan.peak_footprint_bytes() as f64 / (1024.0 * 1024.0),
        )?;
        for (pos, req) in self.plan.requests.iter().enumerate() {
            write!(f, "  #{pos:<3}{:<14}{:>4?}", req.model, req.class)?;
            for (slot, stage) in req.stages.iter().enumerate() {
                if let Some(s) = stage {
                    write!(
                        f,
                        "  {}:{}={:.1}ms",
                        self.soc.processor(self.plan.procs[slot]).name,
                        s.range,
                        s.total_ms()
                    )?;
                    if !s.runs.is_empty() {
                        write!(f, "({} fallback runs)", s.runs.len())?;
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Displayable summary of an execution report.
#[derive(Debug, Clone)]
pub struct ReportSummary<'a> {
    report: &'a ExecutionReport,
}

impl<'a> ReportSummary<'a> {
    /// Wraps an execution report for display.
    pub fn new(report: &'a ExecutionReport) -> Self {
        ReportSummary { report }
    }
}

impl fmt::Display for ReportSummary<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "latency {:.1} ms | throughput {:.2} inf/s | bubbles {:.1} ms | mean co-exec slowdown {:.1}%",
            self.report.makespan_ms,
            self.report.throughput_per_sec,
            self.report.measured_bubble_ms,
            self.report.mean_slowdown * 100.0,
        )?;
        for (i, &lat) in self.report.request_latency_ms.iter().enumerate() {
            writeln!(f, "  request {i}: done at {lat:.1} ms")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use h2p_models::zoo::ModelId;

    #[test]
    fn plan_summary_lists_every_request_and_stage() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let planned = planner
            .plan_models(&[ModelId::Bert, ModelId::MobileNetV2])
            .unwrap();
        let text = PlanSummary::new(&planned.plan, &soc).to_string();
        assert!(text.contains("BERT"));
        assert!(text.contains("MobileNetV2"));
        assert!(text.contains("est. makespan"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn report_summary_contains_headline_metrics() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let planned = planner.plan_models(&[ModelId::ResNet50]).unwrap();
        let report = planned.execute(&soc).unwrap();
        let text = ReportSummary::new(&report).to_string();
        assert!(text.contains("latency"));
        assert!(text.contains("request 0"));
    }
}
