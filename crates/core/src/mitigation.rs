//! Contention mitigation by request re-ordering (Sec. V-B, Algorithm 2).
//!
//! High-contention (ℍ) requests that sit within one *contention window*
//! (Def. 4: `K` consecutive pipeline positions) overlap temporally in the
//! staggered execution, compounding memory-bus interference. The
//! mitigation pass re-orders the incoming sequence so that any two ℍ
//! requests are at least `K` positions apart, by relocating low-contention
//! (𝕃) requests between them (Property 3: a pair at distance `d < K`
//! needs `K − d` relocated 𝕃 requests).
//!
//! Which 𝕃 requests move is decided by a Linear Assignment Problem
//! (Eq. 9–10): the cost of moving 𝕃 request `i` into slot `j` is the
//! displacement distance `|i − j|`, and moves that would *create* a new
//! ℍ conflict elsewhere (pulling the last spacer out of an exactly-`K`
//! gap) cost ∞. The LAP is solved with the Kuhn–Munkres algorithm from
//! [`crate::lap`].

use h2p_contention::ContentionClass;
use h2p_telemetry::MetricsRegistry;

use crate::lap;

/// Result of a mitigation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationOutcome {
    /// `order[p]` = original index of the request now at position `p`.
    pub order: Vec<usize>,
    /// Number of 𝕃 relocations performed.
    pub moves: usize,
    /// Total displacement cost (sum of per-move distances).
    pub displacement_cost: f64,
    /// Whether every ℍ pair ends at least `window` apart. `false` when
    /// the sequence ran out of relocatable 𝕃 requests.
    pub resolved: bool,
}

/// Returns positions of ℍ entries in `classes` ordered ascending.
fn high_positions(classes: &[ContentionClass]) -> Vec<usize> {
    classes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_high())
        .map(|(i, _)| i)
        .collect()
}

/// The first adjacent ℍ pair closer than `window`, if any.
fn first_conflict(classes: &[ContentionClass], window: usize) -> Option<(usize, usize)> {
    let highs = high_positions(classes);
    highs
        .windows(2)
        .find(|w| w[1] - w[0] < window)
        .map(|w| (w[0], w[1]))
}

/// Whether any two ℍ entries are closer than `window`.
pub fn has_conflict(classes: &[ContentionClass], window: usize) -> bool {
    first_conflict(classes, window).is_some()
}

/// Number of ℍ-overlap windows in the sequence: sliding windows of size
/// `window` containing two or more ℍ requests. A direct measure of the
/// temporal-overlap exposure the re-ordering minimizes.
pub fn overlap_windows(classes: &[ContentionClass], window: usize) -> usize {
    if classes.len() < window {
        return if high_positions(classes).len() >= 2 {
            1
        } else {
            0
        };
    }
    (0..=classes.len() - window)
        .filter(|&start| {
            classes[start..start + window]
                .iter()
                .filter(|c| c.is_high())
                .count()
                >= 2
        })
        .count()
}

/// Re-orders a request sequence to spread ℍ requests at least `window`
/// apart with minimum total 𝕃 displacement.
///
/// `classes` gives the ℍ/𝕃 class of each request in submission order;
/// `window` is the pipeline depth `K`. The returned
/// [`MitigationOutcome::order`] is a permutation of `0..classes.len()`.
///
/// ```
/// use h2p_contention::ContentionClass::{High as H, Low as L};
/// use hetero2pipe::mitigation::{has_conflict, mitigate};
///
/// let classes = [H, H, L, L, L];
/// let out = mitigate(&classes, 3);
/// assert!(out.resolved);
/// let spread: Vec<_> = out.order.iter().map(|&i| classes[i]).collect();
/// assert!(!has_conflict(&spread, 3));
/// ```
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn mitigate(classes: &[ContentionClass], window: usize) -> MitigationOutcome {
    mitigate_instrumented(classes, window, None)
}

/// [`mitigate`] with optional telemetry: when `metrics` is given,
/// records `mitigation.passes` / `conflicts` / `moves` / `unresolved`
/// counters, the cumulative `mitigation.displacement_cost` gauge, and
/// the underlying `lap.solves` / `lap.augment_steps` work counters.
/// The returned outcome is identical to [`mitigate`]'s — telemetry
/// observes the pass, it never alters it.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn mitigate_instrumented(
    classes: &[ContentionClass],
    window: usize,
    metrics: Option<&MetricsRegistry>,
) -> MitigationOutcome {
    assert!(window > 0, "contention window must be positive");
    if let Some(m) = metrics {
        m.inc("mitigation.passes");
    }
    let record = |out: &MitigationOutcome| {
        if let Some(m) = metrics {
            m.add("mitigation.moves", out.moves as u64);
            m.gauge_add("mitigation.displacement_cost", out.displacement_cost);
            if !out.resolved {
                m.inc("mitigation.unresolved");
            }
        }
    };
    let n = classes.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut cls: Vec<ContentionClass> = classes.to_vec();
    let mut moves = 0usize;
    let mut displacement_cost = 0.0f64;

    // Each iteration resolves (part of) the left-most conflict; bounded to
    // guarantee termination even on adversarial inputs.
    let max_iters = 4 * n.max(1);
    for _ in 0..max_iters {
        let Some((u, v)) = first_conflict(&cls, window) else {
            let out = MitigationOutcome {
                order,
                moves,
                displacement_cost,
                resolved: true,
            };
            record(&out);
            return out;
        };
        if let Some(m) = metrics {
            m.inc("mitigation.conflicts");
        }
        let need = window - (v - u); // Property 3: K − d relocations.

        // Candidate 𝕃 requests (Eq. 10): outside (u, v), and not the
        // last spacer of an exactly-`window` ℍ gap (removing it would
        // recreate a conflict there).
        let highs = high_positions(&cls);
        let mut candidates: Vec<usize> = Vec::new();
        'cand: for (p, c) in cls.iter().enumerate() {
            if c.is_high() || (p > u && p < v) {
                continue;
            }
            for w in highs.windows(2) {
                // Gap (w[0], w[1]) is exactly at the threshold and p is
                // one of its spacers: pulling p out would break it.
                if w[1] - w[0] == window && p > w[0] && p < w[1] {
                    continue 'cand;
                }
            }
            candidates.push(p);
        }
        if candidates.len() < need {
            let out = MitigationOutcome {
                order,
                moves,
                displacement_cost,
                resolved: false,
            };
            record(&out);
            return out;
        }

        // LAP: rows = insertion slots (right after u), cols = candidates,
        // cost = displacement distance.
        let slots: Vec<usize> = (0..need).map(|s| u + 1 + s).collect();
        let cost: Vec<Vec<f64>> = slots
            .iter()
            .map(|&slot| {
                candidates
                    .iter()
                    .map(|&p| (p as f64 - slot as f64).abs())
                    .collect()
            })
            .collect();
        let (solved, stats) = lap::solve_with_stats(&cost);
        if let Some(m) = metrics {
            m.inc("lap.solves");
            m.add("lap.augment_steps", stats.augment_steps as u64);
        }
        let Some(assignment) = solved else {
            let out = MitigationOutcome {
                order,
                moves,
                displacement_cost,
                resolved: false,
            };
            record(&out);
            return out;
        };

        // Apply the moves: remove the chosen 𝕃 requests, then insert
        // them right after u (in slot order). Removals are done from the
        // highest position down so earlier indices stay valid.
        let mut chosen: Vec<(usize, usize)> = assignment
            .row_to_col
            .iter()
            .enumerate()
            .map(|(row, &col)| (slots[row], candidates[col]))
            .collect();
        displacement_cost += assignment.total_cost;
        moves += chosen.len();
        // Extract the moved elements.
        let mut extracted: Vec<(usize, (usize, ContentionClass))> = Vec::new();
        chosen.sort_by_key(|&(_, from)| std::cmp::Reverse(from));
        for &(slot, from) in &chosen {
            let item = (order.remove(from), cls.remove(from));
            extracted.push((slot, item));
        }
        // Insert after u's *current* position (u may have shifted left if
        // extracted elements were before it).
        let shift = chosen.iter().filter(|&&(_, from)| from < u).count();
        let insert_at = u + 1 - shift;
        extracted.sort_by_key(|&(slot, _)| slot);
        for (offset, (_, (idx, c))) in extracted.into_iter().enumerate() {
            let at = (insert_at + offset).min(order.len());
            order.insert(at, idx);
            cls.insert(at, c);
        }
    }

    let resolved = !has_conflict(&cls, window);
    let out = MitigationOutcome {
        order,
        moves,
        displacement_cost,
        resolved,
    };
    record(&out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ContentionClass::{High as H, Low as L};

    fn apply(order: &[usize], classes: &[ContentionClass]) -> Vec<ContentionClass> {
        order.iter().map(|&i| classes[i]).collect()
    }

    #[test]
    fn already_clean_sequence_is_untouched() {
        let cls = [H, L, L, H, L, L, H];
        let out = mitigate(&cls, 3);
        assert!(out.resolved);
        assert_eq!(out.moves, 0);
        assert_eq!(out.order, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn adjacent_highs_get_separated() {
        let cls = [H, H, L, L, L];
        let out = mitigate(&cls, 3);
        assert!(out.resolved, "enough L to fix: {out:?}");
        let after = apply(&out.order, &cls);
        assert!(!has_conflict(&after, 3), "after: {after:?}");
        assert!(out.moves >= 2, "HH at distance 1 needs K-d = 2 moves");
    }

    #[test]
    fn order_is_a_permutation() {
        let cls = [H, H, H, L, L, L, L, L, L];
        let out = mitigate(&cls, 3);
        let mut sorted = out.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn insufficient_lows_reports_unresolved() {
        let cls = [H, H, H];
        let out = mitigate(&cls, 2);
        assert!(!out.resolved);
        // Still a permutation.
        let mut sorted = out.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn fixing_one_gap_never_breaks_another() {
        // Two H's properly spaced plus a trailing HH conflict; the spacers
        // of the good gap must not be stolen if it would break it.
        let cls = [H, L, L, H, H, L, L, L];
        let out = mitigate(&cls, 3);
        assert!(out.resolved, "{out:?}");
        let after = apply(&out.order, &cls);
        assert!(!has_conflict(&after, 3), "after: {after:?}");
    }

    #[test]
    fn window_one_never_conflicts() {
        let cls = [H, H, H, H];
        assert!(!has_conflict(&cls, 1));
        let out = mitigate(&cls, 1);
        assert!(out.resolved);
        assert_eq!(out.moves, 0);
    }

    #[test]
    fn overlap_windows_counts_exposure() {
        // HHL with window 2: one window [H,H] with 2 highs.
        assert_eq!(overlap_windows(&[H, H, L], 2), 1);
        assert_eq!(overlap_windows(&[H, L, H], 2), 0);
        assert_eq!(overlap_windows(&[H, L, H], 3), 1);
        assert_eq!(overlap_windows(&[L, L, L], 2), 0);
        // Shorter than window: counted once if ≥2 highs.
        assert_eq!(overlap_windows(&[H, H], 4), 1);
    }

    #[test]
    fn mitigation_reduces_overlap_exposure() {
        let cls = [H, H, L, H, L, L, H, L, L, L];
        let before = overlap_windows(&cls, 3);
        let out = mitigate(&cls, 3);
        let after_seq = apply(&out.order, &cls);
        let after = overlap_windows(&after_seq, 3);
        assert!(after < before, "exposure {before} -> {after}");
        assert_eq!(after, 0, "fully resolved: {after_seq:?}");
    }

    #[test]
    fn displacement_cost_is_positive_when_moves_happen() {
        let cls = [H, H, L, L, L];
        let out = mitigate(&cls, 3);
        assert!(out.moves > 0);
        assert!(out.displacement_cost > 0.0);
    }

    #[test]
    fn all_low_sequence_is_a_no_op() {
        let cls = [L; 8];
        let out = mitigate(&cls, 4);
        assert!(out.resolved);
        assert_eq!(out.moves, 0);
        assert_eq!(out.displacement_cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        mitigate(&[L], 0);
    }

    #[test]
    fn instrumented_pass_matches_plain_and_counts_work() {
        let cls = [H, H, L, H, L, L, H, L, L, L];
        let metrics = MetricsRegistry::new();
        let instrumented = mitigate_instrumented(&cls, 3, Some(&metrics));
        assert_eq!(
            instrumented,
            mitigate(&cls, 3),
            "telemetry must not perturb"
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("mitigation.passes"), Some(1));
        assert!(snap.counter("mitigation.conflicts").unwrap_or(0) >= 1);
        assert_eq!(
            snap.counter("mitigation.moves"),
            Some(instrumented.moves as u64)
        );
        assert!(snap.counter("lap.solves").unwrap_or(0) >= 1);
        assert!(snap.counter("lap.augment_steps").unwrap_or(0) >= 1);
        assert!(snap.counter("mitigation.unresolved").is_none());
    }

    #[test]
    fn instrumented_unresolved_pass_is_counted() {
        let metrics = MetricsRegistry::new();
        let out = mitigate_instrumented(&[H, H, H], 2, Some(&metrics));
        assert!(!out.resolved);
        assert_eq!(metrics.snapshot().counter("mitigation.unresolved"), Some(1));
    }

    #[test]
    fn long_random_sequences_terminate_and_permute() {
        let mut seed = 77u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed >> 33
        };
        for _ in 0..40 {
            let n = 4 + (next() % 20) as usize;
            let window = 2 + (next() % 3) as usize;
            let cls: Vec<ContentionClass> = (0..n)
                .map(|_| if next() % 3 == 0 { H } else { L })
                .collect();
            let out = mitigate(&cls, window);
            let mut sorted = out.order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "cls={cls:?}");
            if out.resolved {
                let after = apply(&out.order, &cls);
                assert!(!has_conflict(&after, window), "cls={cls:?} after={after:?}");
            }
        }
    }
}
