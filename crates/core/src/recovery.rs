//! Fault recovery: re-planning around processor dropout, retrying
//! transient failures with bounded backoff, and typed degraded outcomes
//! when a request cannot be salvaged.
//!
//! The runner executes a request set in *rounds*. Each round plans the
//! still-incomplete requests on the surviving processor set, lowers the
//! plan, and runs it under a [`FaultInjector`] scripted from the
//! remaining [`FaultSpec`]s (time-shifted so the script refers to the
//! global timeline). A round ends when the engine halts — either
//! everything completed or a fault interrupted the run — and the runner
//! reacts:
//!
//! * **Processor dropout** — the processor is excluded from every later
//!   plan; orphaned and unstarted work is re-planned over surviving
//!   slots by re-running the per-request min-max partition on every
//!   ordered subset of the surviving pipeline slots (the same NPU
//!   operator-fallback arrays the planner uses), then re-aligned with
//!   work stealing.
//! * **Transient task failure** — the request is retried with bounded
//!   exponential backoff (the delay becomes the request's release time
//!   in the next round). Exceeding [`RecoveryPolicy::max_retries`]
//!   yields [`PlanError::RetriesExhausted`].
//! * **Cost misprediction** — lowered task durations are scaled, so
//!   execution deviates from the plan while the planner keeps using its
//!   (now wrong) estimates.
//!
//! Per-request deadlines bound the accumulated wall time; exceeding one
//! yields [`PlanError::DeadlineExceeded`]. The recovery state machine
//! never panics and never hangs: every round strictly advances either
//! the completed set, the retry counters, or the round counter, all of
//! which are bounded.
//!
//! Every round is gated on the faulted audit
//! ([`h2p_simulator::audit::audit_faulted`]) — subset contract checks
//! plus exact event replay — and the plan lint with availability mask
//! (H2P009: no task may target a down processor).

use crate::sync::Arc;
use std::collections::BTreeMap;

use h2p_models::graph::ModelGraph;
use h2p_simulator::audit;
use h2p_simulator::engine::{EngineEvent, Simulation, TaskSpec};
use h2p_simulator::faults::{FaultInjector, FaultKind, FaultSpec};
use h2p_simulator::processor::ProcessorId;
use h2p_simulator::soc::SocSpec;
use h2p_telemetry::lifecycle::{LifecycleStage, RequestId, TraceId};
use h2p_telemetry::span;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::PlanError;
use crate::estimate::RequestContext;
use crate::executor::lower_with_arrivals;
use crate::plan::{PipelinePlan, RequestPlan};
use crate::planner::Planner;
use crate::worksteal;

/// Retry, backoff, deadline, and round budgets for the recovery runner.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Maximum retries per request after transient failures.
    pub max_retries: usize,
    /// Base backoff delay in ms; attempt `n` waits `base * 2^(n-1)`.
    pub backoff_base_ms: f64,
    /// Ceiling on any single backoff delay, in ms.
    pub backoff_cap_ms: f64,
    /// Per-request deadline on accumulated wall time across rounds, in
    /// ms. `None` disables deadline enforcement.
    pub deadline_ms: Option<f64>,
    /// Hard cap on recovery rounds (a liveness backstop; normal
    /// scenarios converge in a handful).
    pub max_rounds: usize,
}

impl RecoveryPolicy {
    /// Backoff delay before retry attempt `attempt` (1-based):
    /// `backoff_base_ms * 2^(attempt-1)`, capped at `backoff_cap_ms`.
    /// Attempt 0 (no retry yet) waits nothing. This is the single
    /// backoff schedule shared by the recovery runner and the serving
    /// front-end's dispatch retry loop.
    pub fn backoff_ms(&self, attempt: usize) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        let exp = (attempt - 1).min(32) as u32;
        (self.backoff_base_ms * f64::from(2u32.pow(exp.min(20)))).min(self.backoff_cap_ms)
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_base_ms: 1.0,
            backoff_cap_ms: 32.0,
            deadline_ms: None,
            max_rounds: 16,
        }
    }
}

/// Terminal state of a recovery run.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome {
    /// Every request completed and every round's trace audited clean.
    Recovered,
    /// Recovery gave up with a typed reason; completed requests up to
    /// that point are recorded in [`RecoveryReport::completed`].
    Degraded(PlanError),
}

/// Event log and counters of one recovery round.
#[derive(Debug, Clone)]
pub struct RoundLog {
    /// Global-timeline offset of this round's simulation time zero.
    pub offset_ms: f64,
    /// The round's engine event log (round-local times).
    pub events: Vec<EngineEvent>,
    /// Task labels in submission order (task id → label), so consumers
    /// can replay `events` and map spans back to requests via
    /// `engine::request_of_label` without re-lowering the round's plan.
    pub labels: Vec<String>,
    /// Requests that completed in this round.
    pub completed: usize,
    /// Faults the engine observed in this round.
    pub faults: usize,
    /// Whether the round's trace passed the faulted audit.
    pub audit_clean: bool,
}

/// Everything a recovery run produced: terminal outcome, per-round
/// logs, and aggregate counters.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Terminal state.
    pub outcome: RecoveryOutcome,
    /// Per-round logs, in execution order.
    pub rounds: Vec<RoundLog>,
    /// Number of re-planning passes on a reduced or retried set.
    pub replans: usize,
    /// Number of transient-failure retries granted.
    pub retries: usize,
    /// Total faults observed across rounds.
    pub faults: usize,
    /// Accumulated wall time across rounds, in ms.
    pub elapsed_ms: f64,
    /// Per-request completion, by original submission index.
    pub completed: Vec<bool>,
    /// Final processor availability (`true` = dropped out).
    pub down: Vec<bool>,
}

impl RecoveryReport {
    /// Whether the run ended fully recovered.
    pub fn is_recovered(&self) -> bool {
        matches!(self.outcome, RecoveryOutcome::Recovered)
    }

    /// Whether every round's trace passed the faulted audit.
    pub fn all_rounds_audit_clean(&self) -> bool {
        self.rounds.iter().all(|r| r.audit_clean)
    }
}

/// Scripted fault state carried across rounds, on the global timeline.
struct FaultScript {
    /// Earliest scripted dropout instant per processor.
    down_at: Vec<Option<f64>>,
    /// `(processor, from, until, factor)` throttle intervals.
    throttles: Vec<(usize, f64, f64, f64)>,
    /// Remaining scripted transient failures per request.
    transient: BTreeMap<usize, u32>,
    /// Multiplicative error on every lowered solo duration.
    mispredict: f64,
}

impl FaultScript {
    fn compile(specs: &[FaultSpec], n_proc: usize, n_req: usize) -> Result<Self, PlanError> {
        let mut script = FaultScript {
            down_at: vec![None; n_proc],
            throttles: Vec::new(),
            transient: BTreeMap::new(),
            mispredict: 1.0,
        };
        let check_proc = |p: ProcessorId| -> Result<usize, PlanError> {
            if p.index() >= n_proc {
                return Err(PlanError::Simulation(
                    h2p_simulator::SimError::UnknownProcessor {
                        index: p.index(),
                        available: n_proc,
                    },
                ));
            }
            Ok(p.index())
        };
        for spec in specs {
            match spec {
                FaultSpec::ProcessorDropout { processor, at_ms } => {
                    let p = check_proc(*processor)?;
                    let at = at_ms.max(0.0);
                    script.down_at[p] = Some(script.down_at[p].map_or(at, |cur: f64| cur.min(at)));
                }
                FaultSpec::ThermalThrottle {
                    processor,
                    from_ms,
                    until_ms,
                    factor,
                } => {
                    let p = check_proc(*processor)?;
                    script.throttles.push((p, *from_ms, *until_ms, *factor));
                }
                FaultSpec::TransientFailure { request, failures } => {
                    if *request < n_req {
                        *script.transient.entry(*request).or_insert(0) += *failures;
                    }
                }
                FaultSpec::CostMisprediction { scale } => {
                    if scale.is_finite() && *scale > 0.0 {
                        script.mispredict *= scale;
                    }
                }
            }
        }
        Ok(script)
    }
}

/// Re-plans `pending` requests over the surviving pipeline slots: for
/// each request, the min-max partition is evaluated on every non-empty
/// ordered subset of surviving slots (sharing the planner's cached cost
/// tables and NPU fallback arrays) and the best subset wins; the
/// resulting plan is then re-aligned with work stealing. Returns the
/// plan plus per-request contexts indexed by original request index.
///
/// Public so the perf-trajectory bench can measure the recovery
/// re-planning latency in isolation (without a simulated round).
///
/// # Errors
///
/// Returns [`PlanError::NoSurvivingProcessors`] when `down` masks every
/// pipeline slot, and [`PlanError::NoFeasiblePipeline`] when no subset
/// of survivors can host a request.
pub fn replan_on_survivors(
    planner: &Planner,
    graphs: &[Arc<ModelGraph>],
    pending: &[usize],
    down: &[bool],
) -> Result<(PipelinePlan, Vec<RequestContext>), PlanError> {
    let procs = planner.pipeline_procs();
    let surviving: Vec<usize> = (0..procs.len())
        .filter(|&s| !down.get(procs[s].index()).copied().unwrap_or(false))
        .collect();
    if surviving.is_empty() {
        return Err(PlanError::NoSurvivingProcessors);
    }
    let estimator = planner.estimator();
    let cost = estimator.cost();
    let mut ctxs: Vec<RequestContext> = Vec::with_capacity(graphs.len());
    let mut requests: Vec<RequestPlan> = Vec::with_capacity(pending.len());
    for (r, graph) in graphs.iter().enumerate() {
        // Survivor replans reuse the cross-invocation tables cache: the
        // tables are keyed on the *full* pipeline-processor list (the
        // availability mask below only restricts which slots the DP may
        // use), so a replan after a dropout hits the tables built by the
        // original plan instead of rebuilding them mid-recovery.
        let (tables, hit) = estimator.tables_cached(graph, &procs);
        planner.telemetry().metrics.inc(if hit {
            "planner.tables.cache_hits"
        } else {
            "planner.tables.cache_misses"
        });
        let n = graph.len();
        // An NPU stage lowers its unsupported operators onto the
        // fallback CPU (Sec. IV), so when that CPU is down the NPU slot
        // is unusable for any model that needs the detour: a split that
        // looks feasible by cost would still route stage runs onto the
        // dead core (lint H2P009).
        let blocked_slot = tables.fallback().and_then(|(slot, fb)| {
            (fb.needs_fallback()
                && down
                    .get(fb.fallback_proc().index())
                    .copied()
                    .unwrap_or(false))
            .then_some(slot)
        });
        // Survivor-subset search on the flat DP kernel over the cached
        // tables (bit-identical to the oracle DP), with a pooled scratch
        // so mid-recovery replans stay allocation-free after warmup; the
        // winning context is derived once after the loop.
        let best = planner.with_plan_scratch(|ps| {
            let mut best: Option<(f64, Vec<usize>, Vec<usize>)> = None;
            for mask in 1u32..(1 << surviving.len()) {
                let slots: Vec<usize> = surviving
                    .iter()
                    .enumerate()
                    .filter(|(b, _)| mask & (1 << b) != 0)
                    .map(|(_, &s)| s)
                    .collect();
                if slots.len() > n {
                    continue;
                }
                if blocked_slot.is_some_and(|b| slots.contains(&b)) {
                    continue;
                }
                let Some(ms) = tables.partition_into(&slots, 1, &mut ps.dp) else {
                    continue;
                };
                // Strict improvement keeps the subset choice
                // deterministic under cost ties (first ascending mask
                // wins).
                if best.as_ref().is_none_or(|(m, _, _)| ms < m - 1e-12) {
                    best = Some((ms, slots, ps.dp.splits().to_vec()));
                }
            }
            best
        });
        let Some((_, slots, splits)) = best else {
            return Err(PlanError::NoFeasiblePipeline {
                model: graph.name().to_owned(),
            });
        };
        let ctx = tables.context(slots);
        if pending.contains(&r) {
            let stages = ctx
                .build_stages(cost, &splits, procs.len())
                .ok_or_else(|| PlanError::NoFeasiblePipeline {
                    model: graph.name().to_owned(),
                })?;
            let (intensity, class) = estimator.intensity_and_class(graph);
            requests.push(RequestPlan {
                request: r,
                model: graph.name().to_owned(),
                stages,
                intensity,
                class,
            });
        }
        ctxs.push(ctx);
    }
    let mut plan = PipelinePlan { procs, requests };
    worksteal::align_by_stealing(&mut plan, &ctxs, cost);
    Ok((plan, ctxs))
}

/// Runs `requests` to completion under the scripted `faults`, recovering
/// per the policy. See the module docs for the round state machine.
///
/// # Errors
///
/// Returns a hard error only for structural problems (empty request
/// set, invalid fault processor index, a plan that fails to lower).
/// Fault-driven failures — retry exhaustion, missed deadlines, total
/// processor loss — are *degraded outcomes*, reported in
/// [`RecoveryReport::outcome`] so callers still see the partial result.
pub fn run_with_recovery(
    planner: &Planner,
    requests: &[ModelGraph],
    faults: &[FaultSpec],
    policy: &RecoveryPolicy,
) -> Result<RecoveryReport, PlanError> {
    if requests.is_empty() {
        return Err(PlanError::EmptyRequestSet);
    }
    let soc = planner.soc().clone();
    let n_proc = soc.processors.len();
    let m = requests.len();
    let graphs: Vec<Arc<ModelGraph>> = requests.iter().map(|g| Arc::new(g.clone())).collect();
    let mut script = FaultScript::compile(faults, n_proc, m)?;
    let telemetry = planner.telemetry();

    let mut down = vec![false; n_proc];
    let mut done = vec![false; m];
    let mut attempts = vec![0usize; m];
    let mut delay = vec![0.0f64; m];
    let mut elapsed = 0.0f64;
    // Lifecycle: the recovery loop owns the requests' histories on the
    // global timeline, under the same content-derived trace id the
    // planner emits for this batch (the round-0 `planner.plan` call
    // records its own admit/plan pair under the identical id — duplicate
    // admissions are legal re-admissions). Admitting up front keeps the
    // stream causal even when round 0 degrades before planning.
    let trace_id = TraceId::of_names(requests.iter().map(ModelGraph::name));
    for r in 0..m {
        telemetry
            .lifecycle
            .record(trace_id, RequestId(r), 0.0, LifecycleStage::Admit);
    }
    let mut report = RecoveryReport {
        outcome: RecoveryOutcome::Recovered,
        rounds: Vec::new(),
        replans: 0,
        retries: 0,
        faults: 0,
        elapsed_ms: 0.0,
        completed: vec![false; m],
        down: vec![false; n_proc],
    };

    let outcome = 'rounds: {
        for round in 0..policy.max_rounds {
            if done.iter().all(|&d| d) {
                break 'rounds RecoveryOutcome::Recovered;
            }
            span!(telemetry.spans, "recovery:round{}", round);
            telemetry.metrics.inc("recovery.rounds");
            // Dropouts whose scripted instant has already passed take
            // effect before planning, so a round never schedules onto a
            // processor that is due to be down at its time zero.
            for (d, at) in down.iter_mut().zip(&script.down_at) {
                if at.is_some_and(|at| at <= elapsed) {
                    *d = true;
                }
            }
            let pending: Vec<usize> = (0..m).filter(|&r| !done[r]).collect();
            if let Some(deadline) = policy.deadline_ms {
                if elapsed > deadline {
                    break 'rounds RecoveryOutcome::Degraded(PlanError::DeadlineExceeded {
                        request: pending[0],
                        deadline_ms: deadline,
                    });
                }
            }

            // Plan this round's work. The first full-set, fault-free
            // round uses the production planner path unchanged; any
            // reduced or retried set goes through the survivor replan.
            let plan = if round == 0 && !down.iter().any(|&d| d) {
                match planner.plan(requests) {
                    Ok(planned) => planned.plan,
                    Err(e) => return Err(e),
                }
            } else {
                telemetry.metrics.inc("recovery.replans");
                report.replans += 1;
                for &r in &pending {
                    telemetry.lifecycle.record(
                        trace_id,
                        RequestId(r),
                        elapsed,
                        LifecycleStage::Recover { round },
                    );
                }
                match replan_on_survivors(planner, &graphs, &pending, &down) {
                    Ok((plan, _)) => plan,
                    Err(
                        e @ (PlanError::NoSurvivingProcessors
                        | PlanError::NoFeasiblePipeline { .. }),
                    ) => break 'rounds RecoveryOutcome::Degraded(e),
                    Err(e) => return Err(e),
                }
            };

            // Lower with backoff delays as release times, then gate on
            // the availability lint: H2P009 guards against ever routing
            // a task onto a down processor.
            let lowered = lower_with_arrivals(&plan, &soc, &delay)?;
            let diags =
                h2p_analyze::lint_tasks_available(&soc, lowered.simulation().tasks(), &down);
            if !diags.is_clean() {
                // A task routed onto a down processor is a planner bug;
                // surface it as a typed hard error in release builds too
                // rather than letting the round run to a dirty audit.
                return Err(PlanError::UnavailableProcessor {
                    round,
                    diags: diags.to_string(),
                });
            }
            let (sim, final_task, _) = lowered.into_parts();
            // Cost misprediction: reality deviates from the estimate at
            // lowering time; the planner keeps its (wrong) cost model.
            let sim = if (script.mispredict - 1.0).abs() > 1e-12 {
                let mut scaled = Simulation::new(soc.clone());
                for mut t in sim.tasks().to_vec() {
                    t.solo_ms *= script.mispredict;
                    scaled.add_task(t);
                }
                scaled
            } else {
                sim
            };

            // Script this round's injector on the round-local timeline.
            let mut inj = FaultInjector::new(n_proc);
            for (p, (is_down, at)) in down.iter().zip(&script.down_at).enumerate() {
                if *is_down {
                    continue;
                }
                if let Some(at) = at {
                    inj = inj.dropout(ProcessorId(p), at - elapsed);
                }
            }
            for &(p, from, until, factor) in &script.throttles {
                if until - elapsed > 0.0 {
                    inj = inj.throttle(
                        ProcessorId(p),
                        (from - elapsed).max(0.0),
                        until - elapsed,
                        factor,
                    );
                }
            }
            for &r in &pending {
                if script.transient.get(&r).copied().unwrap_or(0) > 0 {
                    if let Some(t) = final_task.get(r).copied().flatten() {
                        inj = inj.fail_task(t.index(), 0.5);
                    }
                }
            }

            let tasks_for_audit = sim.tasks().to_vec();
            let (sim_outcome, events) = match sim.run_faulted(&inj) {
                Ok(out) => out,
                Err(e) => break 'rounds RecoveryOutcome::Degraded(PlanError::Simulation(e)),
            };
            let audit_report = audit::audit_faulted(&soc, &tasks_for_audit, &events, &sim_outcome);
            debug_assert!(
                audit_report.is_clean(),
                "recovery round {round} failed its faulted audit:\n{audit_report:?}"
            );

            // React: completions, dropouts, retries with backoff.
            let round_offset = elapsed;
            elapsed += sim_outcome.halt_ms;
            report.elapsed_ms = elapsed;
            for (d, fell) in down.iter_mut().zip(&sim_outcome.down) {
                if *fell {
                    *d = true;
                }
            }
            // Per-request execution envelope over this round's completed
            // spans, keyed through the lowering labels — the lifecycle
            // execute instant and the completion latency both come from
            // here, on the global timeline.
            let mut envelope: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
            for (t, span) in sim_outcome.spans.iter().enumerate() {
                let (Some(span), Some(r)) = (
                    span,
                    tasks_for_audit.get(t).and_then(TaskSpec::request_index),
                ) else {
                    continue;
                };
                envelope
                    .entry(r)
                    .and_modify(|(s, e)| {
                        *s = s.min(span.start_ms);
                        *e = e.max(span.end_ms);
                    })
                    .or_insert((span.start_ms, span.end_ms));
            }
            for (&r, &(start, _)) in &envelope {
                telemetry.lifecycle.record(
                    trace_id,
                    RequestId(r),
                    round_offset + start,
                    LifecycleStage::Execute,
                );
            }
            let mut round_completed = 0usize;
            for &r in &pending {
                let finished = final_task
                    .get(r)
                    .copied()
                    .flatten()
                    .and_then(|t| sim_outcome.spans.get(t.index()))
                    .is_some_and(|s| s.is_some());
                if finished {
                    done[r] = true;
                    delay[r] = 0.0;
                    round_completed += 1;
                    let end = envelope.get(&r).map_or(sim_outcome.halt_ms, |&(_, e)| e);
                    telemetry.lifecycle.record(
                        trace_id,
                        RequestId(r),
                        round_offset + end,
                        LifecycleStage::Complete {
                            latency_ms: round_offset + end,
                        },
                    );
                }
            }
            let round_faults = sim_outcome.failed.len();
            report.faults += round_faults;
            telemetry
                .metrics
                .add("recovery.faults", round_faults as u64);
            let mut exhausted: Option<PlanError> = None;
            for f in &sim_outcome.failed {
                if f.kind != FaultKind::Transient {
                    continue;
                }
                let Some(r) = pending.iter().copied().find(|&r| {
                    final_task.get(r).copied().flatten().map(|t| t.index()) == Some(f.task)
                }) else {
                    continue;
                };
                if let Some(c) = script.transient.get_mut(&r) {
                    *c = c.saturating_sub(1);
                }
                attempts[r] += 1;
                if attempts[r] > policy.max_retries {
                    exhausted.get_or_insert(PlanError::RetriesExhausted {
                        request: r,
                        attempts: attempts[r],
                    });
                    continue;
                }
                report.retries += 1;
                telemetry.metrics.inc("recovery.retries");
                delay[r] = policy.backoff_ms(attempts[r]);
            }
            report.rounds.push(RoundLog {
                offset_ms: round_offset,
                events,
                labels: tasks_for_audit.iter().map(|t| t.label.clone()).collect(),
                completed: round_completed,
                faults: round_faults,
                audit_clean: audit_report.is_clean(),
            });
            if let Some(e) = exhausted {
                break 'rounds RecoveryOutcome::Degraded(e);
            }
        }
        if done.iter().all(|&d| d) {
            RecoveryOutcome::Recovered
        } else {
            // Round budget exhausted with work still pending: surface
            // the first stuck request as a retries-exhausted outcome.
            let first = (0..m).find(|&r| !done[r]).unwrap_or(0);
            RecoveryOutcome::Degraded(PlanError::RetriesExhausted {
                request: first,
                attempts: attempts[first],
            })
        }
    };

    telemetry.metrics.gauge("recovery.elapsed_ms", elapsed);
    // Degraded runs abandon every incomplete request: close their
    // lifecycle with a typed degradation reason so no history is left
    // dangling (validation treats degrade as terminal).
    if let RecoveryOutcome::Degraded(e) = &outcome {
        let reason = degrade_reason(e);
        for (r, &d) in done.iter().enumerate() {
            if !d {
                telemetry.lifecycle.record(
                    trace_id,
                    RequestId(r),
                    elapsed,
                    LifecycleStage::Degrade {
                        reason: reason.to_owned(),
                    },
                );
            }
        }
    }
    report.outcome = outcome;
    report.completed = done;
    report.down = down;
    Ok(report)
}

/// Compact stable tag for a degraded outcome's cause, used in lifecycle
/// events (full details stay on the typed [`PlanError`]).
fn degrade_reason(e: &PlanError) -> &'static str {
    match e {
        PlanError::RetriesExhausted { .. } => "retries_exhausted",
        PlanError::DeadlineExceeded { .. } => "deadline_exceeded",
        PlanError::NoSurvivingProcessors => "no_surviving_processors",
        PlanError::NoFeasiblePipeline { .. } => "no_feasible_pipeline",
        PlanError::Simulation(_) => "simulation_error",
        _ => "degraded",
    }
}

/// Generates a seeded random fault scenario over `n_req` requests on
/// `soc`: 1–3 faults drawn from all four fault classes, with times and
/// magnitudes sized for small chaos workloads. Deterministic per seed.
pub fn chaos_faults(soc: &SocSpec, n_req: usize, seed: u64) -> Vec<FaultSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_proc = soc.processors.len();
    let count = rng.gen_range(1..=3usize);
    let mut specs = Vec::with_capacity(count);
    let mut dropped = 0usize;
    for _ in 0..count {
        match rng.gen_range(0..4u32) {
            0 if n_proc > 1 && dropped + 1 < n_proc => {
                dropped += 1;
                specs.push(FaultSpec::ProcessorDropout {
                    processor: ProcessorId(rng.gen_range(0..n_proc)),
                    at_ms: rng.gen_range(0.0..60.0),
                });
            }
            1 => {
                let from = rng.gen_range(0.0..40.0);
                specs.push(FaultSpec::ThermalThrottle {
                    processor: ProcessorId(rng.gen_range(0..n_proc)),
                    from_ms: from,
                    until_ms: from + rng.gen_range(5.0..80.0),
                    factor: rng.gen_range(0.2..0.9),
                });
            }
            2 => {
                specs.push(FaultSpec::TransientFailure {
                    request: rng.gen_range(0..n_req.max(1)),
                    failures: rng.gen_range(1..=2u32),
                });
            }
            _ => {
                specs.push(FaultSpec::CostMisprediction {
                    scale: rng.gen_range(0.6..1.8),
                });
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_models;
    use h2p_models::zoo::ModelId;

    fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
        ids.iter().map(|m| m.graph()).collect()
    }

    fn small_set() -> Vec<ModelGraph> {
        graphs(&[ModelId::SqueezeNet, ModelId::MobileNetV2, ModelId::AlexNet])
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let policy = RecoveryPolicy::default();
        assert_eq!(policy.backoff_ms(0), 0.0);
        assert_eq!(policy.backoff_ms(1), 1.0);
        assert_eq!(policy.backoff_ms(2), 2.0);
        assert_eq!(policy.backoff_ms(3), 4.0);
        assert_eq!(policy.backoff_ms(6), 32.0); // cap
        assert_eq!(policy.backoff_ms(500), 32.0); // exponent clamp, no overflow
    }

    #[test]
    fn fault_free_run_recovers_in_one_round() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let report =
            run_with_recovery(&planner, &small_set(), &[], &RecoveryPolicy::default()).unwrap();
        assert!(report.is_recovered(), "{:?}", report.outcome);
        assert_eq!(report.rounds.len(), 1);
        assert_eq!(report.replans, 0);
        assert_eq!(report.retries, 0);
        assert!(report.completed.iter().all(|&c| c));
        assert!(report.all_rounds_audit_clean());
    }

    #[test]
    fn dropout_replans_on_survivors_and_recovers() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let victim = planner.pipeline_procs()[0];
        let faults = [FaultSpec::ProcessorDropout {
            processor: victim,
            at_ms: 2.0,
        }];
        let report =
            run_with_recovery(&planner, &small_set(), &faults, &RecoveryPolicy::default()).unwrap();
        assert!(report.is_recovered(), "{:?}", report.outcome);
        assert!(report.replans >= 1, "dropout must force a replan");
        assert!(report.down[victim.index()]);
        assert!(report.all_rounds_audit_clean());
        // No task in any post-dropout round ran on the dead processor
        // after its dropout instant.
        let mut saw_down = false;
        for round in &report.rounds {
            for e in &round.events {
                match e {
                    EngineEvent::ProcessorDown { processor, .. } if *processor == victim => {
                        saw_down = true;
                    }
                    EngineEvent::Start { processor, .. } => {
                        assert!(
                            !(saw_down && *processor == victim),
                            "task started on dropped processor"
                        );
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_down, "the dropout must surface in some event log");
    }

    #[test]
    fn replan_avoids_npu_fallback_onto_down_processor() {
        // Dropping CPU_B kills the NPU's operator-fallback target: a
        // survivor replan must not keep an NPU stage whose unsupported
        // layers would detour onto the dead core (the H2P009 case the
        // release-mode chaos sweep caught on seeds 11 and 26).
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let cpu_b = soc.processor_by_name("CPU_B").unwrap();
        let graphs: Vec<Arc<ModelGraph>> = [ModelId::Bert, ModelId::ResNet50, ModelId::YoloV4]
            .iter()
            .map(|m| Arc::new(m.graph()))
            .collect();
        let pending: Vec<usize> = (0..graphs.len()).collect();
        let mut down = vec![false; soc.processors.len()];
        down[cpu_b.index()] = true;
        let (plan, _) = replan_on_survivors(&planner, &graphs, &pending, &down).unwrap();
        for req in &plan.requests {
            for stage in req.stages.iter().flatten() {
                assert_ne!(stage.proc, cpu_b, "{}: stage on down processor", req.model);
                for run in &stage.runs {
                    assert_ne!(run.proc, cpu_b, "{}: fallback run on down CPU_B", req.model);
                }
            }
        }
        // End-to-end: the same drop recovers audit-clean with no task
        // ever started on the dead core.
        let reqs: Vec<ModelGraph> = graphs.iter().map(|g| (**g).clone()).collect();
        let faults = [FaultSpec::ProcessorDropout {
            processor: cpu_b,
            at_ms: 1.0,
        }];
        let report =
            run_with_recovery(&planner, &reqs, &faults, &RecoveryPolicy::default()).unwrap();
        assert!(report.is_recovered(), "{:?}", report.outcome);
        assert!(report.all_rounds_audit_clean());
        let mut dead = false;
        for round in &report.rounds {
            for e in &round.events {
                match e {
                    EngineEvent::ProcessorDown { processor, .. } if *processor == cpu_b => {
                        dead = true;
                    }
                    EngineEvent::Start {
                        processor, task, ..
                    } => {
                        assert!(
                            !(dead && *processor == cpu_b),
                            "task {task} started on dropped CPU_B"
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn transient_failures_retry_with_backoff_then_recover() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let faults = [FaultSpec::TransientFailure {
            request: 1,
            failures: 2,
        }];
        let report =
            run_with_recovery(&planner, &small_set(), &faults, &RecoveryPolicy::default()).unwrap();
        assert!(report.is_recovered(), "{:?}", report.outcome);
        assert_eq!(report.retries, 2);
        assert_eq!(report.faults, 2);
        assert!(report.rounds.len() >= 3, "two retries need three rounds");
        assert!(report.all_rounds_audit_clean());
    }

    #[test]
    fn retry_budget_exhaustion_is_typed() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let faults = [FaultSpec::TransientFailure {
            request: 0,
            failures: 10,
        }];
        let policy = RecoveryPolicy {
            max_retries: 2,
            ..RecoveryPolicy::default()
        };
        let report = run_with_recovery(&planner, &small_set(), &faults, &policy).unwrap();
        match &report.outcome {
            RecoveryOutcome::Degraded(PlanError::RetriesExhausted { request, attempts }) => {
                assert_eq!(*request, 0);
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // The other requests still completed before the budget ran out.
        assert!(report.completed[1] && report.completed[2]);
    }

    #[test]
    fn dropping_every_processor_degrades_not_panics() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let faults: Vec<FaultSpec> = planner
            .pipeline_procs()
            .into_iter()
            .map(|p| FaultSpec::ProcessorDropout {
                processor: p,
                at_ms: 0.0,
            })
            .collect();
        let report =
            run_with_recovery(&planner, &small_set(), &faults, &RecoveryPolicy::default()).unwrap();
        match &report.outcome {
            RecoveryOutcome::Degraded(PlanError::NoSurvivingProcessors) => {}
            other => panic!("expected NoSurvivingProcessors, got {other:?}"),
        }
    }

    #[test]
    fn deadline_exceeded_is_typed() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let faults = [FaultSpec::TransientFailure {
            request: 0,
            failures: 3,
        }];
        let policy = RecoveryPolicy {
            deadline_ms: Some(1e-3),
            ..RecoveryPolicy::default()
        };
        let report = run_with_recovery(&planner, &small_set(), &faults, &policy).unwrap();
        match &report.outcome {
            RecoveryOutcome::Degraded(PlanError::DeadlineExceeded { deadline_ms, .. }) => {
                assert!((deadline_ms - 1e-3).abs() < 1e-12);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn misprediction_stretches_execution_but_recovers() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let clean =
            run_with_recovery(&planner, &small_set(), &[], &RecoveryPolicy::default()).unwrap();
        let faults = [FaultSpec::CostMisprediction { scale: 1.5 }];
        let slow =
            run_with_recovery(&planner, &small_set(), &faults, &RecoveryPolicy::default()).unwrap();
        assert!(slow.is_recovered(), "{:?}", slow.outcome);
        assert!(
            slow.elapsed_ms > clean.elapsed_ms * 1.2,
            "1.5x misprediction must stretch the run: {} vs {}",
            slow.elapsed_ms,
            clean.elapsed_ms
        );
    }

    #[test]
    fn chaos_seeds_recover_or_degrade_typed() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        for seed in 0..6u64 {
            let models = random_models(seed.wrapping_mul(97).wrapping_add(13), 3);
            let reqs = graphs(&models);
            let faults = chaos_faults(&soc, reqs.len(), seed);
            let report = run_with_recovery(&planner, &reqs, &faults, &RecoveryPolicy::default())
                .unwrap_or_else(|e| panic!("seed {seed}: hard error {e}"));
            assert!(report.all_rounds_audit_clean(), "seed {seed}");
            if let RecoveryOutcome::Degraded(e) = &report.outcome {
                // Degraded outcomes must be one of the typed recovery
                // errors, never a structural failure.
                assert!(
                    matches!(
                        e,
                        PlanError::RetriesExhausted { .. }
                            | PlanError::DeadlineExceeded { .. }
                            | PlanError::NoSurvivingProcessors
                    ),
                    "seed {seed}: unexpected degraded error {e}"
                );
            }
        }
    }

    #[test]
    fn recovery_records_telemetry_counters() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let victim = planner.pipeline_procs()[0];
        let faults = [
            FaultSpec::ProcessorDropout {
                processor: victim,
                at_ms: 1.0,
            },
            FaultSpec::TransientFailure {
                request: 0,
                failures: 1,
            },
        ];
        run_with_recovery(&planner, &small_set(), &faults, &RecoveryPolicy::default()).unwrap();
        let snap = planner.telemetry().metrics.snapshot();
        assert!(snap.counter("recovery.rounds").unwrap_or(0) >= 2);
        assert!(snap.counter("recovery.replans").unwrap_or(0) >= 1);
        assert!(snap.counter("recovery.faults").unwrap_or(0) >= 1);
        assert!(snap.gauge("recovery.elapsed_ms").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn chaos_faults_are_deterministic_per_seed() {
        let soc = SocSpec::kirin_990();
        assert_eq!(chaos_faults(&soc, 4, 7), chaos_faults(&soc, 4, 7));
        assert!(!chaos_faults(&soc, 4, 7).is_empty());
    }
}
