//! Windowed online planning for streaming request arrival.
//!
//! The paper's complexity analysis ends with an operational note: the
//! planner's cost is governed by the number of queued requests `|M|`, so
//! "in case of more inference requests, the planner should be scheduled
//! more frequently to avoid enlarged search space". [`OnlinePlanner`]
//! realizes that deployment mode: requests are planned in fixed-size
//! windows as they arrive — mitigation re-ordering and work stealing are
//! scoped to a window, bounding per-invocation planning latency while the
//! pipeline keeps streaming.

use h2p_models::graph::ModelGraph;
use h2p_telemetry::span;

use crate::error::PlanError;
use crate::par;
use crate::plan::PipelinePlan;
use crate::planner::{PlannedPipeline, Planner};

/// A planner invoked once per arrival window.
#[derive(Debug, Clone)]
pub struct OnlinePlanner {
    planner: Planner,
    window: usize,
}

impl OnlinePlanner {
    /// Wraps `planner` with a re-planning window of `window` requests.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(planner: Planner, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        OnlinePlanner { planner, window }
    }

    /// The wrapped planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The re-planning window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Plans the request stream window by window and concatenates the
    /// per-window plans into one executable pipeline plan. Request
    /// indices refer to the *global* submission order; re-ordering by
    /// contention mitigation never crosses a window boundary (a request
    /// is never delayed behind requests that arrived a full window later).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if any window fails to plan.
    pub fn plan(&self, requests: &[ModelGraph]) -> Result<PlannedPipeline, PlanError> {
        if requests.is_empty() {
            return Err(PlanError::EmptyRequestSet);
        }
        // Windows are planned independently — the third parallel loop of
        // the planning runtime. When more than one window fans out across
        // the workers, each window plans with a single inner thread so the
        // worker pool is not oversubscribed; a lone window keeps the full
        // inner parallelism. Either way each window's plan is bit-identical
        // (the planner's thread-count invariance), and the merge below
        // concatenates windows in arrival order.
        let telemetry = self.planner.telemetry();
        span!(telemetry.spans, "online:{}req", requests.len());
        let chunks: Vec<&[ModelGraph]> = requests.chunks(self.window).collect();
        telemetry.metrics.inc("online.invocations");
        telemetry.metrics.add("online.windows", chunks.len() as u64);
        let outer_threads = self.planner.config().effective_threads();
        let inner_threads = if chunks.len() > 1 && outer_threads > 1 {
            1
        } else {
            outer_threads
        };
        let window_plans = par::try_map(outer_threads, &chunks, |w, chunk| {
            span!(telemetry.spans, "window:{}", w);
            self.planner.plan_with_threads(chunk, inner_threads)
        })?;
        let mut combined: Option<PlannedPipeline> = None;
        let mut tail_merges = 0usize;
        for (w, mut planned) in window_plans.into_iter().enumerate() {
            let offset = w * self.window;
            for req in &mut planned.plan.requests {
                req.request += offset;
            }
            tail_merges += planned.tail_merges;
            match &mut combined {
                None => combined = Some(planned),
                Some(acc) => {
                    acc.plan.requests.extend(planned.plan.requests);
                    acc.contexts.extend(planned.contexts);
                }
            }
        }
        let Some(mut out) = combined else {
            // Unreachable: a non-empty slice yields at least one chunk.
            return Err(PlanError::EmptyRequestSet);
        };
        out.tail_merges = tail_merges;
        // Window-local passes already ran; the combined plan keeps them.
        out.mitigation = None;
        out.steal = None;
        // The per-window plans were already gated inside `Planner::plan`;
        // re-lint the concatenation, whose indices and claims are new.
        #[cfg(debug_assertions)]
        {
            let diags = out.lint(self.planner.soc());
            debug_assert!(
                diags.is_clean(),
                "online planner produced a combined plan that fails its static lint:\n{diags}"
            );
        }
        Ok(out)
    }

    /// Plans and returns only the [`PipelinePlan`] (convenience).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if any window fails to plan.
    pub fn plan_pipeline(&self, requests: &[ModelGraph]) -> Result<PipelinePlan, PlanError> {
        Ok(self.plan(requests)?.plan)
    }

    /// Runs the request stream under scripted faults, reacting to fault
    /// notifications by re-planning the unexecuted work on the surviving
    /// processor set (see [`crate::recovery`]). Fault-free streams take
    /// the normal planning path and complete in one round.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] only for structural problems; fault-driven
    /// failures are typed degraded outcomes inside the report.
    pub fn run_with_recovery(
        &self,
        requests: &[ModelGraph],
        faults: &[h2p_simulator::FaultSpec],
        policy: &crate::recovery::RecoveryPolicy,
    ) -> Result<crate::recovery::RecoveryReport, PlanError> {
        crate::recovery::run_with_recovery(&self.planner, requests, faults, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;
    use h2p_simulator::SocSpec;

    fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
        ids.iter().map(|m| m.graph()).collect()
    }

    fn stream() -> Vec<ModelGraph> {
        graphs(&[
            ModelId::ResNet50,
            ModelId::SqueezeNet,
            ModelId::Bert,
            ModelId::MobileNetV2,
            ModelId::Vgg16,
            ModelId::GoogLeNet,
            ModelId::Vit,
            ModelId::AlexNet,
        ])
    }

    #[test]
    fn giant_window_matches_offline_planning() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let online = OnlinePlanner::new(planner.clone(), 100);
        let reqs = stream();
        let offline = planner.plan(&reqs).unwrap();
        let windowed = online.plan(&reqs).unwrap();
        assert_eq!(offline.plan, windowed.plan);
    }

    #[test]
    fn windows_bound_reordering_distance() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let online = OnlinePlanner::new(planner, 3);
        let reqs = stream();
        let planned = online.plan(&reqs).unwrap();
        // Every request stays within its window of 3.
        for (pos, req) in planned.plan.requests.iter().enumerate() {
            assert_eq!(
                pos / 3,
                req.request / 3,
                "request {} at pos {pos}",
                req.request
            );
        }
        // All requests present exactly once.
        let mut seen: Vec<usize> = planned.plan.requests.iter().map(|r| r.request).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..reqs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn windowed_plans_execute_and_stay_competitive() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let reqs = stream();
        let offline = planner.plan(&reqs).unwrap().execute(&soc).unwrap();
        let online = OnlinePlanner::new(planner, 4)
            .plan(&reqs)
            .unwrap()
            .execute(&soc)
            .unwrap();
        assert_eq!(online.request_latency_ms.len(), reqs.len());
        // Windowing costs something but stays within 2x of offline.
        assert!(
            online.makespan_ms < 2.0 * offline.makespan_ms,
            "online {:.0} vs offline {:.0}",
            online.makespan_ms,
            offline.makespan_ms
        );
    }

    #[test]
    fn online_planning_records_window_metrics() {
        let soc = SocSpec::kirin_990();
        let online = OnlinePlanner::new(Planner::new(&soc).unwrap(), 3);
        let reqs = stream(); // 8 requests → 3 windows of ≤3
        online.plan(&reqs).unwrap();
        let snap = online.planner().telemetry().metrics.snapshot();
        assert_eq!(snap.counter("online.invocations"), Some(1));
        assert_eq!(snap.counter("online.windows"), Some(3));
        assert_eq!(snap.counter("planner.plans"), Some(3));
        let spans = online.planner().telemetry().spans.records();
        assert_eq!(
            spans
                .iter()
                .filter(|s| s.name.starts_with("window:"))
                .count(),
            3
        );
    }

    #[test]
    fn empty_stream_is_rejected() {
        let soc = SocSpec::kirin_990();
        let online = OnlinePlanner::new(Planner::new(&soc).unwrap(), 4);
        assert_eq!(online.plan(&[]).unwrap_err(), PlanError::EmptyRequestSet);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let soc = SocSpec::kirin_990();
        OnlinePlanner::new(Planner::new(&soc).unwrap(), 0);
    }
}
