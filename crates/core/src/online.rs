//! Windowed online planning for streaming request arrival.
//!
//! The paper's complexity analysis ends with an operational note: the
//! planner's cost is governed by the number of queued requests `|M|`, so
//! "in case of more inference requests, the planner should be scheduled
//! more frequently to avoid enlarged search space". [`OnlinePlanner`]
//! realizes that deployment mode: requests are planned in fixed-size
//! windows as they arrive — mitigation re-ordering and work stealing are
//! scoped to a window, bounding per-invocation planning latency while the
//! pipeline keeps streaming.
//!
//! # Incremental window replanning
//!
//! An online deployment re-plans the *same* model set window after window
//! as contention shifts; re-solving every window from scratch is exactly
//! the overhead the paper's operational note warns about.
//! [`OnlinePlanner::plan_incremental`] memoizes finished window plans in a
//! cross-invocation cache and re-plans only windows whose key changed.
//! The key has three components, each pinning one way a cached plan can
//! go stale:
//!
//! * the **window's model graphs** (full equality — names alone are not
//!   unique),
//! * the **contention class** of every request (re-checked against the
//!   estimator on every lookup, so a reclassification invalidates),
//! * the **pipeline processor list** (processor availability — a dropped
//!   or depth-truncated slot changes the list and invalidates).
//!
//! Window granularity is the correctness-preserving unit: mitigation
//! re-ordering and work stealing couple the requests *within* a window,
//! so per-request memoization below that would not stay bit-identical.
//! Any window that misses falls back to planning from scratch (the
//! planner's normal path), and in debug builds every cache hit is
//! re-planned and asserted bit-identical to the from-scratch plan.

use crate::sync::{Arc, Mutex};

use h2p_contention::ContentionClass;
use h2p_models::graph::ModelGraph;
use h2p_simulator::ProcessorId;
use h2p_telemetry::lifecycle::{LifecycleStage, RequestId, TraceId};
use h2p_telemetry::span;

use crate::error::PlanError;
use crate::par;
use crate::plan::PipelinePlan;
use crate::planner::{PlannedPipeline, Planner};

/// One memoized window: the key components and the finished plan (with
/// window-local request indices).
#[derive(Debug, Clone)]
struct WindowEntry {
    graphs: Vec<ModelGraph>,
    classes: Vec<ContentionClass>,
    procs: Vec<ProcessorId>,
    planned: PlannedPipeline,
}

impl WindowEntry {
    /// Whether this entry covers the given window under the given
    /// contention classes and processor availability. Every component of
    /// the cache key is compared: a change to any one of them — model
    /// set, contention class, or processor list — misses.
    fn matches(
        &self,
        graphs: &[ModelGraph],
        classes: &[ContentionClass],
        procs: &[ProcessorId],
    ) -> bool {
        self.procs == procs
            && self.classes == classes
            && self.graphs.len() == graphs.len()
            && self.graphs.iter().zip(graphs).all(|(a, b)| a == b)
    }
}

/// A planner invoked once per arrival window.
#[derive(Debug, Clone)]
pub struct OnlinePlanner {
    planner: Planner,
    window: usize,
    /// Cross-invocation window-plan cache for
    /// [`OnlinePlanner::plan_incremental`]; shared by clones.
    window_cache: Arc<Mutex<Vec<WindowEntry>>>,
}

impl OnlinePlanner {
    /// Wraps `planner` with a re-planning window of `window` requests.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(planner: Planner, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        OnlinePlanner {
            planner,
            window,
            window_cache: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The wrapped planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The re-planning window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Plans the request stream window by window and concatenates the
    /// per-window plans into one executable pipeline plan. Request
    /// indices refer to the *global* submission order; re-ordering by
    /// contention mitigation never crosses a window boundary (a request
    /// is never delayed behind requests that arrived a full window later).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if any window fails to plan.
    pub fn plan(&self, requests: &[ModelGraph]) -> Result<PlannedPipeline, PlanError> {
        if requests.is_empty() {
            return Err(PlanError::EmptyRequestSet);
        }
        // Windows are planned independently — the third parallel loop of
        // the planning runtime. When more than one window fans out across
        // the workers, each window plans with a single inner thread so the
        // worker pool is not oversubscribed; a lone window keeps the full
        // inner parallelism. Either way each window's plan is bit-identical
        // (the planner's thread-count invariance), and the merge below
        // concatenates windows in arrival order.
        let telemetry = self.planner.telemetry();
        span!(telemetry.spans, "online:{}req", requests.len());
        let chunks: Vec<&[ModelGraph]> = requests.chunks(self.window).collect();
        telemetry.metrics.inc("online.invocations");
        telemetry.metrics.add("online.windows", chunks.len() as u64);
        let outer_threads = self.planner.config().effective_threads();
        let inner_threads = if chunks.len() > 1 && outer_threads > 1 {
            1
        } else {
            outer_threads
        };
        let window_plans = par::try_map(outer_threads, &chunks, |w, chunk| {
            span!(telemetry.spans, "window:{}", w);
            self.planner.plan_with_threads(chunk, inner_threads)
        })?;
        self.combine(window_plans)
    }

    /// Concatenates per-window plans (window-local request indices) into
    /// one executable pipeline plan with global submission-order indices.
    fn combine(&self, window_plans: Vec<PlannedPipeline>) -> Result<PlannedPipeline, PlanError> {
        let mut combined: Option<PlannedPipeline> = None;
        let mut tail_merges = 0usize;
        for (w, mut planned) in window_plans.into_iter().enumerate() {
            let offset = w * self.window;
            for req in &mut planned.plan.requests {
                req.request += offset;
            }
            tail_merges += planned.tail_merges;
            match &mut combined {
                None => combined = Some(planned),
                Some(acc) => {
                    acc.plan.requests.extend(planned.plan.requests);
                    acc.contexts.extend(planned.contexts);
                }
            }
        }
        let Some(mut out) = combined else {
            // Unreachable: a non-empty slice yields at least one chunk.
            return Err(PlanError::EmptyRequestSet);
        };
        out.tail_merges = tail_merges;
        // Window-local passes already ran; the combined plan keeps them.
        out.mitigation = None;
        out.steal = None;
        // Lifecycle: re-admit every request under the *full-set* trace id
        // (per-window planner invocations recorded their own window-local
        // streams; reports filter by trace id) and record the contention
        // window each request landed in. Names are ordered by global
        // request index so the id matches what a one-shot planner
        // invocation over the same batch would derive.
        {
            let mut by_request: Vec<(usize, &str)> = out
                .plan
                .requests
                .iter()
                .map(|r| (r.request, r.model.as_str()))
                .collect();
            by_request.sort_unstable_by_key(|&(r, _)| r);
            let trace_id = TraceId::of_names(by_request.iter().map(|&(_, name)| name));
            let lifecycle = &self.planner.telemetry().lifecycle;
            for &(r, _) in &by_request {
                lifecycle.record(trace_id, RequestId(r), 0.0, LifecycleStage::Admit);
            }
            for &(r, _) in &by_request {
                lifecycle.record(trace_id, RequestId(r), 0.0, LifecycleStage::Plan);
                lifecycle.record(
                    trace_id,
                    RequestId(r),
                    0.0,
                    LifecycleStage::Window {
                        window: r / self.window,
                    },
                );
            }
        }
        // The per-window plans were already gated inside `Planner::plan`;
        // re-lint the concatenation, whose indices and claims are new.
        #[cfg(debug_assertions)]
        {
            let diags = out.lint(self.planner.soc());
            debug_assert!(
                diags.is_clean(),
                "online planner produced a combined plan that fails its static lint:\n{diags}"
            );
        }
        Ok(out)
    }

    /// [`OnlinePlanner::plan`] with incremental window replanning: windows
    /// whose cache key — model graphs, contention classes, and the
    /// pipeline processor list — is unchanged since a previous invocation
    /// reuse their memoized plan; only changed windows are re-planned
    /// (from scratch, on the planner's normal path). The combined plan is
    /// **bit-identical** to [`OnlinePlanner::plan`] on the same requests:
    /// the planner is deterministic, so equal inputs produce equal window
    /// plans, and in debug builds every cache hit re-plans its window and
    /// asserts exactly that.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if any window fails to plan.
    pub fn plan_incremental(&self, requests: &[ModelGraph]) -> Result<PlannedPipeline, PlanError> {
        if requests.is_empty() {
            return Err(PlanError::EmptyRequestSet);
        }
        let telemetry = self.planner.telemetry();
        span!(telemetry.spans, "online-inc:{}req", requests.len());
        let chunks: Vec<&[ModelGraph]> = requests.chunks(self.window).collect();
        telemetry.metrics.inc("online.invocations");
        telemetry.metrics.add("online.windows", chunks.len() as u64);
        let procs = self.planner.pipeline_procs();
        let estimator = self.planner.estimator();
        // Key component 2: the *current* contention class of every
        // request, re-derived (memoized) on every lookup so a
        // reclassified model invalidates its windows.
        let classes: Vec<Vec<ContentionClass>> = chunks
            .iter()
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|g| estimator.intensity_and_class_of(g).1)
                    .collect()
            })
            .collect();

        // Phase 1: serve hits from the cache, collect the misses.
        let mut window_plans: Vec<Option<PlannedPipeline>> = vec![None; chunks.len()];
        let mut missed: Vec<usize> = Vec::new();
        {
            let cache = match self.window_cache.lock() {
                Ok(guard) => guard,
                // Pure cache: a poisoned lock cannot hold partial state.
                Err(poisoned) => poisoned.into_inner(),
            };
            for (w, chunk) in chunks.iter().enumerate() {
                let hit = cache.iter().find(|e| e.matches(chunk, &classes[w], &procs));
                match hit {
                    Some(entry) => window_plans[w] = Some(entry.planned.clone()),
                    None => missed.push(w),
                }
            }
        }
        telemetry.metrics.add(
            "online.window_cache.hits",
            (chunks.len() - missed.len()) as u64,
        );
        telemetry
            .metrics
            .add("online.window_cache.misses", missed.len() as u64);

        // Debug-build equivalence gate: every hit re-plans its window
        // from scratch and must match the memoized plan bit for bit.
        #[cfg(debug_assertions)]
        for (w, chunk) in chunks.iter().enumerate() {
            if let Some(cached) = &window_plans[w] {
                let fresh = self.planner.plan_with_threads(chunk, 1)?;
                debug_assert!(
                    fresh.plan == cached.plan && fresh.tail_merges == cached.tail_merges,
                    "window {w}: memoized plan diverged from the from-scratch plan"
                );
            }
        }

        // Phase 2: plan the missed windows exactly as `plan` would (same
        // fan-out rules), then memoize them.
        if !missed.is_empty() {
            let outer_threads = self.planner.config().effective_threads();
            let inner_threads = if missed.len() > 1 && outer_threads > 1 {
                1
            } else {
                outer_threads
            };
            let fresh = par::try_map(outer_threads, &missed, |_, &w| {
                span!(telemetry.spans, "window:{}", w);
                self.planner.plan_with_threads(chunks[w], inner_threads)
            })?;
            let mut cache = match self.window_cache.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            for (&w, planned) in missed.iter().zip(fresh) {
                cache.push(WindowEntry {
                    graphs: chunks[w].to_vec(),
                    classes: classes[w].clone(),
                    procs: procs.clone(),
                    planned: planned.clone(),
                });
                window_plans[w] = Some(planned);
            }
        }

        let window_plans: Vec<PlannedPipeline> = window_plans
            .into_iter()
            .map(|p| p.ok_or(PlanError::EmptyRequestSet))
            .collect::<Result<_, _>>()?;
        self.combine(window_plans)
    }

    /// Drops every memoized window plan. Subsequent
    /// [`OnlinePlanner::plan_incremental`] calls re-plan from scratch and
    /// re-populate the cache.
    pub fn clear_window_cache(&self) {
        let mut cache = match self.window_cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        cache.clear();
    }

    /// Number of memoized window plans currently held.
    pub fn window_cache_len(&self) -> usize {
        match self.window_cache.lock() {
            Ok(guard) => guard.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Plans and returns only the [`PipelinePlan`] (convenience).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if any window fails to plan.
    pub fn plan_pipeline(&self, requests: &[ModelGraph]) -> Result<PipelinePlan, PlanError> {
        Ok(self.plan(requests)?.plan)
    }

    /// Runs the request stream under scripted faults, reacting to fault
    /// notifications by re-planning the unexecuted work on the surviving
    /// processor set (see [`crate::recovery`]). Fault-free streams take
    /// the normal planning path and complete in one round.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] only for structural problems; fault-driven
    /// failures are typed degraded outcomes inside the report.
    pub fn run_with_recovery(
        &self,
        requests: &[ModelGraph],
        faults: &[h2p_simulator::FaultSpec],
        policy: &crate::recovery::RecoveryPolicy,
    ) -> Result<crate::recovery::RecoveryReport, PlanError> {
        crate::recovery::run_with_recovery(&self.planner, requests, faults, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;
    use h2p_simulator::SocSpec;

    fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
        ids.iter().map(|m| m.graph()).collect()
    }

    fn stream() -> Vec<ModelGraph> {
        graphs(&[
            ModelId::ResNet50,
            ModelId::SqueezeNet,
            ModelId::Bert,
            ModelId::MobileNetV2,
            ModelId::Vgg16,
            ModelId::GoogLeNet,
            ModelId::Vit,
            ModelId::AlexNet,
        ])
    }

    #[test]
    fn giant_window_matches_offline_planning() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let online = OnlinePlanner::new(planner.clone(), 100);
        let reqs = stream();
        let offline = planner.plan(&reqs).unwrap();
        let windowed = online.plan(&reqs).unwrap();
        assert_eq!(offline.plan, windowed.plan);
    }

    #[test]
    fn windows_bound_reordering_distance() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let online = OnlinePlanner::new(planner, 3);
        let reqs = stream();
        let planned = online.plan(&reqs).unwrap();
        // Every request stays within its window of 3.
        for (pos, req) in planned.plan.requests.iter().enumerate() {
            assert_eq!(
                pos / 3,
                req.request / 3,
                "request {} at pos {pos}",
                req.request
            );
        }
        // All requests present exactly once.
        let mut seen: Vec<usize> = planned.plan.requests.iter().map(|r| r.request).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..reqs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn windowed_plans_execute_and_stay_competitive() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let reqs = stream();
        let offline = planner.plan(&reqs).unwrap().execute(&soc).unwrap();
        let online = OnlinePlanner::new(planner, 4)
            .plan(&reqs)
            .unwrap()
            .execute(&soc)
            .unwrap();
        assert_eq!(online.request_latency_ms.len(), reqs.len());
        // Windowing costs something but stays within 2x of offline.
        assert!(
            online.makespan_ms < 2.0 * offline.makespan_ms,
            "online {:.0} vs offline {:.0}",
            online.makespan_ms,
            offline.makespan_ms
        );
    }

    #[test]
    fn online_planning_records_window_metrics() {
        let soc = SocSpec::kirin_990();
        let online = OnlinePlanner::new(Planner::new(&soc).unwrap(), 3);
        let reqs = stream(); // 8 requests → 3 windows of ≤3
        online.plan(&reqs).unwrap();
        let snap = online.planner().telemetry().metrics.snapshot();
        assert_eq!(snap.counter("online.invocations"), Some(1));
        assert_eq!(snap.counter("online.windows"), Some(3));
        assert_eq!(snap.counter("planner.plans"), Some(3));
        let spans = online.planner().telemetry().spans.records();
        assert_eq!(
            spans
                .iter()
                .filter(|s| s.name.starts_with("window:"))
                .count(),
            3
        );
    }

    #[test]
    fn incremental_matches_from_scratch_and_hits_on_repeat() {
        let soc = SocSpec::kirin_990();
        let online = OnlinePlanner::new(Planner::new(&soc).unwrap(), 4);
        let reqs = stream(); // 8 requests → 2 windows of 4
        let scratch = online.plan(&reqs).unwrap();
        // Cold: every window misses, gets planned and memoized.
        let first = online.plan_incremental(&reqs).unwrap();
        assert_eq!(first.plan, scratch.plan);
        assert_eq!(first.tail_merges, scratch.tail_merges);
        assert_eq!(online.window_cache_len(), 2);
        // Warm: every window hits; the combined plan is bit-identical.
        let second = online.plan_incremental(&reqs).unwrap();
        assert_eq!(second.plan, scratch.plan);
        assert_eq!(
            second.plan.estimated_makespan_ms().to_bits(),
            scratch.plan.estimated_makespan_ms().to_bits()
        );
        assert_eq!(online.window_cache_len(), 2, "no duplicate entries");
        let snap = online.planner().telemetry().metrics.snapshot();
        assert_eq!(snap.counter("online.window_cache.misses"), Some(2));
        assert_eq!(snap.counter("online.window_cache.hits"), Some(2));
    }

    #[test]
    fn incremental_replans_only_changed_windows() {
        let soc = SocSpec::kirin_990();
        let online = OnlinePlanner::new(Planner::new(&soc).unwrap(), 4);
        let reqs = stream();
        online.plan_incremental(&reqs).unwrap(); // 2 windows memoized
                                                 // Change the second window only: its key misses, the first hits.
        let mut shifted = reqs.clone();
        shifted[6] = ModelId::InceptionV4.graph();
        let out = online.plan_incremental(&shifted).unwrap();
        assert_eq!(out.plan, online.plan(&shifted).unwrap().plan);
        let snap = online.planner().telemetry().metrics.snapshot();
        assert_eq!(snap.counter("online.window_cache.hits"), Some(1));
        assert_eq!(snap.counter("online.window_cache.misses"), Some(3));
        assert_eq!(online.window_cache_len(), 3);
    }

    #[test]
    fn clear_window_cache_forces_replanning() {
        let soc = SocSpec::kirin_990();
        let online = OnlinePlanner::new(Planner::new(&soc).unwrap(), 4);
        let reqs = stream();
        online.plan_incremental(&reqs).unwrap();
        assert_eq!(online.window_cache_len(), 2);
        online.clear_window_cache();
        assert_eq!(online.window_cache_len(), 0);
        let out = online.plan_incremental(&reqs).unwrap();
        assert_eq!(out.plan, online.plan(&reqs).unwrap().plan);
    }

    /// Pins cache invalidation on each key component independently: a
    /// change to the model set, the contention classes, or the processor
    /// list must each miss on its own.
    #[test]
    fn window_key_invalidates_on_each_component() {
        use h2p_contention::ContentionClass;
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let win = graphs(&[ModelId::ResNet50, ModelId::SqueezeNet]);
        let classes = vec![ContentionClass::Low, ContentionClass::High];
        let procs = planner.pipeline_procs();
        let planned = planner.plan(&win).unwrap();
        let entry = WindowEntry {
            graphs: win.clone(),
            classes: classes.clone(),
            procs: procs.clone(),
            planned,
        };
        assert!(entry.matches(&win, &classes, &procs), "unchanged key hits");
        // Component 1: model set (a different graph, same length).
        let other = graphs(&[ModelId::ResNet50, ModelId::AlexNet]);
        assert!(!entry.matches(&other, &classes, &procs));
        // ...and a different window length.
        assert!(!entry.matches(&win[..1], &classes[..1], &procs));
        // Component 2: contention class of any request.
        let flipped = vec![ContentionClass::Low, ContentionClass::Low];
        assert!(!entry.matches(&win, &flipped, &procs));
        // Component 3: processor availability (a dropped tail slot).
        let degraded = procs[..procs.len() - 1].to_vec();
        assert!(!entry.matches(&win, &classes, &degraded));
    }

    #[test]
    fn empty_incremental_stream_is_rejected() {
        let soc = SocSpec::kirin_990();
        let online = OnlinePlanner::new(Planner::new(&soc).unwrap(), 4);
        assert_eq!(
            online.plan_incremental(&[]).unwrap_err(),
            PlanError::EmptyRequestSet
        );
    }

    #[test]
    fn empty_stream_is_rejected() {
        let soc = SocSpec::kirin_990();
        let online = OnlinePlanner::new(Planner::new(&soc).unwrap(), 4);
        assert_eq!(online.plan(&[]).unwrap_err(), PlanError::EmptyRequestSet);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let soc = SocSpec::kirin_990();
        OnlinePlanner::new(Planner::new(&soc).unwrap(), 0);
    }
}
