//! Planner-side estimation: cost tables, contention classification and
//! stage-plan construction.
//!
//! The planner never sees the simulator's ground truth. It works from the
//! same information the paper's planner has on real hardware: solo
//! execution profiles (`T_e`), copy costs (`T_c`) and the regression-based
//! contention-intensity estimate of Sec. III. [`Estimator`] bundles those;
//! [`RequestContext`] caches per-request cost tables so partitioning and
//! work stealing can re-evaluate stage times in O(1) per query.

use h2p_contention::{ContentionClass, IntensityModel};
use h2p_models::cost::{CostModel, CostTable};
use h2p_models::graph::{LayerRange, ModelGraph};
use h2p_models::zoo::ModelId;
use h2p_simulator::processor::{ProcessorId, ProcessorKind};
use h2p_simulator::soc::SocSpec;

use crate::error::PlanError;
use crate::plan::{StagePlan, StageRun};

/// Bundles the cost model and the trained contention-intensity model.
#[derive(Debug, Clone)]
pub struct Estimator {
    cost: CostModel,
    intensity: IntensityModel,
    pmu_proc: ProcessorId,
}

impl Estimator {
    /// Creates an estimator for `soc`, training the intensity regression
    /// on the full model zoo profiled on the CPU Big cluster (the paper's
    /// PMU vantage point).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoCpu`] if the SoC lacks a big CPU cluster, or
    /// [`PlanError::Training`] if the regression cannot be fitted.
    pub fn new(soc: &SocSpec) -> Result<Self, PlanError> {
        Self::with_precision(soc, h2p_models::cost::Precision::Fp32)
    }

    /// Creates an estimator evaluating execution at the given numerical
    /// precision, trained on the built-in zoo.
    ///
    /// # Errors
    ///
    /// Same as [`Estimator::new`].
    pub fn with_precision(
        soc: &SocSpec,
        precision: h2p_models::cost::Precision,
    ) -> Result<Self, PlanError> {
        let zoo: Vec<ModelGraph> = ModelId::ALL.iter().map(|m| m.graph()).collect();
        let pmu_proc = soc
            .processor_by_kind(ProcessorKind::CpuBig)
            .ok_or(PlanError::NoCpu)?;
        let cost = CostModel::with_precision(soc, precision);
        let intensity =
            IntensityModel::train_default(&cost, &zoo, pmu_proc).map_err(PlanError::Training)?;
        Ok(Estimator {
            cost,
            intensity,
            pmu_proc,
        })
    }

    /// Creates an estimator trained on a custom profiling set.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoCpu`] if the SoC lacks a big CPU cluster, or
    /// [`PlanError::Training`] if the regression cannot be fitted.
    pub fn with_profiling_set(
        soc: &SocSpec,
        profiling_set: &[ModelGraph],
    ) -> Result<Self, PlanError> {
        let pmu_proc = soc
            .processor_by_kind(ProcessorKind::CpuBig)
            .ok_or(PlanError::NoCpu)?;
        let cost = CostModel::new(soc);
        let intensity = IntensityModel::train_default(&cost, profiling_set, pmu_proc)
            .map_err(PlanError::Training)?;
        Ok(Estimator {
            cost,
            intensity,
            pmu_proc,
        })
    }

    /// The underlying cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The trained intensity model.
    pub fn intensity_model(&self) -> &IntensityModel {
        &self.intensity
    }

    /// Predicted contention intensity of a model (regression output).
    pub fn predict_intensity(&self, graph: &ModelGraph) -> f64 {
        self.intensity.predict(&self.cost, graph, self.pmu_proc)
    }

    /// ℍ/𝕃 classification of a model.
    pub fn classify(&self, graph: &ModelGraph) -> ContentionClass {
        self.intensity.classify(&self.cost, graph, self.pmu_proc)
    }

    /// Builds the per-request context for `graph` on the given active
    /// slots of the pipeline's processor list.
    ///
    /// # Panics
    ///
    /// Panics if `active_slots` is empty or not strictly ascending.
    pub fn context(
        &self,
        graph: &ModelGraph,
        pipeline_procs: &[ProcessorId],
        active_slots: Vec<usize>,
    ) -> RequestContext {
        assert!(
            !active_slots.is_empty(),
            "a request needs at least one slot"
        );
        assert!(
            active_slots.windows(2).all(|w| w[0] < w[1]),
            "active slots must be strictly ascending"
        );
        let procs: Vec<ProcessorId> = active_slots.iter().map(|&s| pipeline_procs[s]).collect();
        let table = self.cost.table(graph, &procs);
        let npu_fallback = procs
            .iter()
            .position(|&p| self.cost.soc().processor(p).kind == ProcessorKind::Npu)
            .map(|stage| NpuFallback::build(&self.cost, graph, procs[stage], self.pmu_proc, stage));
        RequestContext {
            graph: graph.clone(),
            active_slots,
            procs,
            table,
            npu_fallback,
        }
    }
}

/// Operator-fallback cost arrays for the NPU stage (Sec. IV: unsupported
/// operators inside an NPU slice are forwarded to the CPU Big cluster,
/// paying a tensor copy at every supportability transition).
#[derive(Debug, Clone)]
struct NpuFallback {
    /// Which active stage is the NPU stage.
    stage: usize,
    npu: ProcessorId,
    fallback: ProcessorId,
    /// `lat_prefix[i]` = Σ effective latency of layers `0..i`, each on
    /// the NPU if supported, otherwise on the fallback CPU.
    lat_prefix: Vec<f64>,
    /// `copy_prefix[k]` = Σ transition-copy cost over boundaries `< k`;
    /// boundary `l` (between layers `l` and `l+1`) costs a copy iff the
    /// two layers run on different processors.
    copy_prefix: Vec<f64>,
    supported: Vec<bool>,
}

impl NpuFallback {
    fn build(
        cost: &CostModel,
        graph: &ModelGraph,
        npu: ProcessorId,
        fallback: ProcessorId,
        stage: usize,
    ) -> Self {
        let n = graph.len();
        let supported: Vec<bool> = graph
            .layers()
            .iter()
            .map(|l| l.op.npu_supported())
            .collect();
        let mut lat_prefix = Vec::with_capacity(n + 1);
        lat_prefix.push(0.0);
        for i in 0..n {
            let proc = if supported[i] { npu } else { fallback };
            // Invariant of the cost table: the fallback processor is a
            // CPU and CPUs support every operator, so the lookup cannot
            // miss. A miss would be a zoo/cost-model bug worth a crash.
            #[allow(clippy::expect_used)]
            let ms = cost
                .layer_latency_for(graph, i, proc)
                .expect("fallback CPU supports every operator");
            lat_prefix.push(lat_prefix[i] + ms);
        }
        let mut copy_prefix = Vec::with_capacity(n);
        copy_prefix.push(0.0);
        for l in 0..n.saturating_sub(1) {
            let c = if supported[l] != supported[l + 1] {
                let (from, to) = if supported[l] {
                    (npu, fallback)
                } else {
                    (fallback, npu)
                };
                cost.copy_ms(graph.boundary_bytes(l), from, to)
            } else {
                0.0
            };
            copy_prefix.push(copy_prefix[l] + c);
        }
        NpuFallback {
            stage,
            npu,
            fallback,
            lat_prefix,
            copy_prefix,
            supported,
        }
    }

    /// Effective execution time of layers `[i, j]` on the NPU stage,
    /// including fallback detours and transition copies.
    fn slice_ms(&self, i: usize, j: usize) -> f64 {
        self.lat_prefix[j + 1] - self.lat_prefix[i] + self.copy_prefix[j] - self.copy_prefix[i]
    }

    /// The homogeneous runs of slice `[i, j]` with per-run times (entry
    /// copies folded into the run that receives the tensor).
    fn runs(&self, i: usize, j: usize) -> Vec<StageRun> {
        let mut runs = Vec::new();
        let mut start = i;
        for l in i..=j {
            let boundary = l == j || self.supported[l] != self.supported[l + 1];
            if !boundary {
                continue;
            }
            let entry_copy = if start > i {
                self.copy_prefix[start] - self.copy_prefix[start - 1]
            } else {
                0.0
            };
            runs.push(StageRun {
                range: LayerRange::new(start, l),
                proc: if self.supported[start] {
                    self.npu
                } else {
                    self.fallback
                },
                ms: self.lat_prefix[l + 1] - self.lat_prefix[start] + entry_copy,
            });
            start = l + 1;
        }
        runs
    }
}

/// Cached per-request planning state: the model, its active slots within
/// the pipeline, and a prefix-sum cost table over those slots' processors.
#[derive(Debug, Clone)]
pub struct RequestContext {
    /// The model being planned.
    pub graph: ModelGraph,
    /// Indices into the pipeline's processor slots this request uses,
    /// strictly ascending.
    pub active_slots: Vec<usize>,
    /// The processors of the active slots, in order.
    pub procs: Vec<ProcessorId>,
    table: CostTable,
    npu_fallback: Option<NpuFallback>,
}

impl RequestContext {
    /// Number of active stages.
    pub fn stage_count(&self) -> usize {
        self.active_slots.len()
    }

    /// Number of layers of the model.
    pub fn layer_count(&self) -> usize {
        self.graph.len()
    }

    /// Stage cost `T(a, i, j)` for active stage `a` running layers
    /// `[i, j]`: solo execution plus the input-copy cost from the previous
    /// active stage's processor (Eq. 2's `T_e + T_c`). On the NPU stage,
    /// unsupported layers fall back to the CPU Big cluster with transition
    /// copies instead of making the stage infeasible. `None` if any layer
    /// is unsupported on a non-NPU stage's processor or the range is
    /// invalid.
    pub fn stage_cost(&self, cost: &CostModel, a: usize, i: usize, j: usize) -> Option<f64> {
        if i > j || j >= self.graph.len() {
            return None;
        }
        let exec = match &self.npu_fallback {
            Some(fb) if fb.stage == a => fb.slice_ms(i, j),
            _ => self.table.slice_ms(a, i, j)?,
        };
        Some(exec + self.copy_in_ms(cost, a, i))
    }

    /// The input-copy cost of active stage `a` when its slice starts at
    /// layer `i`.
    pub fn copy_in_ms(&self, cost: &CostModel, a: usize, i: usize) -> f64 {
        if a == 0 {
            return 0.0;
        }
        let bytes = if i == 0 {
            self.graph.input_bytes()
        } else {
            self.table.boundary_bytes(i - 1)
        };
        cost.copy_ms(bytes, self.procs[a - 1], self.procs[a])
    }

    /// Builds the full slot-indexed stage vector (length `total_slots`)
    /// from split points over the active stages. Returns `None` if any
    /// stage is infeasible.
    pub fn build_stages(
        &self,
        cost: &CostModel,
        splits: &[usize],
        total_slots: usize,
    ) -> Option<Vec<Option<StagePlan>>> {
        debug_assert_eq!(splits.len() + 1, self.stage_count());
        let n = self.graph.len();
        let mut stages: Vec<Option<StagePlan>> = vec![None; total_slots];
        let mut prev = 0usize;
        for (a, &end) in splits.iter().chain(std::iter::once(&n)).enumerate() {
            if end <= prev || end > n {
                return None;
            }
            let range = LayerRange::new(prev, end - 1);
            let proc = self.procs[a];
            let fallback_stage = self.npu_fallback.as_ref().filter(|fb| fb.stage == a);
            let (exec_ms, runs) = if let Some(fb) = fallback_stage {
                let runs = fb.runs(prev, end - 1);
                // A single homogeneous NPU run needs no lowering detail.
                let runs = if runs.len() == 1 && runs[0].proc == proc {
                    Vec::new()
                } else {
                    runs
                };
                (fb.slice_ms(prev, end - 1), runs)
            } else {
                (self.table.slice_ms(a, prev, end - 1)?, Vec::new())
            };
            let copy_in_ms = self.copy_in_ms(cost, a, prev);
            let bandwidth_gbps = if runs.is_empty() {
                self.cost_slice_bandwidth(cost, range, proc).unwrap_or(0.0)
            } else {
                // Mixed-processor stage: aggregate traffic over the runs.
                let traffic: f64 = runs
                    .iter()
                    .map(|r| {
                        cost.slice_traffic_bytes(&self.graph, r.range, r.proc)
                            .unwrap_or(0.0)
                    })
                    .sum();
                if exec_ms > 0.0 {
                    traffic / (exec_ms * 1e6)
                } else {
                    0.0
                }
            };
            let intensity = bandwidth_gbps / h2p_contention::counters::REFERENCE_BANDWIDTH_GBPS;
            let raw_footprint = self.graph.slice_weight_bytes(range)
                + self.graph.slice_input_bytes(range)
                + self.graph.boundary_bytes(range.last);
            let footprint_bytes = (raw_footprint as f64 * cost.footprint_scale()) as u64;
            stages[self.active_slots[a]] = Some(StagePlan {
                range,
                proc,
                exec_ms,
                copy_in_ms,
                intensity,
                bandwidth_gbps,
                footprint_bytes,
                runs,
            });
            prev = end;
        }
        Some(stages)
    }

    fn cost_slice_bandwidth(
        &self,
        cost: &CostModel,
        range: LayerRange,
        proc: ProcessorId,
    ) -> Option<f64> {
        cost.slice_bandwidth_gbps(&self.graph, range, proc)
    }

    /// Recovers the active-stage split points from a slot-indexed stage
    /// vector previously produced by [`RequestContext::build_stages`].
    ///
    /// # Panics
    ///
    /// Panics if the stage vector does not cover the model contiguously
    /// over this context's active slots.
    pub fn splits_of(&self, stages: &[Option<StagePlan>]) -> Vec<usize> {
        let mut splits = Vec::with_capacity(self.stage_count() - 1);
        for (a, &slot) in self.active_slots.iter().enumerate() {
            // Documented panic: callers must pass a vector produced by
            // `build_stages`, which populates every active slot.
            #[allow(clippy::expect_used)]
            let stage = stages[slot]
                .as_ref()
                .expect("stage vector must populate every active slot");
            if a + 1 < self.active_slots.len() {
                splits.push(stage.range.last + 1);
            }
        }
        splits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SocSpec, Estimator) {
        let soc = SocSpec::kirin_990();
        let est = Estimator::new(&soc).expect("kirin trains");
        (soc, est)
    }

    #[test]
    fn context_stage_cost_matches_cost_model() {
        let (soc, est) = setup();
        let g = ModelId::ResNet50.graph();
        let procs = soc.processors_by_power();
        let ctx = est.context(&g, &procs, vec![0, 1, 2, 3]);
        // Stage 0 (NPU), full model prefix.
        let direct = est
            .cost()
            .slice_latency_ms(&g, LayerRange::new(0, 4), procs[0])
            .unwrap();
        let via_ctx = ctx.stage_cost(est.cost(), 0, 0, 4).unwrap();
        assert!((direct - via_ctx).abs() < 1e-9, "stage 0 has no copy-in");
        // Stage 1 includes a copy-in.
        let exec = est
            .cost()
            .slice_latency_ms(&g, LayerRange::new(5, 8), procs[1])
            .unwrap();
        let with_copy = ctx.stage_cost(est.cost(), 1, 5, 8).unwrap();
        assert!(with_copy > exec, "copy-in must be added");
    }

    #[test]
    fn build_stages_round_trips_splits() {
        let (soc, est) = setup();
        let g = ModelId::GoogLeNet.graph();
        let procs = soc.processors_by_power();
        let ctx = est.context(&g, &procs, vec![0, 2, 3]);
        let splits = vec![5, 11];
        let stages = ctx.build_stages(est.cost(), &splits, procs.len()).unwrap();
        assert_eq!(stages.len(), procs.len());
        assert!(stages[1].is_none(), "slot 1 inactive");
        assert_eq!(ctx.splits_of(&stages), splits);
        // Ranges tile the model.
        assert_eq!(stages[0].as_ref().unwrap().range, LayerRange::new(0, 4));
        assert_eq!(stages[2].as_ref().unwrap().range, LayerRange::new(5, 10));
        assert_eq!(
            stages[3].as_ref().unwrap().range,
            LayerRange::new(11, g.len() - 1)
        );
    }

    #[test]
    fn npu_stage_with_unsupported_prefix_uses_operator_fallback() {
        let (soc, est) = setup();
        let g = ModelId::Bert.graph(); // embedding unsupported on NPU
        let procs = soc.processors_by_power();
        let ctx = est.context(&g, &procs, vec![0, 1]);
        // Slot 0 is the NPU and takes the embedding layer: the stage is
        // feasible via operator fallback to the CPU Big cluster.
        let stages = ctx
            .build_stages(est.cost(), &[3], procs.len())
            .expect("fallback makes the NPU stage feasible");
        let npu_stage = stages[0].as_ref().expect("NPU slot populated");
        assert!(!npu_stage.runs.is_empty(), "stage must carry its lowering");
        let cpu_b = soc.processor_by_name("CPU_B").unwrap();
        assert_eq!(npu_stage.runs[0].proc, cpu_b, "embedding runs on CPU_B");
        let npu = soc.processor_by_name("NPU").unwrap();
        assert_eq!(npu_stage.runs[1].proc, npu, "encoder prefix runs on NPU");
        // Fallback stage time exceeds the pure-NPU time of the supported
        // part (CPU detour + transition copy). Stage 0 covers layers 0..2.
        let supported_only = est
            .cost()
            .slice_latency_ms(&g, LayerRange::new(1, 2), npu)
            .unwrap();
        assert!(npu_stage.exec_ms > supported_only);
    }

    #[test]
    fn non_npu_stages_still_reject_unsupported_ranges() {
        let (soc, est) = setup();
        let g = ModelId::Bert.graph();
        let procs = soc.processors_by_power();
        // Context over NPU-only (single stage) on a model whose first
        // layer is unsupported: feasible via fallback...
        let ctx = est.context(&g, &procs, vec![0]);
        assert!(ctx.build_stages(est.cost(), &[], procs.len()).is_some());
        // ...and the cost accounts for the CPU detour.
        let fb = ctx.stage_cost(est.cost(), 0, 0, g.len() - 1).unwrap();
        let cpu_b = soc.processor_by_name("CPU_B").unwrap();
        let pure_cpu = est.cost().model_latency_ms(&g, cpu_b).unwrap();
        assert!(fb < pure_cpu, "mostly-NPU execution beats pure CPU");
    }

    #[test]
    fn classification_is_consistent_with_intensity_model() {
        let (_, est) = setup();
        let g = ModelId::SqueezeNet.graph();
        let i = est.predict_intensity(&g);
        let c = est.classify(&g);
        assert_eq!(
            c,
            est.intensity_model().classify_intensity(i),
            "classify must agree with predict"
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_slots_panic() {
        let (soc, est) = setup();
        let g = ModelId::AlexNet.graph();
        let procs = soc.processors_by_power();
        est.context(&g, &procs, vec![2, 1]);
    }

    #[test]
    fn snapdragon_without_npu_still_trains() {
        let soc = SocSpec::snapdragon_778g();
        assert!(Estimator::new(&soc).is_ok());
    }
}
