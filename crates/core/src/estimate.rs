//! Planner-side estimation: cost tables, contention classification and
//! stage-plan construction.
//!
//! The planner never sees the simulator's ground truth. It works from the
//! same information the paper's planner has on real hardware: solo
//! execution profiles (`T_e`), copy costs (`T_c`) and the regression-based
//! contention-intensity estimate of Sec. III. [`Estimator`] bundles those;
//! [`RequestContext`] caches per-request cost tables so partitioning and
//! work stealing can re-evaluate stage times in O(1) per query.
//!
//! Two construction paths exist for a [`RequestContext`]:
//!
//! * [`Estimator::context`] — self-contained: builds a fresh cost table
//!   over the active processors and computes copy-in costs on demand.
//!   This is the original (pre-caching) code path, kept as the planner's
//!   frozen sequential reference.
//! * [`Estimator::tables`] + [`RequestTables::context`] — the cached
//!   path: one full-pipeline prefix-sum table, one operator-fallback
//!   table and one copy-in curve per processor pair are built **once per
//!   request** and shared (`Arc`) by every processor-subset context the
//!   planner derives, so deriving a context is O(stages) and
//!   `stage_cost`/`copy_in_ms` are pure O(1) lookups. Both paths produce
//!   bit-identical stage costs.

use crate::sync::{Arc, Mutex};
use std::collections::HashMap;

use h2p_contention::{ContentionClass, IntensityModel};
use h2p_models::cost::{CostModel, CostTable};
use h2p_models::graph::{LayerRange, ModelGraph};
use h2p_models::zoo::ModelId;
use h2p_simulator::processor::{ProcessorId, ProcessorKind};
use h2p_simulator::soc::SocSpec;

use crate::error::PlanError;
use crate::partition::{self, DpScratch, PrefixStage};
use crate::plan::{StagePlan, StageRun};

/// Memoized intensity predictions, keyed by model name with a full graph
/// equality check per entry (names alone are not unique — batched graphs
/// share a base name).
type IntensityMemo = HashMap<String, Vec<(Arc<ModelGraph>, f64, ContentionClass)>>;

/// Cross-invocation memo for [`Estimator::tables_cached`]: per model name,
/// the `(graph, pipeline processors, tables)` triples already built. The
/// pipeline-processor list is part of the key because it encodes processor
/// availability (a dropped or depth-truncated slot changes the list), and
/// the graph is compared in full because names alone are not unique.
type TablesMemo = HashMap<String, Vec<(Arc<ModelGraph>, Vec<ProcessorId>, Arc<RequestTables>)>>;

/// Bundles the cost model and the trained contention-intensity model.
#[derive(Debug, Clone)]
pub struct Estimator {
    cost: CostModel,
    intensity: IntensityModel,
    pmu_proc: ProcessorId,
    /// Cross-call memo for [`Estimator::intensity_and_class`]; shared by
    /// clones of this estimator (planning the same model zoo repeatedly
    /// — the online re-planning case — hits the memo).
    intensity_memo: Arc<Mutex<IntensityMemo>>,
    /// Cross-invocation memo for [`Estimator::tables_cached`]; shared by
    /// clones. Re-planning the same model set every window reuses its
    /// prefix-sum cost tables via `Arc` instead of rebuilding them.
    tables_memo: Arc<Mutex<TablesMemo>>,
}

impl Estimator {
    /// Creates an estimator for `soc`, training the intensity regression
    /// on the full model zoo profiled on the CPU Big cluster (the paper's
    /// PMU vantage point).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoCpu`] if the SoC lacks a big CPU cluster, or
    /// [`PlanError::Training`] if the regression cannot be fitted.
    pub fn new(soc: &SocSpec) -> Result<Self, PlanError> {
        Self::with_precision(soc, h2p_models::cost::Precision::Fp32)
    }

    /// Creates an estimator evaluating execution at the given numerical
    /// precision, trained on the built-in zoo.
    ///
    /// # Errors
    ///
    /// Same as [`Estimator::new`].
    pub fn with_precision(
        soc: &SocSpec,
        precision: h2p_models::cost::Precision,
    ) -> Result<Self, PlanError> {
        let zoo: Vec<ModelGraph> = ModelId::ALL.iter().map(|m| m.graph()).collect();
        let pmu_proc = soc
            .processor_by_kind(ProcessorKind::CpuBig)
            .ok_or(PlanError::NoCpu)?;
        let cost = CostModel::with_precision(soc, precision);
        let intensity =
            IntensityModel::train_default(&cost, &zoo, pmu_proc).map_err(PlanError::Training)?;
        Ok(Estimator {
            cost,
            intensity,
            pmu_proc,
            intensity_memo: Arc::new(Mutex::new(HashMap::new())),
            tables_memo: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Creates an estimator trained on a custom profiling set.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoCpu`] if the SoC lacks a big CPU cluster, or
    /// [`PlanError::Training`] if the regression cannot be fitted.
    pub fn with_profiling_set(
        soc: &SocSpec,
        profiling_set: &[ModelGraph],
    ) -> Result<Self, PlanError> {
        let pmu_proc = soc
            .processor_by_kind(ProcessorKind::CpuBig)
            .ok_or(PlanError::NoCpu)?;
        let cost = CostModel::new(soc);
        let intensity = IntensityModel::train_default(&cost, profiling_set, pmu_proc)
            .map_err(PlanError::Training)?;
        Ok(Estimator {
            cost,
            intensity,
            pmu_proc,
            intensity_memo: Arc::new(Mutex::new(HashMap::new())),
            tables_memo: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// The underlying cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The trained intensity model.
    pub fn intensity_model(&self) -> &IntensityModel {
        &self.intensity
    }

    /// Predicted contention intensity of a model (regression output).
    pub fn predict_intensity(&self, graph: &ModelGraph) -> f64 {
        self.intensity.predict(&self.cost, graph, self.pmu_proc)
    }

    /// ℍ/𝕃 classification of a model.
    pub fn classify(&self, graph: &ModelGraph) -> ContentionClass {
        self.intensity.classify(&self.cost, graph, self.pmu_proc)
    }

    /// Memoized `(predict_intensity, classify)` pair. The memo key is the
    /// model name, verified with a full graph equality check, so a hit is
    /// exactly as correct as recomputing; repeated planning of the same
    /// models (the online case) skips the regression entirely.
    pub fn intensity_and_class(&self, graph: &Arc<ModelGraph>) -> (f64, ContentionClass) {
        self.intensity_and_class_of(graph)
    }

    /// [`Estimator::intensity_and_class`] for a borrowed graph: the same
    /// memo, cloning the graph into the memo only on a miss.
    pub fn intensity_and_class_of(&self, graph: &ModelGraph) -> (f64, ContentionClass) {
        let mut memo = match self.intensity_memo.lock() {
            Ok(guard) => guard,
            // The memo is a pure cache: a panic while holding the lock
            // cannot leave partial state, so a poisoned lock is usable.
            Err(poisoned) => poisoned.into_inner(),
        };
        let entries = memo.entry(graph.name().to_owned()).or_default();
        if let Some((_, i, c)) = entries.iter().find(|(g, _, _)| **g == *graph) {
            return (*i, *c);
        }
        let i = self.predict_intensity(graph);
        let c = self.classify(graph);
        entries.push((Arc::new(graph.clone()), i, c));
        (i, c)
    }

    /// Builds the per-request context for `graph` on the given active
    /// slots of the pipeline's processor list.
    ///
    /// This is the self-contained path: it clones the graph and builds a
    /// fresh cost table over the active processors. Planning loops that
    /// derive many contexts for the same request should build
    /// [`Estimator::tables`] once and derive contexts from it instead.
    ///
    /// # Panics
    ///
    /// Panics if `active_slots` is empty or not strictly ascending.
    pub fn context(
        &self,
        graph: &ModelGraph,
        pipeline_procs: &[ProcessorId],
        active_slots: Vec<usize>,
    ) -> RequestContext {
        assert_active_slots(&active_slots);
        let procs: Vec<ProcessorId> = active_slots.iter().map(|&s| pipeline_procs[s]).collect();
        let table = Arc::new(self.cost.table(graph, &procs));
        let npu_fallback = procs
            .iter()
            .position(|&p| self.cost.soc().processor(p).kind == ProcessorKind::Npu)
            .map(|stage| FallbackAt {
                stage,
                core: Arc::new(NpuFallback::build(
                    &self.cost,
                    graph,
                    procs[stage],
                    self.pmu_proc,
                )),
            });
        let rows = (0..active_slots.len()).collect();
        RequestContext {
            graph: Arc::new(graph.clone()),
            active_slots,
            procs,
            rows,
            table,
            copy_cache: None,
            npu_fallback,
        }
    }

    /// Builds the shared per-request tables over the **full** pipeline
    /// processor list: one prefix-sum cost table covering every slot, the
    /// operator-fallback arrays for the NPU slot (if any), and one
    /// copy-in curve per ordered slot pair. Deriving a context for any
    /// processor subset from the result is O(stages).
    pub fn tables(&self, graph: Arc<ModelGraph>, pipeline_procs: &[ProcessorId]) -> RequestTables {
        let k = pipeline_procs.len();
        let n = graph.len();
        let table = Arc::new(self.cost.table(&graph, pipeline_procs));
        let fallback = pipeline_procs
            .iter()
            .position(|&p| self.cost.soc().processor(p).kind == ProcessorKind::Npu)
            .map(|slot| {
                let core =
                    NpuFallback::build(&self.cost, &graph, pipeline_procs[slot], self.pmu_proc);
                (slot, Arc::new(core))
            });
        // Copy-in curve for a stage on slot `q` receiving from slot `p`:
        // curve[i] is the input-copy cost when the stage starts at layer
        // `i` — exactly what `copy_in_ms` computes on the fly.
        let empty = Arc::new(Vec::new());
        let mut copy_pairs = vec![Arc::clone(&empty); k * k];
        for p in 0..k {
            for q in (p + 1)..k {
                let curve: Vec<f64> = (0..n)
                    .map(|i| {
                        let bytes = if i == 0 {
                            graph.input_bytes()
                        } else {
                            graph.boundary_bytes(i - 1)
                        };
                        self.cost
                            .copy_ms(bytes, pipeline_procs[p], pipeline_procs[q])
                    })
                    .collect();
                copy_pairs[p * k + q] = Arc::new(curve);
            }
        }
        // Feasibility lowered for the branch-free DP kernel: per slot,
        // feas_from[j] is one past the last unsupported layer at or
        // before j, so feasible slice starts ending at j form the
        // suffix [feas_from[j], j] (see PrefixStage::Plain).
        let mut feas_from = vec![0u32; k * n];
        for (slot, row) in feas_from.chunks_mut(n).enumerate() {
            let un = table.unsupported_row(slot);
            let mut from = 0u32;
            for (i, cell) in row.iter_mut().enumerate() {
                if un[i + 1] - un[i] > 0 {
                    from = (i + 1) as u32;
                }
                *cell = from;
            }
        }
        RequestTables {
            graph,
            pipeline_procs: pipeline_procs.to_vec(),
            table,
            copy_pairs,
            feas_from,
            zero_copy: vec![0.0; n],
            fallback,
        }
    }

    /// The cross-invocation cached variant of [`Estimator::tables`]: the
    /// same model planned over the same pipeline-processor list (the same
    /// contention class follows, since the class is a pure function of the
    /// graph) reuses its shared tables via `Arc` instead of rebuilding
    /// them — the online re-planning case, where every window re-plans
    /// the same model set. Returns `(tables, hit)` so callers can record
    /// cache telemetry. A hit is exactly as correct as rebuilding: the
    /// memo key is the model name, verified with a full graph equality
    /// check plus an exact processor-list match (the processor list
    /// encodes availability — a dropped or depth-truncated slot changes
    /// it and therefore misses).
    pub fn tables_cached(
        &self,
        graph: &ModelGraph,
        pipeline_procs: &[ProcessorId],
    ) -> (Arc<RequestTables>, bool) {
        let mut memo = match self.tables_memo.lock() {
            Ok(guard) => guard,
            // Pure cache: a panic while holding the lock cannot leave
            // partial state, so a poisoned lock is usable.
            Err(poisoned) => poisoned.into_inner(),
        };
        let entries = memo.entry(graph.name().to_owned()).or_default();
        if let Some((_, _, tables)) = entries
            .iter()
            .find(|(g, procs, _)| procs == pipeline_procs && **g == *graph)
        {
            return (Arc::clone(tables), true);
        }
        let shared_graph = Arc::new(graph.clone());
        let tables = Arc::new(self.tables(Arc::clone(&shared_graph), pipeline_procs));
        entries.push((shared_graph, pipeline_procs.to_vec(), Arc::clone(&tables)));
        (tables, false)
    }

    /// Drops every cached [`RequestTables`] (shared by clones of this
    /// estimator). Subsequent lookups rebuild and re-populate.
    pub fn clear_tables_cache(&self) {
        let mut memo = match self.tables_memo.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        memo.clear();
    }
}

fn assert_active_slots(active_slots: &[usize]) {
    assert!(
        !active_slots.is_empty(),
        "a request needs at least one slot"
    );
    assert!(
        active_slots.windows(2).all(|w| w[0] < w[1]),
        "active slots must be strictly ascending"
    );
}

/// Shared per-request planning tables over the full pipeline processor
/// list (see [`Estimator::tables`]). Cloning is cheap (`Arc` internals);
/// deriving per-subset contexts does not rebuild any table.
#[derive(Debug, Clone)]
pub struct RequestTables {
    graph: Arc<ModelGraph>,
    pipeline_procs: Vec<ProcessorId>,
    table: Arc<CostTable>,
    /// `copy_pairs[p * k + q]` for `p < q`: per-start-layer copy-in cost
    /// from slot `p`'s processor to slot `q`'s. Unused pairs hold an
    /// empty curve.
    copy_pairs: Vec<Arc<Vec<f64>>>,
    /// `feas_from[slot * n + j]`: the smallest feasible start layer for
    /// a slice ending at `j` on `slot` (one past the last unsupported
    /// layer ≤ `j`), lowered from the unsupported prefix counts for the
    /// branch-free DP kernel.
    feas_from: Vec<u32>,
    /// `n` zeros: the stage-0 copy-in curve (the literal `+ 0.0` keeps
    /// the kernel's float-op order identical to the oracle path).
    zero_copy: Vec<f64>,
    /// `(pipeline slot of the NPU, fallback arrays)`, if the pipeline
    /// includes an NPU.
    fallback: Option<(usize, Arc<NpuFallback>)>,
}

impl RequestTables {
    /// The model these tables describe.
    pub fn graph(&self) -> &Arc<ModelGraph> {
        &self.graph
    }

    /// Number of pipeline processor slots covered.
    pub fn slot_count(&self) -> usize {
        self.pipeline_procs.len()
    }

    /// The full-pipeline prefix-sum cost table (row = pipeline slot).
    pub(crate) fn table(&self) -> &CostTable {
        &self.table
    }

    /// The NPU slot and its operator-fallback arrays, if present.
    pub(crate) fn fallback(&self) -> Option<(usize, &NpuFallback)> {
        self.fallback.as_ref().map(|(s, core)| (*s, core.as_ref()))
    }

    /// Lowers pipeline stage `a` of the ordered `slots` subset into the
    /// branch-free prefix slices the DP kernel consumes.
    fn dp_stage(&self, slots: &[usize], a: usize) -> PrefixStage<'_> {
        let n = self.graph.len();
        let k = self.pipeline_procs.len();
        let slot = slots[a];
        let copy: &[f64] = if a == 0 {
            &self.zero_copy
        } else {
            self.copy_pairs[slots[a - 1] * k + slot].as_slice()
        };
        match &self.fallback {
            Some((fb_slot, fb)) if *fb_slot == slot => PrefixStage::Fallback {
                lp: &fb.lat_prefix,
                cp: &fb.copy_prefix,
                copy,
            },
            _ => PrefixStage::Plain {
                pm: self.table.prefix_row(slot),
                feas_from: &self.feas_from[slot * n..(slot + 1) * n],
                copy,
            },
        }
    }

    /// Runs the flat DP kernel ([`partition::min_max_partition_prefix`])
    /// for the ordered active-slot subset `slots`, directly over these
    /// tables' prefix arrays — no per-cell closure, no `Option`, no
    /// allocation once `scratch` is warm. Returns the minimized makespan
    /// and leaves the split points in [`DpScratch::splits`].
    ///
    /// Bit-identical to [`crate::partition::min_max_partition`] over
    /// `RequestContext::stage_cost` of [`RequestTables::context`] on the
    /// same slots (pinned by unit tests and planner debug assertions).
    /// `threads` bounds the intra-row fan-out; `1` is fully sequential.
    pub fn partition_into(
        &self,
        slots: &[usize],
        threads: usize,
        scratch: &mut DpScratch,
    ) -> Option<f64> {
        partition::min_max_partition_prefix(
            self.graph.len(),
            slots.len(),
            threads,
            |a| self.dp_stage(slots, a),
            scratch,
        )
    }

    /// Derives the context for the given active slots, sharing every
    /// table. Produces bit-identical stage costs to the self-contained
    /// [`Estimator::context`] over the same slots.
    ///
    /// # Panics
    ///
    /// Panics if `active_slots` is empty or not strictly ascending.
    pub fn context(&self, active_slots: Vec<usize>) -> RequestContext {
        assert_active_slots(&active_slots);
        let k = self.pipeline_procs.len();
        let procs: Vec<ProcessorId> = active_slots
            .iter()
            .map(|&s| self.pipeline_procs[s])
            .collect();
        let npu_fallback = self.fallback.as_ref().and_then(|(slot, core)| {
            active_slots
                .iter()
                .position(|&s| s == *slot)
                .map(|stage| FallbackAt {
                    stage,
                    core: Arc::clone(core),
                })
        });
        // copy_cache[a] for stage a >= 1 is the (p, q) curve of the
        // adjacent active slots; entry 0 is never read (stage 0 has no
        // copy-in).
        let mut copy_cache = Vec::with_capacity(active_slots.len());
        copy_cache.push(Arc::new(Vec::new()));
        for w in active_slots.windows(2) {
            copy_cache.push(Arc::clone(&self.copy_pairs[w[0] * k + w[1]]));
        }
        RequestContext {
            graph: Arc::clone(&self.graph),
            rows: active_slots.clone(),
            active_slots,
            procs,
            table: Arc::clone(&self.table),
            copy_cache: Some(copy_cache),
            npu_fallback,
        }
    }
}

/// Operator-fallback cost arrays for an NPU stage (Sec. IV: unsupported
/// operators inside an NPU slice are forwarded to the CPU Big cluster,
/// paying a tensor copy at every supportability transition). The arrays
/// depend only on the model and the (NPU, fallback-CPU) pair, so one
/// instance is shared by every context of a request.
#[derive(Debug, Clone)]
pub(crate) struct NpuFallback {
    npu: ProcessorId,
    fallback: ProcessorId,
    /// `lat_prefix[i]` = Σ effective latency of layers `0..i`, each on
    /// the NPU if supported, otherwise on the fallback CPU.
    pub(crate) lat_prefix: Vec<f64>,
    /// `copy_prefix[k]` = Σ transition-copy cost over boundaries `< k`;
    /// boundary `l` (between layers `l` and `l+1`) costs a copy iff the
    /// two layers run on different processors.
    pub(crate) copy_prefix: Vec<f64>,
    supported: Vec<bool>,
}

impl NpuFallback {
    fn build(
        cost: &CostModel,
        graph: &ModelGraph,
        npu: ProcessorId,
        fallback: ProcessorId,
    ) -> Self {
        let n = graph.len();
        let supported: Vec<bool> = graph
            .layers()
            .iter()
            .map(|l| l.op.npu_supported())
            .collect();
        let mut lat_prefix = Vec::with_capacity(n + 1);
        lat_prefix.push(0.0);
        for i in 0..n {
            let proc = if supported[i] { npu } else { fallback };
            // Invariant of the cost table: the fallback processor is a
            // CPU and CPUs support every operator, so the lookup cannot
            // miss. A miss would be a zoo/cost-model bug worth a crash.
            #[allow(clippy::expect_used)]
            let ms = cost
                .layer_latency_for(graph, i, proc)
                .expect("fallback CPU supports every operator");
            lat_prefix.push(lat_prefix[i] + ms);
        }
        let mut copy_prefix = Vec::with_capacity(n);
        copy_prefix.push(0.0);
        for l in 0..n.saturating_sub(1) {
            let c = if supported[l] != supported[l + 1] {
                let (from, to) = if supported[l] {
                    (npu, fallback)
                } else {
                    (fallback, npu)
                };
                cost.copy_ms(graph.boundary_bytes(l), from, to)
            } else {
                0.0
            };
            copy_prefix.push(copy_prefix[l] + c);
        }
        NpuFallback {
            npu,
            fallback,
            lat_prefix,
            copy_prefix,
            supported,
        }
    }

    /// The processor that absorbs NPU-unsupported operators.
    pub(crate) fn fallback_proc(&self) -> ProcessorId {
        self.fallback
    }

    /// Whether any layer of the model actually takes the fallback
    /// detour (an all-supported model never leaves the NPU).
    pub(crate) fn needs_fallback(&self) -> bool {
        self.supported.iter().any(|s| !s)
    }

    /// Effective execution time of layers `[i, j]` on the NPU stage,
    /// including fallback detours and transition copies.
    pub(crate) fn slice_ms(&self, i: usize, j: usize) -> f64 {
        self.lat_prefix[j + 1] - self.lat_prefix[i] + self.copy_prefix[j] - self.copy_prefix[i]
    }

    /// The homogeneous runs of slice `[i, j]` with per-run times (entry
    /// copies folded into the run that receives the tensor).
    fn runs(&self, i: usize, j: usize) -> Vec<StageRun> {
        let mut runs = Vec::new();
        let mut start = i;
        for l in i..=j {
            let boundary = l == j || self.supported[l] != self.supported[l + 1];
            if !boundary {
                continue;
            }
            let entry_copy = if start > i {
                self.copy_prefix[start] - self.copy_prefix[start - 1]
            } else {
                0.0
            };
            runs.push(StageRun {
                range: LayerRange::new(start, l),
                proc: if self.supported[start] {
                    self.npu
                } else {
                    self.fallback
                },
                ms: self.lat_prefix[l + 1] - self.lat_prefix[start] + entry_copy,
            });
            start = l + 1;
        }
        runs
    }
}

/// An NPU fallback bound to the active stage that hosts it.
#[derive(Debug, Clone)]
struct FallbackAt {
    /// Which active stage is the NPU stage.
    stage: usize,
    core: Arc<NpuFallback>,
}

/// Cached per-request planning state: the model, its active slots within
/// the pipeline, and a prefix-sum cost table over those slots' processors.
#[derive(Debug, Clone)]
pub struct RequestContext {
    /// The model being planned (shared, never deep-cloned on the
    /// planning path).
    pub graph: Arc<ModelGraph>,
    /// Indices into the pipeline's processor slots this request uses,
    /// strictly ascending.
    pub active_slots: Vec<usize>,
    /// The processors of the active slots, in order.
    pub procs: Vec<ProcessorId>,
    /// Table row of each active stage (identity for self-contained
    /// tables; the pipeline slot index for shared full-pipeline tables).
    rows: Vec<usize>,
    table: Arc<CostTable>,
    /// Precomputed copy-in curves per active stage (shared path only);
    /// `None` falls back to computing copies on demand.
    copy_cache: Option<Vec<Arc<Vec<f64>>>>,
    npu_fallback: Option<FallbackAt>,
}

impl RequestContext {
    /// Number of active stages.
    pub fn stage_count(&self) -> usize {
        self.active_slots.len()
    }

    /// Number of layers of the model.
    pub fn layer_count(&self) -> usize {
        self.graph.len()
    }

    /// Stage cost `T(a, i, j)` for active stage `a` running layers
    /// `[i, j]`: solo execution plus the input-copy cost from the previous
    /// active stage's processor (Eq. 2's `T_e + T_c`). On the NPU stage,
    /// unsupported layers fall back to the CPU Big cluster with transition
    /// copies instead of making the stage infeasible. `None` if any layer
    /// is unsupported on a non-NPU stage's processor or the range is
    /// invalid.
    pub fn stage_cost(&self, cost: &CostModel, a: usize, i: usize, j: usize) -> Option<f64> {
        if i > j || j >= self.graph.len() {
            return None;
        }
        let exec = match &self.npu_fallback {
            Some(fb) if fb.stage == a => fb.core.slice_ms(i, j),
            _ => self.table.slice_ms(self.rows[a], i, j)?,
        };
        Some(exec + self.copy_in_ms(cost, a, i))
    }

    /// The input-copy cost of active stage `a` when its slice starts at
    /// layer `i`.
    pub fn copy_in_ms(&self, cost: &CostModel, a: usize, i: usize) -> f64 {
        if a == 0 {
            return 0.0;
        }
        if let Some(cache) = &self.copy_cache {
            return cache[a][i];
        }
        let bytes = if i == 0 {
            self.graph.input_bytes()
        } else {
            self.table.boundary_bytes(i - 1)
        };
        cost.copy_ms(bytes, self.procs[a - 1], self.procs[a])
    }

    /// Builds the full slot-indexed stage vector (length `total_slots`)
    /// from split points over the active stages. Returns `None` if any
    /// stage is infeasible.
    pub fn build_stages(
        &self,
        cost: &CostModel,
        splits: &[usize],
        total_slots: usize,
    ) -> Option<Vec<Option<StagePlan>>> {
        debug_assert_eq!(splits.len() + 1, self.stage_count());
        let n = self.graph.len();
        let mut stages: Vec<Option<StagePlan>> = vec![None; total_slots];
        let mut prev = 0usize;
        for (a, &end) in splits.iter().chain(std::iter::once(&n)).enumerate() {
            if end <= prev || end > n {
                return None;
            }
            let range = LayerRange::new(prev, end - 1);
            let proc = self.procs[a];
            let fallback_stage = self
                .npu_fallback
                .as_ref()
                .filter(|fb| fb.stage == a)
                .map(|fb| fb.core.as_ref());
            let (exec_ms, runs) = if let Some(fb) = fallback_stage {
                let runs = fb.runs(prev, end - 1);
                // A single homogeneous NPU run needs no lowering detail.
                let runs = if runs.len() == 1 && runs[0].proc == proc {
                    Vec::new()
                } else {
                    runs
                };
                (fb.slice_ms(prev, end - 1), runs)
            } else {
                (
                    self.table.slice_ms(self.rows[a], prev, end - 1)?,
                    Vec::new(),
                )
            };
            let copy_in_ms = self.copy_in_ms(cost, a, prev);
            let bandwidth_gbps = if runs.is_empty() {
                self.cost_slice_bandwidth(cost, range, proc).unwrap_or(0.0)
            } else {
                // Mixed-processor stage: aggregate traffic over the runs.
                let traffic: f64 = runs
                    .iter()
                    .map(|r| {
                        cost.slice_traffic_bytes(&self.graph, r.range, r.proc)
                            .unwrap_or(0.0)
                    })
                    .sum();
                if exec_ms > 0.0 {
                    traffic / (exec_ms * 1e6)
                } else {
                    0.0
                }
            };
            let intensity = bandwidth_gbps / h2p_contention::counters::REFERENCE_BANDWIDTH_GBPS;
            let raw_footprint = self.graph.slice_weight_bytes(range)
                + self.graph.slice_input_bytes(range)
                + self.graph.boundary_bytes(range.last);
            let footprint_bytes = (raw_footprint as f64 * cost.footprint_scale()) as u64;
            stages[self.active_slots[a]] = Some(StagePlan {
                range,
                proc,
                exec_ms,
                copy_in_ms,
                intensity,
                bandwidth_gbps,
                footprint_bytes,
                runs,
            });
            prev = end;
        }
        Some(stages)
    }

    fn cost_slice_bandwidth(
        &self,
        cost: &CostModel,
        range: LayerRange,
        proc: ProcessorId,
    ) -> Option<f64> {
        cost.slice_bandwidth_gbps(&self.graph, range, proc)
    }

    /// Recovers the active-stage split points from a slot-indexed stage
    /// vector previously produced by [`RequestContext::build_stages`].
    ///
    /// # Panics
    ///
    /// Panics if the stage vector does not cover the model contiguously
    /// over this context's active slots.
    pub fn splits_of(&self, stages: &[Option<StagePlan>]) -> Vec<usize> {
        let mut splits = Vec::with_capacity(self.stage_count() - 1);
        for (a, &slot) in self.active_slots.iter().enumerate() {
            // Documented panic: callers must pass a vector produced by
            // `build_stages`, which populates every active slot.
            #[allow(clippy::expect_used)]
            let stage = stages[slot]
                .as_ref()
                .expect("stage vector must populate every active slot");
            if a + 1 < self.active_slots.len() {
                splits.push(stage.range.last + 1);
            }
        }
        splits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SocSpec, Estimator) {
        let soc = SocSpec::kirin_990();
        let est = Estimator::new(&soc).expect("kirin trains");
        (soc, est)
    }

    #[test]
    fn context_stage_cost_matches_cost_model() {
        let (soc, est) = setup();
        let g = ModelId::ResNet50.graph();
        let procs = soc.processors_by_power();
        let ctx = est.context(&g, &procs, vec![0, 1, 2, 3]);
        // Stage 0 (NPU), full model prefix.
        let direct = est
            .cost()
            .slice_latency_ms(&g, LayerRange::new(0, 4), procs[0])
            .unwrap();
        let via_ctx = ctx.stage_cost(est.cost(), 0, 0, 4).unwrap();
        assert!((direct - via_ctx).abs() < 1e-9, "stage 0 has no copy-in");
        // Stage 1 includes a copy-in.
        let exec = est
            .cost()
            .slice_latency_ms(&g, LayerRange::new(5, 8), procs[1])
            .unwrap();
        let with_copy = ctx.stage_cost(est.cost(), 1, 5, 8).unwrap();
        assert!(with_copy > exec, "copy-in must be added");
    }

    #[test]
    fn shared_tables_context_matches_self_contained_context() {
        let (soc, est) = setup();
        let procs = soc.processors_by_power();
        for id in [ModelId::ResNet50, ModelId::Bert, ModelId::YoloV4] {
            let g = id.graph();
            let tables = est.tables(Arc::new(g.clone()), &procs);
            for slots in [
                vec![0usize],
                vec![2],
                vec![0, 1],
                vec![1, 3],
                vec![0, 2, 3],
                vec![0, 1, 2, 3],
            ] {
                let a = est.context(&g, &procs, slots.clone());
                let b = tables.context(slots.clone());
                let n = g.len();
                for stage in 0..slots.len() {
                    for i in 0..n {
                        for j in i..n.min(i + 7) {
                            let ca = a.stage_cost(est.cost(), stage, i, j);
                            let cb = b.stage_cost(est.cost(), stage, i, j);
                            match (ca, cb) {
                                (None, None) => {}
                                (Some(x), Some(y)) => assert_eq!(
                                    x.to_bits(),
                                    y.to_bits(),
                                    "{id} slots {slots:?} stage {stage} [{i},{j}]"
                                ),
                                _ => panic!(
                                    "feasibility mismatch: {id} slots {slots:?} \
                                     stage {stage} [{i},{j}]: {ca:?} vs {cb:?}"
                                ),
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn partition_into_matches_oracle_dp_bit_for_bit() {
        // The flat kernel over the lowered prefix slices must equal the
        // Option-oracle reference DP over the derived context: same
        // feasibility, same split points, same makespan bits — for
        // plain, NPU-fallback (BERT's embedding) and unsupported-range
        // (YOLO's plain NPU row) stages alike.
        let (soc, est) = setup();
        let procs = soc.processors_by_power();
        let mut scratch = crate::partition::DpScratch::new();
        for id in [ModelId::ResNet50, ModelId::Bert, ModelId::YoloV4] {
            let g = id.graph();
            let n = g.len();
            let tables = est.tables(Arc::new(g.clone()), &procs);
            for slots in [
                vec![0usize],
                vec![1],
                vec![0, 1],
                vec![1, 3],
                vec![0, 2, 3],
                vec![0, 1, 2, 3],
            ] {
                let ctx = tables.context(slots.clone());
                let oracle = crate::partition::min_max_partition(n, slots.len(), |a, i, j| {
                    ctx.stage_cost(est.cost(), a, i, j)
                });
                let kernel = tables.partition_into(&slots, 1, &mut scratch);
                match (oracle, kernel) {
                    (None, None) => {}
                    (Some(p), Some(ms)) => {
                        assert_eq!(
                            p.makespan_ms.to_bits(),
                            ms.to_bits(),
                            "{id} slots {slots:?}: makespan bits"
                        );
                        assert_eq!(p.splits, scratch.splits(), "{id} slots {slots:?}: splits");
                    }
                    (o, k) => panic!("{id} slots {slots:?}: feasibility diverged: {o:?} vs {k:?}"),
                }
            }
        }
    }

    #[test]
    fn intensity_memo_matches_direct_calls() {
        let (_, est) = setup();
        let g = Arc::new(ModelId::SqueezeNet.graph());
        let (i1, c1) = est.intensity_and_class(&g);
        assert_eq!(i1.to_bits(), est.predict_intensity(&g).to_bits());
        assert_eq!(c1, est.classify(&g));
        // Second call hits the memo and must agree bit-for-bit.
        let (i2, c2) = est.intensity_and_class(&g);
        assert_eq!(i1.to_bits(), i2.to_bits());
        assert_eq!(c1, c2);
        // A same-name but different graph must not hit the wrong entry.
        let batched = Arc::new(crate::batching::batched_graph(&g, 2));
        let (ib, _) = est.intensity_and_class(&batched);
        assert_eq!(ib.to_bits(), est.predict_intensity(&batched).to_bits());
    }

    #[test]
    fn build_stages_round_trips_splits() {
        let (soc, est) = setup();
        let g = ModelId::GoogLeNet.graph();
        let procs = soc.processors_by_power();
        let ctx = est.context(&g, &procs, vec![0, 2, 3]);
        let splits = vec![5, 11];
        let stages = ctx.build_stages(est.cost(), &splits, procs.len()).unwrap();
        assert_eq!(stages.len(), procs.len());
        assert!(stages[1].is_none(), "slot 1 inactive");
        assert_eq!(ctx.splits_of(&stages), splits);
        // Ranges tile the model.
        assert_eq!(stages[0].as_ref().unwrap().range, LayerRange::new(0, 4));
        assert_eq!(stages[2].as_ref().unwrap().range, LayerRange::new(5, 10));
        assert_eq!(
            stages[3].as_ref().unwrap().range,
            LayerRange::new(11, g.len() - 1)
        );
    }

    #[test]
    fn npu_stage_with_unsupported_prefix_uses_operator_fallback() {
        let (soc, est) = setup();
        let g = ModelId::Bert.graph(); // embedding unsupported on NPU
        let procs = soc.processors_by_power();
        let ctx = est.context(&g, &procs, vec![0, 1]);
        // Slot 0 is the NPU and takes the embedding layer: the stage is
        // feasible via operator fallback to the CPU Big cluster.
        let stages = ctx
            .build_stages(est.cost(), &[3], procs.len())
            .expect("fallback makes the NPU stage feasible");
        let npu_stage = stages[0].as_ref().expect("NPU slot populated");
        assert!(!npu_stage.runs.is_empty(), "stage must carry its lowering");
        let cpu_b = soc.processor_by_name("CPU_B").unwrap();
        assert_eq!(npu_stage.runs[0].proc, cpu_b, "embedding runs on CPU_B");
        let npu = soc.processor_by_name("NPU").unwrap();
        assert_eq!(npu_stage.runs[1].proc, npu, "encoder prefix runs on NPU");
        // Fallback stage time exceeds the pure-NPU time of the supported
        // part (CPU detour + transition copy). Stage 0 covers layers 0..2.
        let supported_only = est
            .cost()
            .slice_latency_ms(&g, LayerRange::new(1, 2), npu)
            .unwrap();
        assert!(npu_stage.exec_ms > supported_only);
    }

    #[test]
    fn non_npu_stages_still_reject_unsupported_ranges() {
        let (soc, est) = setup();
        let g = ModelId::Bert.graph();
        let procs = soc.processors_by_power();
        // Context over NPU-only (single stage) on a model whose first
        // layer is unsupported: feasible via fallback...
        let ctx = est.context(&g, &procs, vec![0]);
        assert!(ctx.build_stages(est.cost(), &[], procs.len()).is_some());
        // ...and the cost accounts for the CPU detour.
        let fb = ctx.stage_cost(est.cost(), 0, 0, g.len() - 1).unwrap();
        let cpu_b = soc.processor_by_name("CPU_B").unwrap();
        let pure_cpu = est.cost().model_latency_ms(&g, cpu_b).unwrap();
        assert!(fb < pure_cpu, "mostly-NPU execution beats pure CPU");
    }

    #[test]
    fn classification_is_consistent_with_intensity_model() {
        let (_, est) = setup();
        let g = ModelId::SqueezeNet.graph();
        let i = est.predict_intensity(&g);
        let c = est.classify(&g);
        assert_eq!(
            c,
            est.intensity_model().classify_intensity(i),
            "classify must agree with predict"
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_slots_panic() {
        let (soc, est) = setup();
        let g = ModelId::AlexNet.graph();
        let procs = soc.processors_by_power();
        est.context(&g, &procs, vec![2, 1]);
    }

    #[test]
    fn snapdragon_without_npu_still_trains() {
        let soc = SocSpec::snapdragon_778g();
        assert!(Estimator::new(&soc).is_ok());
    }
}
