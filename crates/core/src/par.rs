//! Minimal deterministic parallel runtime for the planner's hot loops.
//!
//! The planner's three expensive loops — per-request DP partitioning,
//! candidate-order evaluation and per-window online planning — are
//! embarrassingly parallel: every item is computed from shared read-only
//! state and the results are combined by index. This module provides
//! exactly that shape on top of scoped threads, with every primitive
//! (cursor atomics, stop flag, spawn/join) routed through the
//! [`crate::sync`] shim so the `h2p-check` model checker can explore
//! schedules of these exact loops:
//!
//! * no `unsafe`, no new dependencies, no thread pool — workers live only
//!   for the duration of one call;
//! * a shared atomic cursor hands out item indices in order, each worker
//!   records `(index, result)` pairs, and the merge places results back
//!   by index — so the output is **independent of thread count and
//!   scheduling**, the determinism contract the planner's equivalence
//!   proptest pins down;
//! * [`try_map`] reports the error of the **lowest-index** failing item,
//!   matching what a sequential short-circuiting loop would return.
//!
//! A worker panic propagates out of the scope and aborts the whole map,
//! exactly like a panic in the equivalent sequential loop.

use crate::sync::{self, AtomicBool, AtomicUsize, Ordering};

/// The number of worker threads to use by default: the machine's
/// available parallelism, or 1 if it cannot be queried. Routed through
/// the [`sync`] shim so a model-check exploration can present a virtual
/// core count (fan-out must happen even on a single-core host for the
/// checker to have schedules to explore).
pub fn available_parallelism() -> usize {
    sync::available_parallelism()
}

/// Below this many items a map takes the sequential path outright: a
/// scoped-thread spawn costs tens of microseconds, so fanning out a
/// single item can only lose.
pub const MIN_PARALLEL_ITEMS: usize = 2;

/// The number of workers a map over `items` items actually spawns when
/// asked for `threads`: never more workers than items (a worker with
/// nothing to claim is pure spawn overhead), and never more than the
/// machine's available parallelism (oversubscribed scoped threads only
/// time-slice one another — the measured `plan/t4`-loses-to-`plan/t1`
/// regression on single-core hosts). `1` means the caller runs the loop
/// sequentially with zero thread-scope setup.
pub fn worker_count(threads: usize, items: usize) -> usize {
    if items < MIN_PARALLEL_ITEMS {
        return 1;
    }
    threads.min(items).min(available_parallelism()).max(1)
}

/// How many contiguous items a worker claims per cursor fetch. Small maps
/// (the planner's: a handful of requests or candidate orders, each worth
/// hundreds of microseconds) claim one item at a time for best load
/// balance; large maps claim runs of items so the shared cursor is
/// touched O(workers) times instead of O(items). Chunks are contiguous
/// and the cursor is monotone, so the claimed set is always a prefix of
/// the items regardless of chunk size.
fn chunk_size(items: usize, workers: usize) -> usize {
    (items / (workers * 8)).max(1)
}

/// Splits `len` items into at most `workers` contiguous, near-even
/// `(start, end)` half-open spans (the first `len % workers` spans are
/// one longer). Used by the DP row fan-out, where each span of a row is
/// written by exactly one worker: static bounds instead of a cursor,
/// because every span costs the same and the split must be borrowable
/// as disjoint `&mut` sub-slices up front.
pub fn span_bounds(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let w = workers.clamp(1, len.max(1));
    let base = len / w;
    let extra = len % w;
    let mut bounds = Vec::with_capacity(w);
    let mut start = 0;
    for i in 0..w {
        let size = base + usize::from(i < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Applies `f` to every item and returns the results in item order.
///
/// With `threads <= 1` (or fewer than two items) this is a plain
/// sequential map; otherwise up to `threads` scoped workers (including
/// the calling thread) pull indices from a shared cursor. The result is
/// bit-identical either way as long as `f` is a pure function of
/// `(index, item)`.
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_count(threads, items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = chunk_size(items.len(), workers);
    let cursor = AtomicUsize::new(0);
    let run = |_worker: usize| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= items.len() {
                break;
            }
            let end = (start + chunk).min(items.len());
            for (idx, item) in items[start..end].iter().enumerate() {
                let idx = start + idx;
                local.push((idx, f(idx, item)));
            }
        }
        local
    };
    let mut produced: Vec<Vec<(usize, R)>> = sync::scope(|scope| {
        let handles: Vec<_> = (1..workers).map(|w| scope.spawn(move || run(w))).collect();
        let mut all = vec![run(0)];
        for h in handles {
            // A panicked worker re-raises here, unwinding the scope.
            match h.join() {
                Ok(local) => all.push(local),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        all
    });
    // Deterministic index-ordered merge.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for local in produced.drain(..) {
        for (idx, value) in local {
            slots[idx] = Some(value);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(idx, v)| match v {
            Some(v) => v,
            // Unreachable: the cursor hands out every index exactly once
            // and worker panics abort the scope above.
            None => panic!("par::map lost the result of item {idx}"),
        })
        .collect()
}

/// Fallible variant of [`map`]: returns all results in item order, or the
/// error of the lowest-index failing item — the same error a sequential
/// short-circuiting loop would surface. After the first error is
/// observed, workers stop claiming new items (already-claimed items still
/// run to completion, keeping the claimed set a prefix of the items, which
/// is what makes the lowest-index rule exact).
pub fn try_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let workers = worker_count(threads, items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect::<Result<Vec<R>, E>>();
    }
    let chunk = chunk_size(items.len(), workers);
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let run = |_worker: usize| {
        let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
        loop {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= items.len() {
                break;
            }
            // A claimed chunk runs to completion even if another worker
            // fails meanwhile — the claimed set stays a prefix of the
            // items, which is what makes the lowest-index rule exact.
            let end = (start + chunk).min(items.len());
            for (idx, item) in items[start..end].iter().enumerate() {
                let idx = start + idx;
                let out = f(idx, item);
                if out.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                local.push((idx, out));
            }
        }
        local
    };
    let mut produced: Vec<Vec<(usize, Result<R, E>)>> = sync::scope(|scope| {
        let handles: Vec<_> = (1..workers).map(|w| scope.spawn(move || run(w))).collect();
        let mut all = vec![run(0)];
        for h in handles {
            match h.join() {
                Ok(local) => all.push(local),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        all
    });
    let mut slots: Vec<Option<Result<R, E>>> = (0..items.len()).map(|_| None).collect();
    for local in produced.drain(..) {
        for (idx, value) in local {
            slots[idx] = Some(value);
        }
    }
    // First error in index order wins; on success every slot is filled.
    let mut out = Vec::with_capacity(items.len());
    for (idx, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            // Only reachable when an error tripped the stop flag before
            // this index was claimed; the error lives at a lower index
            // and was returned above — reaching here is a runtime bug.
            None => panic!("par::try_map lost item {idx} without an error"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_for_all_thread_counts() {
        let items: Vec<usize> = (0..37).collect();
        let seq: Vec<usize> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 4, 8, 64] {
            let par = map(threads, &items, |_, &x| x * x + 1);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn map_passes_item_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = map(4, &items, |idx, &s| format!("{idx}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn try_map_collects_all_on_success() {
        let items: Vec<i64> = (0..23).collect();
        for threads in [1, 2, 4] {
            let out: Result<Vec<i64>, ()> = try_map(threads, &items, |_, &x| Ok(x * 2));
            assert_eq!(out, Ok(items.iter().map(|&x| x * 2).collect()));
        }
    }

    #[test]
    fn try_map_reports_lowest_index_error() {
        // Items 5, 11 and 17 fail; the reported error must always be 5's,
        // matching a sequential short-circuit, for every thread count.
        let items: Vec<usize> = (0..32).collect();
        for threads in [1, 2, 4, 8] {
            let out: Result<Vec<usize>, String> = try_map(threads, &items, |_, &x| {
                if x == 5 || x == 11 || x == 17 {
                    Err(format!("boom at {x}"))
                } else {
                    Ok(x)
                }
            });
            assert_eq!(out, Err("boom at 5".to_owned()), "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        let _ = map(4, &items, |_, &x| {
            if x == 9 {
                panic!("worker exploded");
            }
            x
        });
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn worker_count_clamps_to_items_and_parallelism() {
        // Fewer than MIN_PARALLEL_ITEMS items: always sequential.
        assert_eq!(worker_count(8, 0), 1);
        assert_eq!(worker_count(8, 1), 1);
        // Never more workers than items...
        assert!(worker_count(4, 2) <= 2);
        assert!(worker_count(64, 3) <= 3);
        // ...or than the machine can actually run concurrently.
        assert!(worker_count(64, 1000) <= available_parallelism());
        // Zero threads degrades to sequential, not a panic.
        assert_eq!(worker_count(0, 8), 1);
    }

    #[test]
    fn span_bounds_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 64, 513] {
            for workers in [1usize, 2, 3, 4, 16] {
                let bounds = span_bounds(len, workers);
                assert!(bounds.len() <= workers.max(1));
                let mut expect = 0;
                for &(start, end) in &bounds {
                    assert_eq!(start, expect, "len={len} workers={workers}");
                    assert!(end >= start);
                    expect = end;
                }
                assert_eq!(expect, len, "len={len} workers={workers}");
                // Near-even: no span more than one longer than another.
                if let (Some(max), Some(min)) = (
                    bounds.iter().map(|(s, e)| e - s).max(),
                    bounds.iter().map(|(s, e)| e - s).min(),
                ) {
                    assert!(max - min <= 1, "len={len} workers={workers}");
                }
            }
        }
    }

    #[test]
    fn chunk_size_balances_small_maps_per_item() {
        // Planner-scale maps claim one item at a time.
        assert_eq!(chunk_size(4, 4), 1);
        assert_eq!(chunk_size(16, 4), 1);
        // Large maps amortize the cursor without starving workers.
        let chunk = chunk_size(10_000, 4);
        assert!(chunk > 1 && chunk * 4 <= 10_000);
    }
}
