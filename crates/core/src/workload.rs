//! Seeded random workload generation for the evaluation harness.
//!
//! The paper's Fig. 7/8 experiments sample "100 random model combinations"
//! from the ten-network zoo. All generators here take explicit seeds so
//! every experiment is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use h2p_models::zoo::ModelId;

/// A random sequence of `len` models drawn uniformly from the zoo.
pub fn random_models(seed: u64, len: usize) -> Vec<ModelId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| ModelId::ALL[rng.gen_range(0..ModelId::ALL.len())])
        .collect()
}

/// `count` random model combinations with lengths drawn uniformly from
/// `min_len..=max_len`, as used for the Fig. 7 and Fig. 8 sample sets.
///
/// # Panics
///
/// Panics if `min_len == 0` or `min_len > max_len`.
pub fn random_combinations(
    seed: u64,
    count: usize,
    min_len: usize,
    max_len: usize,
) -> Vec<Vec<ModelId>> {
    assert!(min_len > 0 && min_len <= max_len, "invalid length range");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(min_len..=max_len);
            (0..len)
                .map(|_| ModelId::ALL[rng.gen_range(0..ModelId::ALL.len())])
                .collect()
        })
        .collect()
}

/// Poisson arrival times: `n` arrivals with exponentially distributed
/// inter-arrival gaps of mean `mean_interarrival_ms`, starting at 0.
///
/// # Panics
///
/// Panics if `mean_interarrival_ms` is not positive.
pub fn poisson_arrivals(seed: u64, n: usize, mean_interarrival_ms: f64) -> Vec<f64> {
    assert!(
        mean_interarrival_ms > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|i| {
            if i > 0 {
                let u: f64 = rng.gen_range(1e-12..1.0);
                t += -mean_interarrival_ms * u.ln();
            }
            t
        })
        .collect()
}

/// A bursty stream of lightweight requests punctuated by heavy models —
/// the Appendix-D batching scenario (continuous MobileNetV2/SqueezeNet
/// classification alongside heavyweight requests).
pub fn lightweight_burst_stream(seed: u64, bursts: usize, burst_len: usize) -> Vec<ModelId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let light = [ModelId::MobileNetV2, ModelId::SqueezeNet];
    let heavy = [ModelId::Bert, ModelId::Vit, ModelId::YoloV4];
    let mut out = Vec::new();
    for _ in 0..bursts {
        let l = light[rng.gen_range(0..light.len())];
        out.extend(std::iter::repeat_n(l, burst_len));
        out.push(heavy[rng.gen_range(0..heavy.len())]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        assert_eq!(random_models(42, 20), random_models(42, 20));
        assert_ne!(random_models(42, 20), random_models(43, 20));
        assert_eq!(
            random_combinations(7, 10, 3, 8),
            random_combinations(7, 10, 3, 8)
        );
    }

    #[test]
    fn combinations_respect_length_bounds() {
        for combo in random_combinations(1, 50, 3, 8) {
            assert!((3..=8).contains(&combo.len()));
        }
    }

    #[test]
    fn all_models_appear_eventually() {
        let seq = random_models(5, 500);
        for id in ModelId::ALL {
            assert!(seq.contains(&id), "{id} missing from a 500-draw sample");
        }
    }

    #[test]
    fn burst_stream_alternates_light_runs_and_heavies() {
        let s = lightweight_burst_stream(9, 4, 6);
        assert_eq!(s.len(), 4 * 7);
        let heavies = s.iter().filter(|m| !m.is_lightweight()).count();
        assert_eq!(heavies, 4);
    }

    #[test]
    #[should_panic(expected = "length range")]
    fn bad_length_range_panics() {
        random_combinations(1, 1, 5, 2);
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_start_at_zero() {
        let a = poisson_arrivals(3, 50, 100.0);
        assert_eq!(a.len(), 50);
        assert_eq!(a[0], 0.0);
        assert!(a.windows(2).all(|w| w[1] >= w[0]));
        // The mean gap approaches the requested mean.
        let mean_gap = a.last().unwrap() / 49.0;
        assert!((50.0..200.0).contains(&mean_gap), "got {mean_gap}");
        assert_eq!(a, poisson_arrivals(3, 50, 100.0), "seeded determinism");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interarrival_panics() {
        poisson_arrivals(1, 3, 0.0);
    }
}
