//! Pipeline plans and bubble accounting (Definitions 1–3).
//!
//! A [`PipelinePlan`] arranges an ordered sequence of inference requests
//! over the SoC's processor slots (ordered by descending power, Sec. IV).
//! Each request carries one [`StagePlan`] per slot it uses; requests with
//! NPU-unsupported operators may skip the NPU slot entirely (operator
//! fallback), leaving that slot idle for their column.
//!
//! In the staggered pipeline, the stage of the request at position `r` on
//! slot `k` executes in **column** `j = r + k`; all cells of a column run
//! concurrently on different processors. The paper's bubble size (Eq. 3)
//! is, per column,
//!
//! ```text
//! |B_j| = Σ_{cells ∈ column j} ( max_cell_time − cell_time )
//! ```
//!
//! and Property 1 observes that total latency is linear in total bubbles,
//! which is why the planner minimizes bubbles.

use serde::{Deserialize, Serialize};

use h2p_contention::ContentionClass;
use h2p_models::graph::LayerRange;
use h2p_simulator::interference::slowdown_for;
use h2p_simulator::processor::ProcessorId;
use h2p_simulator::soc::SocSpec;

/// Contention sensitivity of a stage given its own emitted intensity:
/// memory-bound slices both emit and absorb more interference.
pub fn sensitivity(intensity: f64) -> f64 {
    0.5 + 0.5 * intensity.clamp(0.0, 2.0)
}

/// Stable small hash of a model name for staging-dedup keys.
fn model_key(name: &str) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    h.finish() as usize
}

/// One contiguous sub-run of a stage during NPU operator fallback: a run
/// of layers executing on a single processor, including the copy cost of
/// entering the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRun {
    /// Layers of this run.
    pub range: LayerRange,
    /// Processor the run executes on (the stage's NPU, or the fallback
    /// CPU for unsupported operators).
    pub proc: ProcessorId,
    /// Execution time of the run plus its entry copy, in ms.
    pub ms: f64,
}

/// One model slice mapped onto one processor slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// The layer slice this stage executes.
    pub range: LayerRange,
    /// Processor the slice runs on.
    pub proc: ProcessorId,
    /// Estimated solo execution time of the slice (the paper's `T_e`),
    /// including any operator-fallback detours and their copies.
    pub exec_ms: f64,
    /// Estimated tensor-copy time for the slice's input (`T_c`).
    pub copy_in_ms: f64,
    /// Contention intensity the slice emits while running.
    pub intensity: f64,
    /// Average DRAM bandwidth demand in GB/s.
    pub bandwidth_gbps: f64,
    /// Resident footprint (weights + boundary activations) in bytes.
    pub footprint_bytes: u64,
    /// Operator-fallback lowering: non-empty when the slice contains
    /// NPU-unsupported runs that execute on the fallback CPU (Sec. IV:
    /// "forwarding the sub-model to the CPU Big cores"). Empty for a
    /// homogeneous stage.
    pub runs: Vec<StageRun>,
}

impl StagePlan {
    /// Total planned stage time: execution plus input copy.
    pub fn total_ms(&self) -> f64 {
        self.exec_ms + self.copy_in_ms
    }
}

/// The full plan for one inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestPlan {
    /// Index of the request in the original submission order.
    pub request: usize,
    /// Model name, for reports.
    pub model: String,
    /// One entry per processor slot; `None` where the request skips the
    /// slot (e.g. NPU fallback).
    pub stages: Vec<Option<StagePlan>>,
    /// Estimated model-level contention intensity (regression output).
    pub intensity: f64,
    /// ℍ/𝕃 classification used by contention mitigation.
    pub class: ContentionClass,
}

impl RequestPlan {
    /// Planned time of the stage at `slot` (0 when the slot is skipped).
    pub fn stage_ms(&self, slot: usize) -> f64 {
        self.stages
            .get(slot)
            .and_then(|s| s.as_ref())
            .map_or(0.0, StagePlan::total_ms)
    }

    /// Sum of all planned stage times (the request's pipeline traversal
    /// work, excluding waiting).
    pub fn total_ms(&self) -> f64 {
        self.stages.iter().flatten().map(StagePlan::total_ms).sum()
    }

    /// Number of slots the request actually occupies.
    pub fn active_stage_count(&self) -> usize {
        self.stages.iter().flatten().count()
    }
}

/// A complete pipeline plan: processor slots plus the ordered requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinePlan {
    /// Processors by slot, ordered by descending power.
    pub procs: Vec<ProcessorId>,
    /// Requests in final (possibly re-ordered) execution order.
    pub requests: Vec<RequestPlan>,
}

impl PipelinePlan {
    /// The pipeline depth `K` (number of processor slots).
    pub fn depth(&self) -> usize {
        self.procs.len()
    }

    /// Number of columns in the staggered execution:
    /// `|M| + K − 1` (Def. 3), 0 for an empty plan.
    pub fn column_count(&self) -> usize {
        if self.requests.is_empty() {
            0
        } else {
            self.requests.len() + self.depth() - 1
        }
    }

    /// The cells of column `j`: `(position, slot, stage_ms)` of every
    /// stage executing concurrently in that column.
    pub fn column_cells(&self, j: usize) -> Vec<(usize, usize, f64)> {
        let k = self.depth();
        let mut cells = Vec::new();
        for slot in 0..k {
            if j < slot {
                continue;
            }
            let pos = j - slot;
            if pos >= self.requests.len() {
                continue;
            }
            if let Some(stage) = self.requests[pos].stages.get(slot).and_then(|s| s.as_ref()) {
                cells.push((pos, slot, stage.total_ms()));
            }
        }
        cells
    }

    /// The bubble size `|B_j|` of column `j` (Eq. 3).
    pub fn bubble_ms(&self, j: usize) -> f64 {
        let cells = self.column_cells(j);
        let max = cells.iter().map(|c| c.2).fold(0.0, f64::max);
        cells.iter().map(|c| max - c.2).sum()
    }

    /// Total bubbles over all columns — the vertical objective (Eq. 5).
    pub fn total_bubble_ms(&self) -> f64 {
        (0..self.column_count()).map(|j| self.bubble_ms(j)).sum()
    }

    /// Synchronous-pipeline makespan estimate: columns execute one after
    /// another, each lasting its slowest cell. The simulator refines this
    /// with interference; Property 1's linearity makes the estimate a
    /// faithful planning objective.
    pub fn estimated_makespan_ms(&self) -> f64 {
        (0..self.column_count())
            .map(|j| self.column_cells(j).iter().map(|c| c.2).fold(0.0, f64::max))
            .sum()
    }

    /// Allocation-free twin of [`PipelinePlan::estimated_makespan_ms`]
    /// that evaluates the makespan *as if* request `pos`'s stages were
    /// replaced by `stages`, without mutating the plan. Cells are folded
    /// in the same slot-ascending order with the same `f64::max`/sum
    /// operations, so the result is bit-identical to substituting the
    /// stages and calling `estimated_makespan_ms` — which is what the
    /// cached tail search relies on.
    pub fn estimated_makespan_ms_substituting(
        &self,
        pos: usize,
        stages: &[Option<StagePlan>],
    ) -> f64 {
        let k = self.depth();
        let m = self.requests.len();
        if m == 0 {
            return 0.0;
        }
        let mut total = 0.0f64;
        for j in 0..(m + k - 1) {
            let mut max = 0.0f64;
            for slot in 0..k {
                if j < slot {
                    continue;
                }
                let p = j - slot;
                if p >= m {
                    continue;
                }
                let row: &[Option<StagePlan>] = if p == pos {
                    stages
                } else {
                    &self.requests[p].stages
                };
                if let Some(stage) = row.get(slot).and_then(|s| s.as_ref()) {
                    max = f64::max(max, stage.total_ms());
                }
            }
            total += max;
        }
        total
    }

    /// Contention-aware makespan estimate (Eq. 2's `T_co` term folded
    /// into planning): a deterministic list schedule — every stage starts
    /// at `max(processor available, previous stage done)`, the same FIFO
    /// discipline the executor lowers to — with each stage's duration
    /// stretched by the co-execution slowdown from its column co-mates
    /// under the SoC's coupling matrix, plus first-touch weight-staging
    /// charged exactly as the executor charges it. This is the planning
    /// objective that makes the planner *contention-aware*, the paper's
    /// central claim.
    pub fn estimated_makespan_contention_ms(&self, soc: &SocSpec) -> f64 {
        let n_procs = soc.processors.len();
        let mut avail = vec![0.0f64; n_procs];
        let mut seen: std::collections::HashSet<(usize, usize, usize, usize)> =
            std::collections::HashSet::new();
        let mut makespan = 0.0f64;
        for (pos, req) in self.requests.iter().enumerate() {
            let mut prev_end = 0.0f64;
            for (slot, stage) in req.stages.iter().enumerate() {
                let Some(stage) = stage else { continue };
                let key = (
                    model_key(&req.model),
                    stage.proc.index(),
                    stage.range.first,
                    stage.range.last,
                );
                let upload = if seen.insert(key) {
                    stage.footprint_bytes as f64 / (crate::executor::WEIGHT_STAGING_GBPS * 1e6)
                } else {
                    0.0
                };
                // Expected co-runners: the other cells of this stage's
                // column in the staggered schedule.
                let cells = self.column_cells(pos + slot);
                let corunners = cells
                    .iter()
                    .filter(|&&(p2, s2, _)| !(p2 == pos && s2 == slot));
                let slow = slowdown_for(
                    &soc.coupling,
                    soc.processor(stage.proc),
                    sensitivity(stage.intensity),
                    // `column_cells` only yields populated cells, so the
                    // filter_map never actually drops anything.
                    corunners.filter_map(|&(p2, s2, _)| {
                        self.requests[p2].stages[s2]
                            .as_ref()
                            .map(|other| (soc.processor(other.proc), other.intensity))
                    }),
                );
                let dur = (stage.total_ms() + upload) * (1.0 + slow);
                let start = avail[stage.proc.index()].max(prev_end);
                let end = start + dur;
                avail[stage.proc.index()] = end;
                prev_end = end;
                makespan = makespan.max(end);
            }
        }
        makespan
    }

    /// Estimated throughput in completed inferences per second.
    pub fn estimated_throughput(&self) -> f64 {
        let m = self.estimated_makespan_ms();
        if m <= 0.0 {
            0.0
        } else {
            self.requests.len() as f64 * 1000.0 / m
        }
    }

    /// Peak concurrent memory footprint across columns (Constraint 6):
    /// the largest sum of stage footprints executing simultaneously.
    pub fn peak_footprint_bytes(&self) -> u64 {
        (0..self.column_count())
            .map(|j| {
                self.column_cells(j)
                    .iter()
                    .map(|&(pos, slot, _)| {
                        self.requests[pos].stages[slot]
                            .as_ref()
                            .map_or(0, |s| s.footprint_bytes)
                    })
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }

    /// Positions (in execution order) of the high-contention requests.
    pub fn high_positions(&self) -> Vec<usize> {
        self.requests
            .iter()
            .enumerate()
            .filter(|(_, r)| r.class.is_high())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(ms: f64) -> Option<StagePlan> {
        Some(StagePlan {
            range: LayerRange::new(0, 0),
            proc: ProcessorId(0),
            exec_ms: ms,
            copy_in_ms: 0.0,
            intensity: 0.0,
            bandwidth_gbps: 0.0,
            footprint_bytes: 100,
            runs: Vec::new(),
        })
    }

    fn request(times: &[f64]) -> RequestPlan {
        RequestPlan {
            request: 0,
            model: "toy".to_owned(),
            stages: times.iter().map(|&t| stage(t)).collect(),
            intensity: 0.0,
            class: ContentionClass::Low,
        }
    }

    fn plan(reqs: Vec<RequestPlan>, k: usize) -> PipelinePlan {
        PipelinePlan {
            procs: (0..k).map(ProcessorId).collect(),
            requests: reqs,
        }
    }

    #[test]
    fn perfectly_balanced_pipeline_has_zero_bubbles() {
        let p = plan(vec![request(&[2.0, 2.0]), request(&[2.0, 2.0])], 2);
        assert_eq!(p.total_bubble_ms(), 0.0);
        // Columns: [r0s0], [r1s0 | r0s1], [r1s1] => 2+2+2.
        assert_eq!(p.estimated_makespan_ms(), 6.0);
    }

    #[test]
    fn column_indexing_is_staggered() {
        let p = plan(vec![request(&[1.0, 2.0]), request(&[3.0, 4.0])], 2);
        assert_eq!(p.column_count(), 3);
        assert_eq!(p.column_cells(0), vec![(0, 0, 1.0)]);
        let c1 = p.column_cells(1);
        assert_eq!(c1.len(), 2);
        assert!(c1.contains(&(1, 0, 3.0)));
        assert!(c1.contains(&(0, 1, 2.0)));
        assert_eq!(p.column_cells(2), vec![(1, 1, 4.0)]);
    }

    #[test]
    fn bubbles_measure_misalignment() {
        // Column 1: cells 3.0 and 2.0 => bubble 1.0.
        let p = plan(vec![request(&[1.0, 2.0]), request(&[3.0, 4.0])], 2);
        assert_eq!(p.bubble_ms(1), 1.0);
        assert_eq!(p.total_bubble_ms(), 1.0);
        assert_eq!(p.estimated_makespan_ms(), 1.0 + 3.0 + 4.0);
    }

    #[test]
    fn skipped_slots_leave_columns_thin() {
        let mut r = request(&[1.0, 2.0]);
        r.stages[0] = None; // NPU fallback: request skips slot 0.
        let p = plan(vec![r, request(&[3.0, 4.0])], 2);
        assert_eq!(p.column_cells(0), vec![]);
        assert_eq!(p.bubble_ms(0), 0.0);
        let c1 = p.column_cells(1);
        assert_eq!(c1.len(), 2);
    }

    #[test]
    fn empty_plan_is_well_behaved() {
        let p = plan(vec![], 3);
        assert_eq!(p.column_count(), 0);
        assert_eq!(p.total_bubble_ms(), 0.0);
        assert_eq!(p.estimated_makespan_ms(), 0.0);
        assert_eq!(p.estimated_throughput(), 0.0);
        assert_eq!(p.peak_footprint_bytes(), 0);
    }

    #[test]
    fn peak_footprint_sums_concurrent_stages() {
        let p = plan(vec![request(&[1.0, 1.0]), request(&[1.0, 1.0])], 2);
        // Column 1 has two concurrent stages of 100 bytes each.
        assert_eq!(p.peak_footprint_bytes(), 200);
    }

    #[test]
    fn copy_time_counts_into_stage_time() {
        let mut s = stage(2.0).unwrap();
        s.copy_in_ms = 0.5;
        assert_eq!(s.total_ms(), 2.5);
    }

    #[test]
    fn contention_estimate_lower_bounds_hold() {
        let soc = SocSpec::kirin_990();
        // Two requests, two slots on distinct processors, no intensities:
        // the list schedule is exact pipeline algebra.
        // Columns: [r0s0], [r1s0|r0s1], [r1s1] => 2+2+2.
        let two_proc = |times: &[f64]| {
            let mut r = request(times);
            for (slot, s) in r.stages.iter_mut().enumerate() {
                s.as_mut().unwrap().proc = ProcessorId(slot);
            }
            r
        };
        let p = plan(vec![two_proc(&[2.0, 2.0]), two_proc(&[2.0, 2.0])], 2);
        let est = p.estimated_makespan_contention_ms(&soc);
        // Zero-intensity stages see no slowdown; footprint 100 bytes of
        // staging is negligible. List schedule: 2+2+2 = 6.
        assert!((est - 6.0).abs() < 0.01, "got {est}");
        // Adding a request never shrinks the estimate.
        let bigger = plan(
            vec![
                two_proc(&[2.0, 2.0]),
                two_proc(&[2.0, 2.0]),
                two_proc(&[2.0, 2.0]),
            ],
            2,
        );
        assert!(bigger.estimated_makespan_contention_ms(&soc) > est);
    }

    #[test]
    fn contention_stretches_the_estimate() {
        let soc = SocSpec::kirin_990();
        let mut hot = request(&[10.0, 10.0]);
        for s in hot.stages.iter_mut().flatten() {
            // Place on CPU_B (slot handled below) with high intensity.
            s.intensity = 1.5;
        }
        // Put the two stages on CPU_B and GPU so they collide in columns.
        let cpu = soc.processor_by_name("CPU_B").unwrap();
        let gpu = soc.processor_by_name("GPU").unwrap();
        let assign = |req: &mut RequestPlan| {
            req.stages[0].as_mut().unwrap().proc = cpu;
            req.stages[1].as_mut().unwrap().proc = gpu;
        };
        let mut a = hot.clone();
        let mut b = hot.clone();
        assign(&mut a);
        assign(&mut b);
        let contended = PipelinePlan {
            procs: vec![cpu, gpu],
            requests: vec![a.clone(), b.clone()],
        };
        let mut quiet_a = a.clone();
        let mut quiet_b = b.clone();
        for s in quiet_a.stages.iter_mut().flatten() {
            s.intensity = 0.0;
        }
        for s in quiet_b.stages.iter_mut().flatten() {
            s.intensity = 0.0;
        }
        let quiet = PipelinePlan {
            procs: vec![cpu, gpu],
            requests: vec![quiet_a, quiet_b],
        };
        let hot_est = contended.estimated_makespan_contention_ms(&soc);
        let quiet_est = quiet.estimated_makespan_contention_ms(&soc);
        assert!(
            hot_est > quiet_est * 1.05,
            "CPU-GPU column collision must stretch the estimate: {hot_est} vs {quiet_est}"
        );
    }

    #[test]
    fn high_positions_filters_by_class() {
        let mut a = request(&[1.0]);
        a.class = ContentionClass::High;
        let b = request(&[1.0]);
        let mut c = request(&[1.0]);
        c.class = ContentionClass::High;
        let p = plan(vec![a, b, c], 1);
        assert_eq!(p.high_positions(), vec![0, 2]);
    }
}
