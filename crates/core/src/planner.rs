//! The two-step Hetero²Pipe planner (Sec. V).
//!
//! [`Planner::plan`] performs, in order:
//!
//! 1. **Horizontal partitioning (P1)** — for every request, enumerate the
//!    feasible ordered subsets of the SoC's power-ranked processors (the
//!    NPU slot is skipped automatically for models with unsupported
//!    operators — the fallback path), run the dynamic program of
//!    Algorithm 1 on each, and keep the minimum-makespan partition.
//! 2. **Contention mitigation (Algorithm 2)** — classify requests into
//!    ℍ/𝕃 with the ridge-regression intensity model and re-order the
//!    sequence so ℍ requests sit at least `K` apart, solving the
//!    relocation LAP with Kuhn–Munkres.
//! 3. **Vertical alignment (Algorithm 3)** — work stealing towards each
//!    contention window's critical path, plus tail-bubble collapse.
//!
//! Steps 2 and 3 can be disabled individually through
//! [`PlannerConfig`] — that is exactly the paper's "No C/T" ablation
//! baseline.

use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::soc::SocSpec;

use crate::error::PlanError;
use crate::estimate::{Estimator, RequestContext};
use crate::mitigation::{self, MitigationOutcome};
use crate::partition::min_max_partition;
use crate::plan::{PipelinePlan, RequestPlan};
use crate::worksteal::{self, StealReport};

/// Feature switches and limits for the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Enable the Algorithm-2 re-ordering pass.
    pub contention_mitigation: bool,
    /// Enable Algorithm-3 work stealing.
    pub work_stealing: bool,
    /// Enable the tail-bubble local search.
    pub tail_optimization: bool,
    /// Maximum pipeline depth (number of processor slots used).
    pub max_depth: usize,
    /// Numerical precision the deployment executes at.
    pub precision: h2p_models::cost::Precision,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            contention_mitigation: true,
            work_stealing: true,
            tail_optimization: true,
            max_depth: 4,
            precision: h2p_models::cost::Precision::Fp32,
        }
    }
}

impl PlannerConfig {
    /// The paper's "No C/T" ablation: contention mitigation and tail
    /// optimization disabled (work stealing stays on).
    pub fn no_ct() -> Self {
        PlannerConfig {
            contention_mitigation: false,
            tail_optimization: false,
            ..PlannerConfig::default()
        }
    }
}

/// A fully planned pipeline, ready for execution.
#[derive(Debug, Clone)]
pub struct PlannedPipeline {
    /// The plan: processor slots and ordered request stage assignments.
    pub plan: PipelinePlan,
    /// Per-request planning contexts, indexed by *original* request index.
    pub contexts: Vec<RequestContext>,
    /// Outcome of the mitigation pass, if it ran.
    pub mitigation: Option<MitigationOutcome>,
    /// Outcome of the work-stealing pass, if it ran.
    pub steal: Option<StealReport>,
    /// Number of tail requests collapsed onto a single processor.
    pub tail_merges: usize,
}

/// The Hetero²Pipe planner bound to one SoC.
#[derive(Debug, Clone)]
pub struct Planner {
    soc: SocSpec,
    estimator: Estimator,
    config: PlannerConfig,
}

impl Planner {
    /// Creates a planner with the default configuration, training the
    /// contention-intensity model on the built-in zoo.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the SoC lacks a big CPU cluster or the
    /// intensity regression cannot be trained.
    pub fn new(soc: &SocSpec) -> Result<Self, PlanError> {
        Self::with_config(soc, PlannerConfig::default())
    }

    /// Creates a planner with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Same as [`Planner::new`].
    pub fn with_config(soc: &SocSpec, config: PlannerConfig) -> Result<Self, PlanError> {
        Ok(Planner {
            soc: soc.clone(),
            estimator: Estimator::with_precision(soc, config.precision)?,
            config,
        })
    }

    /// The SoC this planner targets.
    pub fn soc(&self) -> &SocSpec {
        &self.soc
    }

    /// The planner's estimator (cost + intensity models).
    pub fn estimator(&self) -> &Estimator {
        &self.estimator
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// The pipeline's processor slots: power-ranked, truncated to
    /// `max_depth`.
    pub fn pipeline_procs(&self) -> Vec<h2p_simulator::ProcessorId> {
        let mut procs = self.soc.processors_by_power();
        procs.truncate(self.config.max_depth.max(1));
        procs
    }

    /// Horizontal step only: the best feasible partition of one request
    /// over the pipeline slots, trying every ordered processor subset and
    /// keeping the minimum makespan (P1).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoFeasiblePipeline`] if the model cannot be
    /// placed at all.
    pub fn plan_request(
        &self,
        graph: &ModelGraph,
    ) -> Result<(RequestContext, Vec<usize>, f64), PlanError> {
        let procs = self.pipeline_procs();
        let k_slots = procs.len();
        let cost = self.estimator.cost();
        let mut best: Option<(RequestContext, Vec<usize>, f64)> = None;
        for mask in 1u32..(1 << k_slots) {
            let slots: Vec<usize> = (0..k_slots).filter(|&s| mask & (1 << s) != 0).collect();
            if slots.len() > graph.len() {
                continue;
            }
            let ctx = self.estimator.context(graph, &procs, slots);
            let stages = ctx.stage_count();
            let Some(p) =
                min_max_partition(graph.len(), stages, |a, i, j| ctx.stage_cost(cost, a, i, j))
            else {
                continue;
            };
            if best
                .as_ref()
                .is_none_or(|(_, _, ms)| p.makespan_ms + 1e-12 < *ms)
            {
                best = Some((ctx, p.splits, p.makespan_ms));
            }
        }
        best.ok_or_else(|| PlanError::NoFeasiblePipeline {
            model: graph.name().to_owned(),
        })
    }

    /// Runs the full two-step planning pipeline over `requests`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptyRequestSet`] for an empty input and
    /// [`PlanError::NoFeasiblePipeline`] if any model cannot be placed.
    pub fn plan(&self, requests: &[ModelGraph]) -> Result<PlannedPipeline, PlanError> {
        if requests.is_empty() {
            return Err(PlanError::EmptyRequestSet);
        }
        let procs = self.pipeline_procs();
        let k = procs.len();
        let cost = self.estimator.cost();

        // Step 1: horizontal partitioning, independently per request.
        let mut contexts: Vec<RequestContext> = Vec::with_capacity(requests.len());
        let mut plans: Vec<RequestPlan> = Vec::with_capacity(requests.len());
        for (idx, graph) in requests.iter().enumerate() {
            let (ctx, splits, _) = self.plan_request(graph)?;
            let stages = ctx.build_stages(cost, &splits, k).ok_or_else(|| {
                PlanError::NoFeasiblePipeline {
                    model: graph.name().to_owned(),
                }
            })?;
            plans.push(RequestPlan {
                request: idx,
                model: graph.name().to_owned(),
                stages,
                intensity: self.estimator.predict_intensity(graph),
                class: self.estimator.classify(graph),
            });
            contexts.push(ctx);
        }

        // Steps 2+3: contention mitigation over the request order, then
        // vertical alignment. Both the mitigated and the original order
        // are assembled and the better estimated makespan wins — the
        // re-ordering is a heuristic, so the planner checks it paid off.
        let assemble = |ordered: Vec<RequestPlan>,
                        base_ctxs: &[RequestContext]|
         -> (
            PipelinePlan,
            Vec<RequestContext>,
            Option<StealReport>,
            usize,
        ) {
            let mut ctxs = base_ctxs.to_vec();
            let mut plan = PipelinePlan {
                procs: procs.clone(),
                requests: ordered,
            };
            let steal = if self.config.work_stealing {
                Some(worksteal::align_by_stealing(&mut plan, &ctxs, cost))
            } else {
                None
            };
            let tail = if self.config.tail_optimization {
                worksteal::optimize_tail(&mut plan, &mut ctxs, &self.estimator)
            } else {
                0
            };
            (plan, ctxs, steal, tail)
        };

        let soc = self.estimator.cost().soc().clone();
        let mut mitigation = None;
        let mut best = assemble(plans.clone(), &contexts);
        let mut best_est = best.0.estimated_makespan_contention_ms(&soc);
        if self.config.contention_mitigation && plans.len() > 1 {
            // Candidate orders, all evaluated with the contention-aware
            // estimate after the full vertical passes: the Algorithm-2
            // mitigation order, plus two cheap deterministic heuristics
            // (longest-total-first, and a heavy/light interleave that
            // spreads both load and contention).
            let classes: Vec<_> = plans.iter().map(|p| p.class).collect();
            let outcome = mitigation::mitigate(&classes, k);
            let mut by_time: Vec<usize> = (0..plans.len()).collect();
            by_time.sort_by(|&a, &b| {
                plans[b]
                    .total_ms()
                    .total_cmp(&plans[a].total_ms())
                    .then(a.cmp(&b))
            });
            let mut interleave = Vec::with_capacity(plans.len());
            let (mut lo, mut hi) = (0usize, by_time.len());
            while lo < hi {
                interleave.push(by_time[lo]);
                lo += 1;
                if lo < hi {
                    hi -= 1;
                    interleave.push(by_time[hi]);
                }
            }
            let candidates: [(Option<&mitigation::MitigationOutcome>, Vec<usize>); 3] = [
                (Some(&outcome), outcome.order.clone()),
                (None, by_time),
                (None, interleave),
            ];
            for (mit, order) in candidates {
                let reordered: Vec<RequestPlan> = order
                    .iter()
                    .map(|&orig_pos| plans[orig_pos].clone())
                    .collect();
                let candidate = assemble(reordered, &contexts);
                let est = candidate.0.estimated_makespan_contention_ms(&soc);
                // Hysteresis: a re-ordering must beat the incumbent's
                // estimate by a clear margin before it is adopted — the
                // estimate ranks orders well but not perfectly, and
                // arrival order is the natural default.
                if est < best_est * 0.97 {
                    best_est = est;
                    best = candidate;
                    mitigation = mit.cloned();
                }
            }
        }
        let (plan, contexts, steal, tail_merges) = best;

        let planned = PlannedPipeline {
            plan,
            contexts,
            mitigation,
            steal,
            tail_merges,
        };
        // Debug builds statically verify every plan this planner emits; a
        // lint error here is a planner bug, never an input problem.
        #[cfg(debug_assertions)]
        {
            let diags = planned.lint(&self.soc);
            debug_assert!(
                diags.is_clean(),
                "planner produced a plan that fails its own static lint:\n{diags}"
            );
        }
        Ok(planned)
    }

    /// Convenience wrapper planning zoo models by id.
    ///
    /// # Errors
    ///
    /// Same as [`Planner::plan`].
    pub fn plan_models(&self, ids: &[ModelId]) -> Result<PlannedPipeline, PlanError> {
        let graphs: Vec<ModelGraph> = ids.iter().map(|m| m.graph()).collect();
        self.plan(&graphs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kirin_planner() -> Planner {
        Planner::new(&SocSpec::kirin_990()).expect("kirin planner")
    }

    #[test]
    fn empty_request_set_is_rejected() {
        let p = kirin_planner();
        assert_eq!(p.plan(&[]).unwrap_err(), PlanError::EmptyRequestSet);
    }

    #[test]
    fn single_request_plans_and_tiles_all_layers() {
        let p = kirin_planner();
        let out = p.plan_models(&[ModelId::ResNet50]).unwrap();
        assert_eq!(out.plan.requests.len(), 1);
        let req = &out.plan.requests[0];
        let n = out.contexts[0].layer_count();
        let covered: usize = req.stages.iter().flatten().map(|s| s.range.len()).sum();
        assert_eq!(covered, n);
    }

    #[test]
    fn bert_reaches_the_npu_through_operator_fallback() {
        let p = kirin_planner();
        let out = p.plan_models(&[ModelId::Bert]).unwrap();
        let req = &out.plan.requests[0];
        // Slot 0 is the NPU on Kirin 990 — BERT's embedding is
        // NPU-unsupported, but operator fallback lets the encoder body
        // still run there (the paper's sub-model forwarding), so a good
        // plan uses the NPU rather than abandoning it.
        let npu_stage = req.stages[0].as_ref().expect("NPU slot used");
        if npu_stage.range.first == 0 {
            assert!(
                !npu_stage.runs.is_empty(),
                "a slice containing the embedding must carry fallback runs"
            );
        }
    }

    #[test]
    fn yolov4_is_placeable_despite_unsupported_ops() {
        let p = kirin_planner();
        let out = p.plan_models(&[ModelId::YoloV4]).unwrap();
        assert_eq!(out.plan.requests.len(), 1);
    }

    #[test]
    fn multi_request_plan_preserves_all_requests() {
        let p = kirin_planner();
        let ids = [
            ModelId::Vgg16,
            ModelId::SqueezeNet,
            ModelId::Bert,
            ModelId::MobileNetV2,
            ModelId::ResNet50,
            ModelId::GoogLeNet,
        ];
        let out = p.plan_models(&ids).unwrap();
        assert_eq!(out.plan.requests.len(), ids.len());
        let mut originals: Vec<usize> = out.plan.requests.iter().map(|r| r.request).collect();
        originals.sort_unstable();
        assert_eq!(originals, (0..ids.len()).collect::<Vec<_>>());
    }

    #[test]
    fn mitigation_spreads_high_contention_requests() {
        let p = kirin_planner();
        // Several high-contention models in a row.
        let ids = [
            ModelId::SqueezeNet,
            ModelId::GoogLeNet,
            ModelId::Vgg16,
            ModelId::ResNet50,
            ModelId::MobileNetV2,
            ModelId::Vit,
            ModelId::InceptionV4,
            ModelId::AlexNet,
        ];
        let out = p.plan_models(&ids).unwrap();
        if let Some(m) = &out.mitigation {
            if m.resolved {
                let classes: Vec<_> = out.plan.requests.iter().map(|r| r.class).collect();
                assert!(!crate::mitigation::has_conflict(&classes, out.plan.depth()));
            }
        }
    }

    #[test]
    fn no_ct_config_skips_mitigation_and_tail() {
        let p = Planner::with_config(&SocSpec::kirin_990(), PlannerConfig::no_ct()).unwrap();
        let out = p
            .plan_models(&[ModelId::SqueezeNet, ModelId::GoogLeNet, ModelId::Vgg16])
            .unwrap();
        assert!(out.mitigation.is_none());
        assert_eq!(out.tail_merges, 0);
        assert!(out.steal.is_some(), "work stealing stays on in No C/T");
    }

    #[test]
    fn planning_works_without_an_npu() {
        let p = Planner::new(&SocSpec::snapdragon_870()).unwrap();
        let out = p
            .plan_models(&[ModelId::Bert, ModelId::ResNet50, ModelId::SqueezeNet])
            .unwrap();
        assert_eq!(out.plan.depth(), 3, "CPU_B + GPU + CPU_S");
        assert_eq!(out.plan.requests.len(), 3);
    }

    #[test]
    fn max_depth_limits_slots() {
        let cfg = PlannerConfig {
            max_depth: 2,
            ..PlannerConfig::default()
        };
        let p = Planner::with_config(&SocSpec::kirin_990(), cfg).unwrap();
        let out = p.plan_models(&[ModelId::ResNet50]).unwrap();
        assert_eq!(out.plan.depth(), 2);
    }

    #[test]
    fn planning_is_deterministic() {
        let p = kirin_planner();
        let ids = [ModelId::Bert, ModelId::SqueezeNet, ModelId::Vit];
        let a = p.plan_models(&ids).unwrap();
        let b = p.plan_models(&ids).unwrap();
        assert_eq!(a.plan, b.plan);
    }
}
