//! The two-step Hetero²Pipe planner (Sec. V).
//!
//! [`Planner::plan`] performs, in order:
//!
//! 1. **Horizontal partitioning (P1)** — for every request, enumerate the
//!    feasible ordered subsets of the SoC's power-ranked processors (the
//!    NPU slot is skipped automatically for models with unsupported
//!    operators — the fallback path), run the dynamic program of
//!    Algorithm 1 on each, and keep the minimum-makespan partition.
//! 2. **Contention mitigation (Algorithm 2)** — classify requests into
//!    ℍ/𝕃 with the ridge-regression intensity model and re-order the
//!    sequence so ℍ requests sit at least `K` apart, solving the
//!    relocation LAP with Kuhn–Munkres.
//! 3. **Vertical alignment (Algorithm 3)** — work stealing towards each
//!    contention window's critical path, plus tail-bubble collapse.
//!
//! Steps 2 and 3 can be disabled individually through
//! [`PlannerConfig`] — that is exactly the paper's "No C/T" ablation
//! baseline.
//!
//! # Parallel planning runtime
//!
//! The production path ([`Planner::plan`]) runs on the [`crate::par`]
//! runtime with shared per-request cost tables
//! ([`crate::estimate::RequestTables`]): per-request DP partitioning and
//! the candidate-order evaluations fan out across worker threads, and a
//! deterministic index-ordered merge plus a sequential selection replay
//! guarantee the output is **bit-identical for every thread count** —
//! including the frozen sequential reference
//! ([`Planner::plan_reference`]), which preserves the original
//! clone-per-mask implementation as the recorded perf baseline (see
//! `scripts/bench.sh`) and as the oracle for the equivalence proptest.

use crate::sync::{Arc, Mutex};
use std::time::Instant;

use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::soc::SocSpec;
use h2p_telemetry::lifecycle::{LifecycleStage, RequestId, TraceId};
use h2p_telemetry::{span, Telemetry};

use crate::error::PlanError;
use crate::estimate::{Estimator, RequestContext, RequestTables};
use crate::mitigation::{self, MitigationOutcome};
use crate::par;
use crate::partition::{min_max_partition, DpScratch};
use crate::plan::{PipelinePlan, RequestPlan};
use crate::worksteal::{self, StealReport};

/// Layer-count cutoff below which a single request's subset DP stays
/// sequential even when spare workers exist. One DP over a CNN-sized
/// model (VGG16: 22 layers, ≈ 6 µs for all 15 subsets) is cheaper than
/// one scoped-thread spawn (tens of microseconds), so fanning out only
/// pays once the per-subset DPs are BERT-sized (62 layers, ≈ 46 µs
/// total on the committed pre-kernel baseline). Measured on the bench
/// host; the threshold splits the zoo between those two scales.
pub const INTRA_DP_MIN_LAYERS: usize = 48;

/// Pooled per-request planning buffers: the flat DP kernel arena plus
/// the mask-loop buffers of `Planner::plan_request_cached`. Checked out
/// of the planner's pool ([`Planner::with_plan_scratch`]) so
/// steady-state planning reuses warm allocations — after the first
/// request of a given high-water size, the sequential DP path touches
/// the allocator zero times (pinned by the counting-allocator test).
#[derive(Debug, Default)]
pub(crate) struct PlanScratch {
    /// The DP kernel arena (table, backtracking, splits).
    pub(crate) dp: DpScratch,
    /// Flat per-slot per-layer latency (`lat[s * n + i]`, ∞ where
    /// unsupported) for the subset lower bound.
    lat: Vec<f64>,
    /// Per-layer minimum over the active slots' latencies.
    mins: Vec<f64>,
    /// The active-slot subset of the mask being evaluated.
    slots: Vec<usize>,
    /// The winning subset so far.
    best_slots: Vec<usize>,
    /// The winning split points so far.
    best_splits: Vec<usize>,
}

/// Feature switches and limits for the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Enable the Algorithm-2 re-ordering pass.
    pub contention_mitigation: bool,
    /// Enable Algorithm-3 work stealing.
    pub work_stealing: bool,
    /// Enable the tail-bubble local search.
    pub tail_optimization: bool,
    /// Maximum pipeline depth (number of processor slots used).
    pub max_depth: usize,
    /// Numerical precision the deployment executes at.
    pub precision: h2p_models::cost::Precision,
    /// Worker threads for the parallel planning runtime; `0` (the
    /// default) resolves to the machine's available parallelism. The
    /// planned output is bit-identical for every value.
    pub threads: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            contention_mitigation: true,
            work_stealing: true,
            tail_optimization: true,
            max_depth: 4,
            precision: h2p_models::cost::Precision::Fp32,
            threads: 0,
        }
    }
}

impl PlannerConfig {
    /// Hysteresis margin for adopting a candidate request re-ordering: a
    /// candidate's contention-aware makespan estimate must undercut the
    /// incumbent's by this factor before the planner switches away from
    /// arrival order. The estimate ranks orders well but not perfectly,
    /// and arrival order is the natural default, so near-ties stick with
    /// the incumbent instead of churning on estimation noise.
    pub const ORDER_HYSTERESIS: f64 = 0.97;

    /// The paper's "No C/T" ablation: contention mitigation and tail
    /// optimization disabled (work stealing stays on).
    pub fn no_ct() -> Self {
        PlannerConfig {
            contention_mitigation: false,
            tail_optimization: false,
            ..PlannerConfig::default()
        }
    }

    /// The worker-thread count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            par::available_parallelism()
        } else {
            self.threads
        }
    }
}

/// A fully planned pipeline, ready for execution.
#[derive(Debug, Clone)]
pub struct PlannedPipeline {
    /// The plan: processor slots and ordered request stage assignments.
    pub plan: PipelinePlan,
    /// Per-request planning contexts, indexed by *original* request index.
    pub contexts: Vec<RequestContext>,
    /// Outcome of the mitigation pass, if it ran.
    pub mitigation: Option<MitigationOutcome>,
    /// Outcome of the work-stealing pass, if it ran.
    pub steal: Option<StealReport>,
    /// Number of tail requests collapsed onto a single processor.
    pub tail_merges: usize,
}

/// The Hetero²Pipe planner bound to one SoC.
#[derive(Debug, Clone)]
pub struct Planner {
    estimator: Estimator,
    config: PlannerConfig,
    /// Shared telemetry sink. Recording is strictly observational: hot
    /// loops count locally and flush once per request, and the frozen
    /// [`Planner::plan_reference`] path stays un-instrumented, so the
    /// bit-identical-output contract is untouched. Clones of a planner
    /// share the sink.
    telemetry: Arc<Telemetry>,
    /// Pool of warm [`PlanScratch`] buffers (shared by clones, like the
    /// tables cache): every planning path checks one out per request so
    /// the steady-state DP is allocation-free. Pool misses allocate and
    /// bump `planner.dp.scratch_allocs`.
    scratch_pool: Arc<Mutex<Vec<PlanScratch>>>,
}

/// Everything step 1 produces for one request, computed independently
/// per request (and therefore in parallel).
struct PreparedRequest {
    ctx: RequestContext,
    plan: RequestPlan,
    /// Single-slot collapse candidates for the tail search, one per
    /// pipeline slot (`None` = infeasible on that slot).
    collapse: worksteal::CollapseSlots,
}

impl Planner {
    /// Creates a planner with the default configuration, training the
    /// contention-intensity model on the built-in zoo.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the SoC lacks a big CPU cluster or the
    /// intensity regression cannot be trained.
    pub fn new(soc: &SocSpec) -> Result<Self, PlanError> {
        Self::with_config(soc, PlannerConfig::default())
    }

    /// Creates a planner with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Same as [`Planner::new`].
    pub fn with_config(soc: &SocSpec, config: PlannerConfig) -> Result<Self, PlanError> {
        Ok(Planner {
            estimator: Estimator::with_precision(soc, config.precision)?,
            config,
            telemetry: Arc::new(Telemetry::new()),
            scratch_pool: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Checks a [`PlanScratch`] out of the pool (allocating a fresh one
    /// only on a pool miss), runs `f`, and returns the scratch for
    /// reuse. Concurrent callers — the per-request fan-out, or the
    /// per-subset fan-out within one request — each get their own
    /// scratch; the pool grows to the high-water concurrency and stays
    /// there.
    pub(crate) fn with_plan_scratch<R>(&self, f: impl FnOnce(&mut PlanScratch) -> R) -> R {
        let popped = {
            let mut pool = match self.scratch_pool.lock() {
                Ok(guard) => guard,
                // The pool holds only reusable buffers: a panic while a
                // scratch was checked out cannot corrupt the ones here.
                Err(poisoned) => poisoned.into_inner(),
            };
            pool.pop()
        };
        let mut scratch = popped.unwrap_or_else(|| {
            self.telemetry.metrics.inc("planner.dp.scratch_allocs");
            PlanScratch::default()
        });
        let out = f(&mut scratch);
        let mut pool = match self.scratch_pool.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        pool.push(scratch);
        out
    }

    /// The planner's telemetry sink (metrics registry + span recorder).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Replaces the telemetry sink, e.g. to share one registry between
    /// several planners or with the CLI exporter.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = telemetry;
    }

    /// The SoC this planner targets.
    pub fn soc(&self) -> &SocSpec {
        self.estimator.cost().soc()
    }

    /// The planner's estimator (cost + intensity models).
    pub fn estimator(&self) -> &Estimator {
        &self.estimator
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// The pipeline's processor slots: power-ranked, truncated to
    /// `max_depth`.
    pub fn pipeline_procs(&self) -> Vec<h2p_simulator::ProcessorId> {
        let mut procs = self.soc().processors_by_power();
        procs.truncate(self.config.max_depth.max(1));
        procs
    }

    /// Horizontal step only: the best feasible partition of one request
    /// over the pipeline slots, trying every ordered processor subset and
    /// keeping the minimum makespan (P1).
    ///
    /// This is the original self-contained implementation — it rebuilds a
    /// cost table per processor subset. The planning path uses the cached
    /// equivalent over [`Estimator::tables`]; both pick the same subset
    /// and splits.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoFeasiblePipeline`] if the model cannot be
    /// placed at all.
    pub fn plan_request(
        &self,
        graph: &ModelGraph,
    ) -> Result<(RequestContext, Vec<usize>, f64), PlanError> {
        let procs = self.pipeline_procs();
        let k_slots = procs.len();
        let cost = self.estimator.cost();
        let mut best: Option<(RequestContext, Vec<usize>, f64)> = None;
        for mask in 1u32..(1 << k_slots) {
            let slots: Vec<usize> = (0..k_slots).filter(|&s| mask & (1 << s) != 0).collect();
            if slots.len() > graph.len() {
                continue;
            }
            let ctx = self.estimator.context(graph, &procs, slots);
            let stages = ctx.stage_count();
            let Some(p) =
                min_max_partition(graph.len(), stages, |a, i, j| ctx.stage_cost(cost, a, i, j))
            else {
                continue;
            };
            if best
                .as_ref()
                .is_none_or(|(_, _, ms)| p.makespan_ms + 1e-12 < *ms)
            {
                best = Some((ctx, p.splits, p.makespan_ms));
            }
        }
        best.ok_or_else(|| PlanError::NoFeasiblePipeline {
            model: graph.name().to_owned(),
        })
    }

    /// The cached equivalent of [`Planner::plan_request`]: every
    /// processor-subset DP runs the flat prefix kernel
    /// ([`RequestTables::partition_into`]) straight over the request's
    /// shared tables — no per-cell closure, no `Option`, no allocation
    /// once the pooled [`PlanScratch`] is warm — and subsets whose exact
    /// lower bound cannot beat the incumbent are pruned without running
    /// the DP. Masks are visited in the same order with the same
    /// strict-improvement epsilon, and the bound never exceeds the true
    /// optimum of a mask, so the selected subset, splits and makespan
    /// are bit-identical to the reference (re-checked against the
    /// oracle DP in debug builds).
    ///
    /// With `threads > 1` and a model of at least [`INTRA_DP_MIN_LAYERS`]
    /// layers, the per-subset DPs fan out over the [`par`] runtime:
    /// every statically-feasible subset is evaluated concurrently (each
    /// worker on its own pooled scratch) and the winner is selected by a
    /// sequential replay in ascending mask order. The replay sees the
    /// same candidates in the same order as the sequential loop, and a
    /// subset the sequential loop would have pruned can never win — its
    /// true makespan is at least its bound, which already failed the
    /// strict `+1e-12` improvement test — so the fan-out is
    /// bit-identical too (the `h2p-check` intra-request model explores
    /// its schedules).
    fn plan_request_cached(
        &self,
        tables: &RequestTables,
        threads: usize,
    ) -> Result<(RequestContext, Vec<usize>, f64), PlanError> {
        let graph = tables.graph();
        let n = graph.len();
        let k_slots = tables.slot_count();
        let table = tables.table();
        let fallback = tables.fallback();
        let mask_count = (1usize << k_slots) - 1;

        // Statically-feasible check + exact lower bound for one subset:
        // every layer costs at least its cheapest active slot, stage
        // costs only add copies on top, and the max stage is at least
        // both the largest single layer and the average share of the
        // total. Returns `None` when some layer runs on no active slot
        // (the DP could not have found a partition either). Pruning on
        // the bound can never drop a subset that would have won under
        // the strict `+1e-12` improvement rule.
        fn subset_bound(
            lat: &[f64],
            n: usize,
            slots: &[usize],
            mins: &mut Vec<f64>,
        ) -> Option<f64> {
            mins.clear();
            mins.resize(n, f64::INFINITY);
            for &s in slots {
                for (m, &v) in mins.iter_mut().zip(&lat[s * n..(s + 1) * n]) {
                    *m = m.min(v);
                }
            }
            if mins.iter().any(|m| !m.is_finite()) {
                return None;
            }
            let sum: f64 = mins.iter().sum();
            let max_single = mins.iter().copied().fold(0.0f64, f64::max);
            Some(max_single.max(sum / slots.len() as f64))
        }

        let best = self.with_plan_scratch(|ps| {
            // Per-slot per-layer latency (∞ where unsupported) for the
            // pruning lower bound, flat in the pooled buffer.
            ps.lat.clear();
            for s in 0..k_slots {
                match fallback {
                    Some((fs, fb)) if fs == s => {
                        ps.lat
                            .extend((0..n).map(|i| fb.lat_prefix[i + 1] - fb.lat_prefix[i]));
                    }
                    _ => {
                        let pm = table.prefix_row(s);
                        let un = table.unsupported_row(s);
                        ps.lat.extend((0..n).map(|i| {
                            if un[i + 1] - un[i] > 0 {
                                f64::INFINITY
                            } else {
                                pm[i + 1] - pm[i]
                            }
                        }));
                    }
                }
            }

            // Telemetry: count locally, flush once at the end — the DP
            // loop must never contend on the shared registry lock.
            let mut masks_evaluated = 0u64;
            let mut masks_pruned = 0u64;
            let mut cells = 0u64;

            let mut best_ms: Option<f64> = None; // winner in ps.best_*
            let workers = par::worker_count(threads, mask_count);
            if workers > 1 && n >= INTRA_DP_MIN_LAYERS {
                // Fan-out path: evaluate every statically-feasible
                // subset concurrently, then replay the selection
                // sequentially in ascending mask order (see the method
                // docs for why pruning is unnecessary for identity).
                let masks: Vec<u32> = (1u32..(1 << k_slots))
                    .filter(|&mask| {
                        ps.slots.clear();
                        ps.slots
                            .extend((0..k_slots).filter(|&s| mask & (1 << s) != 0));
                        ps.slots.len() <= n
                            && subset_bound(&ps.lat, n, &ps.slots, &mut ps.mins).is_some()
                    })
                    .collect();
                masks_evaluated = masks.len() as u64;
                let evaluated = par::map(threads, &masks, |_, &mask| {
                    let slots: Vec<usize> =
                        (0..k_slots).filter(|&s| mask & (1 << s) != 0).collect();
                    self.with_plan_scratch(|ws| {
                        let found = tables
                            .partition_into(&slots, 1, &mut ws.dp)
                            .map(|ms| (slots.clone(), ws.dp.splits().to_vec(), ms));
                        (found, ws.dp.take_cells())
                    })
                });
                for (found, worker_cells) in evaluated {
                    cells += worker_cells;
                    let Some((slots, splits, ms)) = found else {
                        continue;
                    };
                    if best_ms.is_none_or(|b| ms + 1e-12 < b) {
                        best_ms = Some(ms);
                        ps.best_slots.clone_from(&slots);
                        ps.best_splits.clone_from(&splits);
                    }
                }
            } else {
                for mask in 1u32..(1 << k_slots) {
                    ps.slots.clear();
                    ps.slots
                        .extend((0..k_slots).filter(|&s| mask & (1 << s) != 0));
                    if ps.slots.len() > n {
                        continue;
                    }
                    let Some(bound) = subset_bound(&ps.lat, n, &ps.slots, &mut ps.mins) else {
                        continue;
                    };
                    if let Some(ms) = best_ms {
                        if bound + 1e-12 >= ms {
                            masks_pruned += 1;
                            continue;
                        }
                    }
                    masks_evaluated += 1;
                    let Some(ms) = tables.partition_into(&ps.slots, threads, &mut ps.dp) else {
                        continue;
                    };
                    if best_ms.is_none_or(|b| ms + 1e-12 < b) {
                        best_ms = Some(ms);
                        ps.best_slots.clone_from(&ps.slots);
                        ps.best_splits.clear();
                        ps.best_splits.extend_from_slice(ps.dp.splits());
                    }
                }
            }
            let m = &self.telemetry.metrics;
            m.add("planner.dp.masks_evaluated", masks_evaluated);
            m.add("planner.dp.masks_pruned", masks_pruned);
            m.add("planner.dp.cells", cells + ps.dp.take_cells());
            best_ms.map(|ms| (ps.best_slots.clone(), ps.best_splits.clone(), ms))
        });

        let Some((slots, splits, ms)) = best else {
            return Err(PlanError::NoFeasiblePipeline {
                model: graph.name().to_owned(),
            });
        };
        #[cfg(debug_assertions)]
        {
            // The kernel winner must equal the Option-oracle reference
            // DP on the winning subset — the bit-identity contract the
            // equivalence proptests pin end-to-end.
            let ctx = tables.context(slots.clone());
            let cost = self.estimator.cost();
            match min_max_partition(n, slots.len(), |a, i, j| ctx.stage_cost(cost, a, i, j)) {
                Some(p) => {
                    debug_assert_eq!(p.makespan_ms.to_bits(), ms.to_bits(), "kernel makespan");
                    debug_assert_eq!(p.splits, splits, "kernel splits");
                }
                None => panic!("kernel found a partition the oracle DP rejects"),
            }
        }
        Ok((tables.context(slots), splits, ms))
    }

    /// Step 1 for one request on the cached tables, producing the context,
    /// the request plan and the tail-collapse candidates. `dp_threads`
    /// bounds the *intra*-request subset fan-out: when many requests are
    /// planned the per-request map already saturates the workers and
    /// this is 1; a single-request plan hands the whole budget here.
    fn prepare_request(
        &self,
        idx: usize,
        graph: &ModelGraph,
        dp_threads: usize,
    ) -> Result<PreparedRequest, PlanError> {
        span!(self.telemetry.spans, "prepare:{}:{}", idx, graph.name());
        let procs = self.pipeline_procs();
        let cost = self.estimator.cost();
        let k = procs.len();
        let (tables, hit) = self.estimator.tables_cached(graph, &procs);
        self.telemetry.metrics.inc(if hit {
            "planner.tables.cache_hits"
        } else {
            "planner.tables.cache_misses"
        });
        let (ctx, splits, _) = self.plan_request_cached(&tables, dp_threads)?;
        let stages =
            ctx.build_stages(cost, &splits, k)
                .ok_or_else(|| PlanError::NoFeasiblePipeline {
                    model: graph.name().to_owned(),
                })?;
        let (intensity, class) = self.estimator.intensity_and_class(tables.graph());
        let collapse = if self.config.tail_optimization {
            worksteal::collapse_candidates(&tables, cost, k)
        } else {
            Vec::new()
        };
        Ok(PreparedRequest {
            ctx,
            plan: RequestPlan {
                request: idx,
                model: graph.name().to_owned(),
                stages,
                intensity,
                class,
            },
            collapse,
        })
    }

    /// Runs the full two-step planning pipeline over `requests` on the
    /// configured number of worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptyRequestSet`] for an empty input and
    /// [`PlanError::NoFeasiblePipeline`] if any model cannot be placed.
    pub fn plan(&self, requests: &[ModelGraph]) -> Result<PlannedPipeline, PlanError> {
        self.plan_with_threads(requests, self.config.effective_threads())
    }

    /// [`Planner::plan`] with an explicit worker-thread count. The output
    /// is bit-identical for every `threads` value (the equivalence the
    /// proptest suite pins down); only wall-clock time changes.
    ///
    /// # Errors
    ///
    /// Same as [`Planner::plan`].
    pub fn plan_with_threads(
        &self,
        requests: &[ModelGraph],
        threads: usize,
    ) -> Result<PlannedPipeline, PlanError> {
        if requests.is_empty() {
            return Err(PlanError::EmptyRequestSet);
        }
        // Fan-out clamp: never ask for more workers than there are
        // requests — the candidate-order map below always has four
        // items, so without this a 2-request plan at `threads = 4`
        // spawns four workers for two requests' worth of work and the
        // spawn overhead eats the gain. With `threads == 1` every map
        // takes the sequential path with zero thread-scope setup, making
        // `plan_with_threads(reqs, 1)` and the t1 bench case the same
        // code path (plans are bit-identical at any value regardless).
        //
        // With a single request the request-level map has nothing to fan
        // out, so the thread budget goes to the *intra*-request subset
        // DP instead (`plan_request_cached`'s fan-out path) — the
        // single-large-model replanning case. Bit-identical either way.
        let dp_threads = if requests.len() == 1 {
            threads.max(1)
        } else {
            1
        };
        let threads = threads.min(requests.len());
        // h2p-lint: allow(H2P011) — phase timing feeds gauges only, never plan bits
        let total_start = Instant::now();
        span!(self.telemetry.spans, "plan:{}req", requests.len());
        let procs = self.pipeline_procs();
        let cost = self.estimator.cost();
        let soc = self.estimator.cost().soc();

        // Step 1: horizontal partitioning, independently per request —
        // the first parallel loop.
        // h2p-lint: allow(H2P011) — phase timing feeds gauges only, never plan bits
        let prepare_start = Instant::now();
        let prepared = {
            span!(self.telemetry.spans, "prepare");
            par::try_map(threads, requests, |idx, graph| {
                self.prepare_request(idx, graph, dp_threads)
            })?
        };
        self.telemetry.metrics.gauge_add(
            "planner.phase.prepare_ms",
            prepare_start.elapsed().as_secs_f64() * 1e3,
        );
        let mut plans: Vec<RequestPlan> = Vec::with_capacity(prepared.len());
        let mut contexts: Vec<RequestContext> = Vec::with_capacity(prepared.len());
        let mut collapse: Vec<worksteal::CollapseSlots> = Vec::with_capacity(prepared.len());
        for p in prepared {
            plans.push(p.plan);
            contexts.push(p.ctx);
            collapse.push(p.collapse);
        }

        // Steps 2+3: contention mitigation over the request order, then
        // vertical alignment. Both the mitigated and the original order
        // are assembled and the better estimated makespan wins — the
        // re-ordering is a heuristic, so the planner checks it paid off.
        // `assemble` also returns the contention-aware estimate so the
        // candidate evaluations below are fully independent.
        let assemble = |ordered: Vec<RequestPlan>| -> (
            PipelinePlan,
            Vec<RequestContext>,
            Option<StealReport>,
            usize,
            f64,
        ) {
            span!(self.telemetry.spans, "assemble:{}req", ordered.len());
            let mut ctxs = contexts.to_vec();
            let mut plan = PipelinePlan {
                procs: procs.clone(),
                requests: ordered,
            };
            let steal = if self.config.work_stealing {
                Some(worksteal::align_by_stealing(&mut plan, &ctxs, cost))
            } else {
                None
            };
            let tail = if self.config.tail_optimization {
                worksteal::optimize_tail_cached(&mut plan, &mut ctxs, &collapse)
            } else {
                0
            };
            let est = plan.estimated_makespan_contention_ms(soc);
            (plan, ctxs, steal, tail, est)
        };

        // h2p-lint: allow(H2P011) — phase timing feeds gauges only, never plan bits
        let assemble_start = Instant::now();
        let mut mitigation = None;
        let best = if self.config.contention_mitigation && plans.len() > 1 {
            // Candidate orders, all evaluated with the contention-aware
            // estimate after the full vertical passes: the arrival order
            // (the incumbent), the Algorithm-2 mitigation order, plus two
            // cheap deterministic heuristics (longest-total-first, and a
            // heavy/light interleave that spreads both load and
            // contention).
            let classes: Vec<_> = plans.iter().map(|p| p.class).collect();
            let outcome = mitigation::mitigate_instrumented(
                &classes,
                procs.len(),
                Some(&self.telemetry.metrics),
            );
            let mut by_time: Vec<usize> = (0..plans.len()).collect();
            by_time.sort_by(|&a, &b| {
                plans[b]
                    .total_ms()
                    .total_cmp(&plans[a].total_ms())
                    .then(a.cmp(&b))
            });
            let mut interleave = Vec::with_capacity(plans.len());
            let (mut lo, mut hi) = (0usize, by_time.len());
            while lo < hi {
                interleave.push(by_time[lo]);
                lo += 1;
                if lo < hi {
                    hi -= 1;
                    interleave.push(by_time[hi]);
                }
            }
            let orders: Vec<(Option<&MitigationOutcome>, Vec<usize>)> = vec![
                (None, (0..plans.len()).collect()),
                (Some(&outcome), outcome.order.clone()),
                (None, by_time),
                (None, interleave),
            ];
            // Second parallel loop: the candidate assemblies (work
            // stealing + tail search + contention estimate each) are
            // independent; selection is replayed sequentially below, so
            // the adopted order and hysteresis behaviour are identical
            // to a sequential evaluation.
            let results = par::map(threads, &orders, |_, (_, order)| {
                let reordered: Vec<RequestPlan> = order
                    .iter()
                    .map(|&orig_pos| plans[orig_pos].clone())
                    .collect();
                assemble(reordered)
            });
            let mut results = results.into_iter();
            // The cursor hands out every index, so `results` has exactly
            // `orders.len()` entries; the first is the arrival order.
            let Some(mut best) = results.next() else {
                unreachable!("candidate evaluation produced no results")
            };
            let mut best_est = best.4;
            for ((mit, _), candidate) in orders.iter().skip(1).zip(results) {
                let est = candidate.4;
                // Hysteresis: a re-ordering must beat the incumbent's
                // estimate by a clear margin before it is adopted (see
                // `PlannerConfig::ORDER_HYSTERESIS`).
                if est < best_est * PlannerConfig::ORDER_HYSTERESIS {
                    best_est = est;
                    best = candidate;
                    mitigation = mit.map(|m| (*m).clone());
                }
            }
            best
        } else {
            // Single request or mitigation disabled: one assembly, and
            // the plans are moved, not cloned.
            assemble(plans)
        };
        let (plan, contexts, steal, tail_merges, _) = best;

        let metrics = &self.telemetry.metrics;
        metrics.gauge_add(
            "planner.phase.assemble_ms",
            assemble_start.elapsed().as_secs_f64() * 1e3,
        );
        metrics.inc("planner.plans");
        metrics.add("planner.requests", requests.len() as u64);
        metrics.add("planner.tail_merges", tail_merges as u64);
        if let Some(s) = &steal {
            metrics.add("planner.steal.windows", s.windows as u64);
            metrics.add("planner.steal.adjustments", s.adjustments as u64);
            metrics.gauge_add(
                "planner.steal.bubbles_removed_ms",
                (s.bubbles_before_ms - s.bubbles_after_ms).max(0.0),
            );
        }
        let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
        metrics.gauge_add("planner.phase.total_ms", total_ms);
        metrics.observe("planner.plan_ms", total_ms);

        // Lifecycle: every request in this invocation was admitted and
        // now has a plan. Events carry simulated time 0 (planning
        // precedes the simulated clock; wall time would break replay
        // determinism), and the trace id derives from the ordered model
        // names, so recovery rounds and report reconstruction land on
        // the same id for the same batch.
        let trace_id = TraceId::of_names(requests.iter().map(ModelGraph::name));
        for r in 0..requests.len() {
            self.telemetry
                .lifecycle
                .record(trace_id, RequestId(r), 0.0, LifecycleStage::Admit);
        }
        for r in 0..requests.len() {
            self.telemetry
                .lifecycle
                .record(trace_id, RequestId(r), 0.0, LifecycleStage::Plan);
        }

        let planned = PlannedPipeline {
            plan,
            contexts,
            mitigation,
            steal,
            tail_merges,
        };
        // Debug builds statically verify every plan this planner emits; a
        // lint error here is a planner bug, never an input problem.
        #[cfg(debug_assertions)]
        {
            let diags = planned.lint(self.soc());
            debug_assert!(
                diags.is_clean(),
                "planner produced a plan that fails its own static lint:\n{diags}"
            );
        }
        Ok(planned)
    }

    /// The frozen sequential reference implementation of
    /// [`Planner::plan`]: the original clone-per-mask, rebuild-per-stage
    /// code path, kept verbatim so (a) the equivalence proptest has an
    /// independently-written oracle and (b) `scripts/bench.sh` can record
    /// the sequential baseline the parallel runtime's speedup is measured
    /// against, in the same run. Produces bit-identical plans to
    /// [`Planner::plan`].
    ///
    /// # Errors
    ///
    /// Same as [`Planner::plan`].
    pub fn plan_reference(&self, requests: &[ModelGraph]) -> Result<PlannedPipeline, PlanError> {
        if requests.is_empty() {
            return Err(PlanError::EmptyRequestSet);
        }
        let procs = self.pipeline_procs();
        let k = procs.len();
        let cost = self.estimator.cost();

        // Step 1: horizontal partitioning, sequentially per request.
        let mut contexts: Vec<RequestContext> = Vec::with_capacity(requests.len());
        let mut plans: Vec<RequestPlan> = Vec::with_capacity(requests.len());
        for (idx, graph) in requests.iter().enumerate() {
            let (ctx, splits, _) = self.plan_request(graph)?;
            let stages = ctx.build_stages(cost, &splits, k).ok_or_else(|| {
                PlanError::NoFeasiblePipeline {
                    model: graph.name().to_owned(),
                }
            })?;
            plans.push(RequestPlan {
                request: idx,
                model: graph.name().to_owned(),
                stages,
                intensity: self.estimator.predict_intensity(graph),
                class: self.estimator.classify(graph),
            });
            contexts.push(ctx);
        }

        let assemble = |ordered: Vec<RequestPlan>,
                        base_ctxs: &[RequestContext]|
         -> (
            PipelinePlan,
            Vec<RequestContext>,
            Option<StealReport>,
            usize,
        ) {
            let mut ctxs = base_ctxs.to_vec();
            let mut plan = PipelinePlan {
                procs: procs.clone(),
                requests: ordered,
            };
            let steal = if self.config.work_stealing {
                Some(worksteal::align_by_stealing(&mut plan, &ctxs, cost))
            } else {
                None
            };
            let tail = if self.config.tail_optimization {
                worksteal::optimize_tail(&mut plan, &mut ctxs, &self.estimator)
            } else {
                0
            };
            (plan, ctxs, steal, tail)
        };

        // Part of the frozen reference cost profile: the original code
        // cloned the SoC here.
        let soc = self.estimator.cost().soc().clone();
        let mut mitigation = None;
        let mut best = assemble(plans.clone(), &contexts);
        let mut best_est = best.0.estimated_makespan_contention_ms(&soc);
        if self.config.contention_mitigation && plans.len() > 1 {
            let classes: Vec<_> = plans.iter().map(|p| p.class).collect();
            let outcome = mitigation::mitigate(&classes, k);
            let mut by_time: Vec<usize> = (0..plans.len()).collect();
            by_time.sort_by(|&a, &b| {
                plans[b]
                    .total_ms()
                    .total_cmp(&plans[a].total_ms())
                    .then(a.cmp(&b))
            });
            let mut interleave = Vec::with_capacity(plans.len());
            let (mut lo, mut hi) = (0usize, by_time.len());
            while lo < hi {
                interleave.push(by_time[lo]);
                lo += 1;
                if lo < hi {
                    hi -= 1;
                    interleave.push(by_time[hi]);
                }
            }
            let candidates: [(Option<&mitigation::MitigationOutcome>, Vec<usize>); 3] = [
                (Some(&outcome), outcome.order.clone()),
                (None, by_time),
                (None, interleave),
            ];
            for (mit, order) in candidates {
                let reordered: Vec<RequestPlan> = order
                    .iter()
                    .map(|&orig_pos| plans[orig_pos].clone())
                    .collect();
                let candidate = assemble(reordered, &contexts);
                let est = candidate.0.estimated_makespan_contention_ms(&soc);
                if est < best_est * PlannerConfig::ORDER_HYSTERESIS {
                    best_est = est;
                    best = candidate;
                    mitigation = mit.cloned();
                }
            }
        }
        let (plan, contexts, steal, tail_merges) = best;

        let planned = PlannedPipeline {
            plan,
            contexts,
            mitigation,
            steal,
            tail_merges,
        };
        #[cfg(debug_assertions)]
        {
            let diags = planned.lint(self.soc());
            debug_assert!(
                diags.is_clean(),
                "planner produced a plan that fails its own static lint:\n{diags}"
            );
        }
        Ok(planned)
    }

    /// Convenience wrapper planning zoo models by id.
    ///
    /// # Errors
    ///
    /// Same as [`Planner::plan`].
    pub fn plan_models(&self, ids: &[ModelId]) -> Result<PlannedPipeline, PlanError> {
        let graphs: Vec<ModelGraph> = ids.iter().map(|m| m.graph()).collect();
        self.plan(&graphs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kirin_planner() -> Planner {
        Planner::new(&SocSpec::kirin_990()).expect("kirin planner")
    }

    #[test]
    fn empty_request_set_is_rejected() {
        let p = kirin_planner();
        assert_eq!(p.plan(&[]).unwrap_err(), PlanError::EmptyRequestSet);
    }

    #[test]
    fn single_request_plans_and_tiles_all_layers() {
        let p = kirin_planner();
        let out = p.plan_models(&[ModelId::ResNet50]).unwrap();
        assert_eq!(out.plan.requests.len(), 1);
        let req = &out.plan.requests[0];
        let n = out.contexts[0].layer_count();
        let covered: usize = req.stages.iter().flatten().map(|s| s.range.len()).sum();
        assert_eq!(covered, n);
    }

    #[test]
    fn bert_reaches_the_npu_through_operator_fallback() {
        let p = kirin_planner();
        let out = p.plan_models(&[ModelId::Bert]).unwrap();
        let req = &out.plan.requests[0];
        // Slot 0 is the NPU on Kirin 990 — BERT's embedding is
        // NPU-unsupported, but operator fallback lets the encoder body
        // still run there (the paper's sub-model forwarding), so a good
        // plan uses the NPU rather than abandoning it.
        let npu_stage = req.stages[0].as_ref().expect("NPU slot used");
        if npu_stage.range.first == 0 {
            assert!(
                !npu_stage.runs.is_empty(),
                "a slice containing the embedding must carry fallback runs"
            );
        }
    }

    #[test]
    fn yolov4_is_placeable_despite_unsupported_ops() {
        let p = kirin_planner();
        let out = p.plan_models(&[ModelId::YoloV4]).unwrap();
        assert_eq!(out.plan.requests.len(), 1);
    }

    #[test]
    fn multi_request_plan_preserves_all_requests() {
        let p = kirin_planner();
        let ids = [
            ModelId::Vgg16,
            ModelId::SqueezeNet,
            ModelId::Bert,
            ModelId::MobileNetV2,
            ModelId::ResNet50,
            ModelId::GoogLeNet,
        ];
        let out = p.plan_models(&ids).unwrap();
        assert_eq!(out.plan.requests.len(), ids.len());
        let mut originals: Vec<usize> = out.plan.requests.iter().map(|r| r.request).collect();
        originals.sort_unstable();
        assert_eq!(originals, (0..ids.len()).collect::<Vec<_>>());
    }

    #[test]
    fn mitigation_spreads_high_contention_requests() {
        let p = kirin_planner();
        // Several high-contention models in a row.
        let ids = [
            ModelId::SqueezeNet,
            ModelId::GoogLeNet,
            ModelId::Vgg16,
            ModelId::ResNet50,
            ModelId::MobileNetV2,
            ModelId::Vit,
            ModelId::InceptionV4,
            ModelId::AlexNet,
        ];
        let out = p.plan_models(&ids).unwrap();
        if let Some(m) = &out.mitigation {
            if m.resolved {
                let classes: Vec<_> = out.plan.requests.iter().map(|r| r.class).collect();
                assert!(!crate::mitigation::has_conflict(&classes, out.plan.depth()));
            }
        }
    }

    #[test]
    fn no_ct_config_skips_mitigation_and_tail() {
        let p = Planner::with_config(&SocSpec::kirin_990(), PlannerConfig::no_ct()).unwrap();
        let out = p
            .plan_models(&[ModelId::SqueezeNet, ModelId::GoogLeNet, ModelId::Vgg16])
            .unwrap();
        assert!(out.mitigation.is_none());
        assert_eq!(out.tail_merges, 0);
        assert!(out.steal.is_some(), "work stealing stays on in No C/T");
    }

    #[test]
    fn planning_works_without_an_npu() {
        let p = Planner::new(&SocSpec::snapdragon_870()).unwrap();
        let out = p
            .plan_models(&[ModelId::Bert, ModelId::ResNet50, ModelId::SqueezeNet])
            .unwrap();
        assert_eq!(out.plan.depth(), 3, "CPU_B + GPU + CPU_S");
        assert_eq!(out.plan.requests.len(), 3);
    }

    #[test]
    fn max_depth_limits_slots() {
        let cfg = PlannerConfig {
            max_depth: 2,
            ..PlannerConfig::default()
        };
        let p = Planner::with_config(&SocSpec::kirin_990(), cfg).unwrap();
        let out = p.plan_models(&[ModelId::ResNet50]).unwrap();
        assert_eq!(out.plan.depth(), 2);
    }

    #[test]
    fn planning_is_deterministic() {
        let p = kirin_planner();
        let ids = [ModelId::Bert, ModelId::SqueezeNet, ModelId::Vit];
        let a = p.plan_models(&ids).unwrap();
        let b = p.plan_models(&ids).unwrap();
        assert_eq!(a.plan, b.plan);
    }

    /// The tentpole contract: the parallel cached path must reproduce the
    /// frozen sequential reference bit-for-bit, at every thread count.
    /// (The proptest suite widens this over random workloads.)
    #[test]
    fn plan_matches_reference_at_all_thread_counts() {
        let p = kirin_planner();
        let workloads: [&[ModelId]; 4] = [
            &[ModelId::ResNet50],
            &[ModelId::Bert, ModelId::SqueezeNet, ModelId::Vit],
            &[
                ModelId::Vgg16,
                ModelId::SqueezeNet,
                ModelId::Bert,
                ModelId::MobileNetV2,
                ModelId::ResNet50,
                ModelId::GoogLeNet,
            ],
            &[
                ModelId::YoloV4,
                ModelId::AlexNet,
                ModelId::InceptionV4,
                ModelId::Vit,
                ModelId::GoogLeNet,
            ],
        ];
        for ids in workloads {
            let graphs: Vec<ModelGraph> = ids.iter().map(|m| m.graph()).collect();
            let reference = p.plan_reference(&graphs).unwrap();
            for threads in [1usize, 2, 4] {
                let out = p.plan_with_threads(&graphs, threads).unwrap();
                assert_eq!(out.plan, reference.plan, "{ids:?} threads={threads}");
                assert_eq!(
                    out.plan.estimated_makespan_ms().to_bits(),
                    reference.plan.estimated_makespan_ms().to_bits(),
                    "{ids:?} threads={threads}: makespan bits differ"
                );
                assert_eq!(out.tail_merges, reference.tail_merges, "{ids:?}");
                assert_eq!(out.steal, reference.steal, "{ids:?}");
                assert_eq!(
                    out.mitigation.is_some(),
                    reference.mitigation.is_some(),
                    "{ids:?}"
                );
            }
        }
    }

    #[test]
    fn no_ct_also_matches_reference() {
        let p = Planner::with_config(&SocSpec::kirin_990(), PlannerConfig::no_ct()).unwrap();
        let graphs: Vec<ModelGraph> = [ModelId::SqueezeNet, ModelId::GoogLeNet, ModelId::Vgg16]
            .iter()
            .map(|m| m.graph())
            .collect();
        let reference = p.plan_reference(&graphs).unwrap();
        let out = p.plan_with_threads(&graphs, 4).unwrap();
        assert_eq!(out.plan, reference.plan);
    }

    #[test]
    fn hysteresis_margin_is_the_documented_constant() {
        assert_eq!(PlannerConfig::ORDER_HYSTERESIS, 0.97);
    }

    #[test]
    fn planning_records_phase_metrics_and_spans() {
        let p = kirin_planner();
        let ids = [ModelId::Bert, ModelId::SqueezeNet, ModelId::Vit];
        p.plan_models(&ids).unwrap();
        let snap = p.telemetry().metrics.snapshot();
        assert_eq!(snap.counter("planner.plans"), Some(1));
        assert_eq!(snap.counter("planner.requests"), Some(ids.len() as u64));
        assert!(snap.counter("planner.dp.masks_evaluated").unwrap_or(0) > 0);
        assert!(snap.counter("planner.dp.cells").unwrap_or(0) > 0);
        assert!(snap.gauge("planner.phase.prepare_ms").unwrap_or(-1.0) >= 0.0);
        assert!(snap.gauge("planner.phase.assemble_ms").unwrap_or(-1.0) >= 0.0);
        assert!(snap.gauge("planner.phase.total_ms").unwrap_or(-1.0) >= 0.0);
        // Mitigation ran instrumented (three requests, mitigation on).
        assert_eq!(snap.counter("mitigation.passes"), Some(1));
        // Span tree: one plan root, one prepare phase, one closed span
        // per request, one assemble per candidate order.
        let spans = p.telemetry().spans.records();
        assert!(spans.iter().all(|s| s.is_closed()));
        assert_eq!(spans.iter().filter(|s| s.name == "plan:3req").count(), 1);
        assert_eq!(spans.iter().filter(|s| s.name == "prepare").count(), 1);
        assert_eq!(
            spans
                .iter()
                .filter(|s| s.name.starts_with("prepare:"))
                .count(),
            ids.len()
        );
        assert!(spans.iter().any(|s| s.name.starts_with("assemble:")));
    }

    #[test]
    fn telemetry_does_not_perturb_plans() {
        // A planner that has already recorded telemetry produces the
        // same plan as a fresh one and as the frozen reference.
        let warm = kirin_planner();
        let ids = [ModelId::Vgg16, ModelId::Bert, ModelId::SqueezeNet];
        let graphs: Vec<ModelGraph> = ids.iter().map(|m| m.graph()).collect();
        let first = warm.plan(&graphs).unwrap();
        let second = warm.plan(&graphs).unwrap();
        assert_eq!(first.plan, second.plan);
        assert_eq!(first.plan, warm.plan_reference(&graphs).unwrap().plan);
        assert_eq!(
            warm.telemetry().metrics.snapshot().counter("planner.plans"),
            Some(2)
        );
    }
}
