//! # hetero2pipe
//!
//! A from-scratch reproduction of **Hetero²Pipe** (ICDCS 2025):
//! contention-aware pipeline planning for multi-DNN inference on
//! heterogeneous mobile processors under co-execution slowdown.
//!
//! The planner decouples the intractable joint problem into two steps:
//!
//! * **Horizontal (P1)** — [`partition`]: per-model dynamic programming
//!   that slices each network into pipeline stages across the SoC's
//!   power-ranked processors, with NPU operator fallback.
//! * **Vertical (P2)** — [`mitigation`] re-orders the request sequence so
//!   high-contention models never overlap temporally (a Linear Assignment
//!   Problem solved by the Kuhn–Munkres algorithm in [`lap`]), and
//!   [`worksteal`] aligns stage times across requests via work stealing
//!   plus tail-bubble collapse.
//!
//! Plans ([`plan::PipelinePlan`]) carry full bubble accounting (Def. 3)
//! and execute on the [`h2p_simulator`] SoC simulator through
//! [`executor`], where interference, thermal throttling and memory
//! pressure play out dynamically.
//!
//! ## Quickstart
//!
//! ```
//! use hetero2pipe::planner::Planner;
//! use h2p_models::zoo::ModelId;
//! use h2p_simulator::SocSpec;
//!
//! # fn main() -> Result<(), hetero2pipe::error::PlanError> {
//! let soc = SocSpec::kirin_990();
//! let planner = Planner::new(&soc)?;
//! let planned = planner.plan_models(&[
//!     ModelId::YoloV4,
//!     ModelId::MobileNetV2,
//!     ModelId::Bert,
//! ])?;
//! let report = planned.execute(&soc)?;
//! assert!(report.throughput_per_sec > 0.0);
//! println!(
//!     "latency {:.1} ms, throughput {:.2}/s, bubbles {:.1} ms",
//!     report.makespan_ms,
//!     report.throughput_per_sec,
//!     report.measured_bubble_ms,
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod batching;
pub mod error;
pub mod estimate;
pub mod executor;
pub mod lap;
pub mod lint;
pub mod mitigation;
pub mod online;
pub mod par;
pub mod partition;
pub mod plan;
pub mod planner;
pub mod recovery;
pub mod report;
pub mod searchspace;
pub mod sync;
pub mod workload;
pub mod worksteal;

pub use error::PlanError;
pub use estimate::Estimator;
pub use executor::{execute, ExecutionReport};
pub use plan::{PipelinePlan, RequestPlan, StagePlan};
pub use planner::{PlannedPipeline, Planner, PlannerConfig};
pub use recovery::{
    chaos_faults, replan_on_survivors, run_with_recovery, RecoveryOutcome, RecoveryPolicy,
    RecoveryReport, RoundLog,
};
