//! Error types for the Hetero²Pipe planner.

use std::fmt;

use h2p_contention::ridge::FitError;
use h2p_simulator::SimError;

/// Errors produced while planning or executing a pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The request set was empty.
    EmptyRequestSet,
    /// The SoC has no big CPU cluster to profile PMU counters on.
    NoCpu,
    /// The contention-intensity regression could not be trained.
    Training(FitError),
    /// No feasible stage assignment exists for a model on the available
    /// processors (should not happen while a CPU is present, since CPUs
    /// support every operator).
    NoFeasiblePipeline {
        /// Name of the model that could not be placed.
        model: String,
    },
    /// A request in the plan lowered to zero simulator tasks (every
    /// stage slot empty), so it would silently report a latency of zero.
    EmptyRequest {
        /// Name of the model whose request had no stages.
        model: String,
        /// Original submission index of the request.
        request: usize,
    },
    /// Lowering the plan onto the simulator failed.
    Simulation(SimError),
    /// Recovery gave up on a request after exhausting its retry budget
    /// (typed degraded outcome — the caller decides whether to drop the
    /// request or surface the failure).
    RetriesExhausted {
        /// Original submission index of the request.
        request: usize,
        /// Attempts made (initial run plus retries).
        attempts: usize,
    },
    /// A request missed its recovery deadline: the accumulated wall time
    /// across recovery rounds exceeded the per-request budget.
    DeadlineExceeded {
        /// Original submission index of the request.
        request: usize,
        /// The deadline that was exceeded, in ms.
        deadline_ms: f64,
    },
    /// Every pipeline processor has dropped out; no replan can place the
    /// remaining work.
    NoSurvivingProcessors,
    /// A recovery replan routed work onto a processor already known to
    /// be down (lint H2P009) — an internal planner invariant violation
    /// surfaced as a typed error rather than a silently dirty audit.
    UnavailableProcessor {
        /// Recovery round that produced the bad plan.
        round: usize,
        /// Rendered lint report describing the violating tasks.
        diags: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::EmptyRequestSet => write!(f, "request set is empty"),
            PlanError::NoCpu => write!(f, "SoC has no big CPU cluster for PMU profiling"),
            PlanError::Training(e) => write!(f, "intensity regression failed: {e}"),
            PlanError::NoFeasiblePipeline { model } => {
                write!(f, "no feasible pipeline for model {model}")
            }
            PlanError::EmptyRequest { model, request } => {
                write!(
                    f,
                    "request {request} of model {model} lowered to zero tasks"
                )
            }
            PlanError::Simulation(e) => write!(f, "simulation failed: {e}"),
            PlanError::RetriesExhausted { request, attempts } => {
                write!(
                    f,
                    "request {request} still failing after {attempts} attempts — retry budget \
                     exhausted"
                )
            }
            PlanError::DeadlineExceeded {
                request,
                deadline_ms,
            } => {
                write!(
                    f,
                    "request {request} exceeded its {deadline_ms} ms recovery deadline"
                )
            }
            PlanError::NoSurvivingProcessors => {
                write!(
                    f,
                    "all pipeline processors are down; nothing can be replanned"
                )
            }
            PlanError::UnavailableProcessor { round, diags } => {
                write!(
                    f,
                    "recovery round {round} planned onto an unavailable processor:\n{diags}"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Training(e) => Some(e),
            PlanError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FitError> for PlanError {
    fn from(e: FitError) -> Self {
        PlanError::Training(e)
    }
}

impl From<SimError> for PlanError {
    fn from(e: SimError) -> Self {
        PlanError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = PlanError::NoFeasiblePipeline {
            model: "BERT".to_owned(),
        };
        assert!(e.to_string().contains("BERT"));
        assert!(PlanError::EmptyRequestSet.to_string().contains("empty"));
    }

    #[test]
    fn conversions_wrap_sources() {
        use std::error::Error;
        let e: PlanError = FitError::Empty.into();
        assert!(e.source().is_some());
        let s: PlanError = SimError::CyclicDependency { stuck: 1 }.into();
        assert!(s.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanError>();
    }
}
