//! Search-space accounting (Appendix A, Eq. 12–14).
//!
//! The appendix motivates the two-step decomposition by counting the raw
//! search space: the number of feasible processor pipelines on a typical
//! SoC and, for each model, the number of distinct split-point choices.
//! The paper quotes 449 feasible pipelines for an 8-core CPU + GPU + NPU
//! and over 3.6 B split points for a 28-layer MobileNetV2. Eq. (12)'s
//! published form contains typos (e.g. `P_b^min = max(1, P' + C + C_b)`
//! cannot be a lower bound), so this module implements a clean,
//! documented enumeration of the same space; the bench binary reports
//! both our count and the paper's quoted numbers.

/// Binomial coefficient as `f64` (exact for the small arguments used
/// here); 0 when `k > n`.
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Number of ways to run `groups` pipeline stages on a CPU cluster of
/// `cores` in-order cores: each stage gets a non-empty contiguous run of
/// cores and every core is used, i.e. compositions `C(cores−1, groups−1)`.
/// One way to use zero groups (the cluster sits out).
pub fn cluster_partitions(cores: u64, groups: u64) -> f64 {
    if groups == 0 {
        1.0
    } else if groups > cores {
        0.0
    } else {
        binomial(cores - 1, groups - 1)
    }
}

/// Description of the processor inventory for search-space counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inventory {
    /// Big CPU cores.
    pub big_cores: u64,
    /// Small CPU cores.
    pub small_cores: u64,
    /// Whether a GPU is present (indivisible single stage).
    pub has_gpu: bool,
    /// Whether an NPU is present (indivisible single stage).
    pub has_npu: bool,
}

impl Inventory {
    /// The paper's example device: 8-core CPU (4 big + 4 small), GPU, NPU.
    pub fn paper_example() -> Self {
        Inventory {
            big_cores: 4,
            small_cores: 4,
            has_gpu: true,
            has_npu: true,
        }
    }
}

/// Number of feasible pipelines with exactly `stages` stages: choose how
/// many stages run on the big cluster (`p_b`), how many on the small
/// cluster (`p_s`), and whether the GPU/NPU participate, with
/// `p_b + p_s + gpu + npu = stages`.
pub fn pipelines_with_stages(inv: Inventory, stages: u64) -> f64 {
    let mut total = 0.0;
    let gpu_options: &[u64] = if inv.has_gpu { &[0, 1] } else { &[0] };
    let npu_options: &[u64] = if inv.has_npu { &[0, 1] } else { &[0] };
    for &g in gpu_options {
        for &n in npu_options {
            if g + n > stages {
                continue;
            }
            let cpu_stages = stages - g - n;
            for p_b in 0..=cpu_stages.min(inv.big_cores) {
                let p_s = cpu_stages - p_b;
                if p_s > inv.small_cores {
                    continue;
                }
                total += cluster_partitions(inv.big_cores, p_b)
                    * cluster_partitions(inv.small_cores, p_s);
            }
        }
    }
    total
}

/// Total feasible pipelines with stage counts in `[min_stages,
/// max_stages]` (the paper uses `P` between 2 and `C + 2 = 10`).
pub fn count_pipelines(inv: Inventory, min_stages: u64, max_stages: u64) -> f64 {
    (min_stages..=max_stages)
        .map(|p| pipelines_with_stages(inv, p))
        .sum()
}

/// Total split-point choices for one `n_layers` model (Eq. 14): for each
/// stage count `P`, `C(n−1, P−1)` layer splits times the number of
/// `P`-stage pipelines.
pub fn count_split_points(inv: Inventory, n_layers: u64, min_stages: u64, max_stages: u64) -> f64 {
    (min_stages..=max_stages)
        .map(|p| binomial(n_layers - 1, p - 1) * pipelines_with_stages(inv, p))
        .sum()
}

/// Split-point count using the paper's own accounting for the "over 3.6 B
/// for MobileNetV2" example: the paper multiplies the *total* pipeline
/// count (its 449; our enumeration yields 319) by the total split-choice
/// count `Σ_P C(n−1, P−1)` — 449 × 8.19 M ≈ 3.68 B reproduces the quoted
/// figure exactly, confirming this reading of Eq. (14).
pub fn count_split_points_paper_style(
    inv: Inventory,
    n_layers: u64,
    min_stages: u64,
    max_stages: u64,
) -> f64 {
    let pipelines = count_pipelines(inv, min_stages, max_stages);
    let splits: f64 = (min_stages..=max_stages)
        .map(|p| binomial(n_layers - 1, p - 1))
        .sum();
    pipelines * splits
}

/// Joint search-space size for a multi-model request set: the product of
/// each model's split-point count (Eq. 14's outer product). Returned as
/// `f64` because it overflows integers immediately.
pub fn joint_search_space(
    inv: Inventory,
    layer_counts: &[u64],
    min_stages: u64,
    max_stages: u64,
) -> f64 {
    layer_counts
        .iter()
        .map(|&n| count_split_points(inv, n, min_stages, max_stages))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_matches_pascal() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(27, 0), 1.0);
        assert_eq!(binomial(3, 5), 0.0);
        assert_eq!(binomial(27, 9), 4686825.0);
    }

    #[test]
    fn cluster_partitions_are_compositions() {
        // 4 cores into 2 contiguous groups: 3 ways (1+3, 2+2, 3+1).
        assert_eq!(cluster_partitions(4, 2), 3.0);
        assert_eq!(cluster_partitions(4, 0), 1.0);
        assert_eq!(cluster_partitions(4, 5), 0.0);
        assert_eq!(cluster_partitions(4, 4), 1.0);
    }

    #[test]
    fn paper_example_pipeline_count_is_in_the_hundreds() {
        // The paper quotes 449 for this device; Eq. (12) as printed has
        // typos, so our clean enumeration lands in the same regime but not
        // on the same number — documented in EXPERIMENTS.md.
        let c = count_pipelines(Inventory::paper_example(), 2, 10);
        assert!(
            (200.0..700.0).contains(&c),
            "expected hundreds of pipelines, got {c}"
        );
    }

    #[test]
    fn mobilenet_split_space_is_billions() {
        // Paper: over 3.6 B split points for MobileNetV2's 28 layers,
        // under the paper's total×total accounting.
        let s = count_split_points_paper_style(Inventory::paper_example(), 28, 2, 10);
        assert!(s > 1e9, "got {s}");
        assert!(s < 1e12, "got {s}");
        // The per-stage-consistent count is smaller but still huge.
        let strict = count_split_points(Inventory::paper_example(), 28, 2, 10);
        assert!(strict > 1e7, "got {strict}");
        assert!(strict < s);
    }

    #[test]
    fn joint_space_grows_exponentially() {
        let inv = Inventory::paper_example();
        let one = joint_search_space(inv, &[28], 2, 10);
        let three = joint_search_space(inv, &[28, 21, 61], 2, 10);
        assert!(three > one * 1e9, "multi-model space explodes: {three}");
    }

    #[test]
    fn no_accelerators_means_cpu_only_pipelines() {
        let inv = Inventory {
            big_cores: 4,
            small_cores: 4,
            has_gpu: false,
            has_npu: false,
        };
        // Exactly the CPU compositions with 2..=8 stages.
        let expected: f64 = (2..=8u64)
            .map(|stages| {
                (0..=stages)
                    .map(|pb| cluster_partitions(4, pb) * cluster_partitions(4, stages - pb))
                    .sum::<f64>()
            })
            .sum();
        assert_eq!(count_pipelines(inv, 2, 8), expected);
    }

    #[test]
    fn stage_counts_outside_inventory_are_zero() {
        let inv = Inventory::paper_example();
        assert_eq!(pipelines_with_stages(inv, 11), 0.0);
        assert!(pipelines_with_stages(inv, 10) > 0.0, "4+4+1+1 exists");
    }
}
