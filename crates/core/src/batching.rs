//! Batching of lightweight models (Appendix D).
//!
//! A single MobileNetV2/SqueezeNet inference is 20–40× shorter than a
//! BERT stage, so aligning it vertically is hopeless — the kernel-launch
//! and weight-load overhead dominates. The workaround is to coalesce
//! consecutive requests for the same lightweight model into one batched
//! request whose execution time is (almost) affine in the batch size,
//! closing the light/heavy gap and amortizing the fixed costs.

use h2p_models::graph::ModelGraph;
use h2p_models::layer::Layer;
use h2p_models::zoo::ModelId;

/// A coalesced run of identical requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchGroup {
    /// The model all requests in the group ask for.
    pub model: ModelId,
    /// Number of original requests merged (1 = not batched).
    pub batch: u32,
}

/// Scales a model graph to batch size `b`: per-inference FLOPs and
/// activation traffic multiply by `b`, weights stay resident once, and
/// per-layer dispatch overhead is unchanged — which is exactly what makes
/// batched execution affine rather than proportional.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn batched_graph(graph: &ModelGraph, b: u32) -> ModelGraph {
    assert!(b > 0, "batch size must be positive");
    if b == 1 {
        return graph.clone();
    }
    let bf = b as u64;
    let layers: Vec<Layer> = graph
        .layers()
        .iter()
        .map(|l| {
            let mut scaled = Layer::new(
                l.name.to_string(),
                l.op,
                l.flops * b as f64,
                l.input_bytes * bf,
                l.output_bytes * bf,
                l.weight_bytes,
            )
            .locality(l.locality);
            // Activations scale with the batch; the weight-resident part
            // of the working set does not.
            let act_ws = l.working_set_bytes.saturating_sub(l.weight_bytes);
            scaled = scaled.working_set(l.weight_bytes + act_ws * bf);
            if let Some(t) = l.touched_bytes_override {
                scaled = scaled.touched_bytes(t * bf);
            }
            scaled
        })
        .collect();
    ModelGraph::new(
        format!("{}x{}", graph.name(), b),
        graph.input_bytes() * bf,
        layers,
    )
}

/// Coalesces consecutive identical *lightweight* requests into batch
/// groups of at most `max_batch`. Heavyweight models and non-adjacent
/// duplicates are left untouched (batching across positions would violate
/// arrival order).
///
/// ```
/// use h2p_models::zoo::ModelId::{Bert, MobileNetV2};
/// use hetero2pipe::batching::coalesce;
///
/// let groups = coalesce(&[MobileNetV2, MobileNetV2, Bert], 8);
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].batch, 2);
/// assert_eq!(groups[1].batch, 1);
/// ```
///
/// # Panics
///
/// Panics if `max_batch == 0`.
pub fn coalesce(ids: &[ModelId], max_batch: u32) -> Vec<BatchGroup> {
    assert!(max_batch > 0, "max_batch must be positive");
    let mut out: Vec<BatchGroup> = Vec::new();
    for &id in ids {
        match out.last_mut() {
            Some(last) if last.model == id && id.is_lightweight() && last.batch < max_batch => {
                last.batch += 1;
            }
            _ => out.push(BatchGroup {
                model: id,
                batch: 1,
            }),
        }
    }
    out
}

/// Expands batch groups into the graphs the planner consumes.
pub fn graphs_for_groups(groups: &[BatchGroup]) -> Vec<ModelGraph> {
    groups
        .iter()
        .map(|g| batched_graph(&g.model.graph(), g.batch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::cost::CostModel;
    use h2p_simulator::SocSpec;

    #[test]
    fn coalesce_merges_only_adjacent_lightweights() {
        use ModelId::*;
        let ids = [
            MobileNetV2,
            MobileNetV2,
            MobileNetV2,
            Bert,
            MobileNetV2,
            SqueezeNet,
            SqueezeNet,
        ];
        let groups = coalesce(&ids, 8);
        assert_eq!(
            groups,
            vec![
                BatchGroup {
                    model: MobileNetV2,
                    batch: 3
                },
                BatchGroup {
                    model: Bert,
                    batch: 1
                },
                BatchGroup {
                    model: MobileNetV2,
                    batch: 1
                },
                BatchGroup {
                    model: SqueezeNet,
                    batch: 2
                },
            ]
        );
    }

    #[test]
    fn heavy_models_never_batch() {
        use ModelId::*;
        let groups = coalesce(&[Bert, Bert, Bert], 8);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.batch == 1));
    }

    #[test]
    fn max_batch_caps_group_size() {
        let ids = vec![ModelId::SqueezeNet; 10];
        let groups = coalesce(&ids, 4);
        let batches: Vec<u32> = groups.iter().map(|g| g.batch).collect();
        assert_eq!(batches, vec![4, 4, 2]);
        assert_eq!(batches.iter().sum::<u32>(), 10, "requests conserved");
    }

    #[test]
    fn batched_graph_scales_work_but_not_weights() {
        let g = ModelId::MobileNetV2.graph();
        let b4 = batched_graph(&g, 4);
        assert!((b4.total_flops() - 4.0 * g.total_flops()).abs() < 1.0);
        assert_eq!(b4.weight_bytes(), g.weight_bytes());
        assert_eq!(b4.len(), g.len());
        assert!(b4.name().ends_with("x4"));
    }

    #[test]
    fn batching_amortizes_latency_on_the_simulated_cost_model() {
        let soc = SocSpec::kirin_990();
        let cost = CostModel::new(&soc);
        let gpu = soc.processor_by_name("GPU").unwrap();
        let g = ModelId::SqueezeNet.graph();
        let single = cost.model_latency_ms(&g, gpu).unwrap();
        let batched = cost.model_latency_ms(&batched_graph(&g, 8), gpu).unwrap();
        assert!(
            batched < 8.0 * single,
            "batch of 8 ({batched} ms) must beat 8 singles ({} ms)",
            8.0 * single
        );
        assert!(batched > single, "more work still takes longer");
    }

    #[test]
    fn batch_of_one_is_identity() {
        let g = ModelId::GoogLeNet.graph();
        assert_eq!(batched_graph(&g, 1), g);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        batched_graph(&ModelId::SqueezeNet.graph(), 0);
    }
}

/// Property tests pinning the affine batching model of Appendix D
/// against the cost model, across randomized layer coefficients.
///
/// Two regimes matter:
///
/// * **Total latency is non-decreasing in the batch size** for *any*
///   coefficients: compute scales linearly, memory traffic and the
///   spill factor are non-decreasing in the working set, so a larger
///   batch can never get cheaper in absolute terms.
/// * **Per-item latency is non-increasing** only in the *constant-spill*
///   regime (working set under L2 at the largest batch), where the
///   model is exactly affine `O + k·b` and the fixed kernel overhead
///   amortizes as `k + O/b`. In the logarithmic spill band between L2
///   and the spill cap, per-item cost can legitimately creep upward as
///   activations overflow the cache — so the amortization property is
///   asserted only where the affine model holds.
#[cfg(test)]
mod properties {
    use super::*;
    use h2p_models::cost::CostModel;
    use h2p_models::layer::OpKind;
    use h2p_simulator::{ProcessorId, SocSpec};
    use proptest::prelude::*;

    const OPS: [OpKind; 4] = [OpKind::Conv, OpKind::DwConv, OpKind::Fc, OpKind::MatMul];

    /// One synthetic layer with the given coefficients; the default
    /// working set (input + output + weights) keeps the activation
    /// part batch-scaled by `batched_graph` while weights stay
    /// resident once.
    fn synthetic(mflops: u64, act_kib: u64, weight_kib: u64, op: OpKind) -> ModelGraph {
        let act = act_kib * 1024;
        let layer = Layer::new("l0", op, mflops as f64 * 1e6, act, act, weight_kib * 1024);
        ModelGraph::new("synthetic", act, vec![layer])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn batched_latency_is_monotone_in_batch_size(
            mflops in 1u64..2000,
            act_kib in 1u64..4096,
            weight_kib in 0u64..8192,
            op in 0usize..4,
            proc in 0usize..4,
            b in 1u32..16,
        ) {
            let soc = SocSpec::kirin_990();
            if proc >= soc.processors.len() {
                return Ok(());
            }
            let cost = CostModel::new(&soc);
            let g = synthetic(mflops, act_kib, weight_kib, OPS[op]);
            let pid = ProcessorId(proc);
            // Unsupported (op, processor) pairs have no latency at any
            // batch size; nothing to compare.
            let Some(lo) = cost.model_latency_ms(&batched_graph(&g, b), pid) else {
                return Ok(());
            };
            let Some(hi) = cost.model_latency_ms(&batched_graph(&g, b + 1), pid) else {
                return Ok(());
            };
            prop_assert!(
                hi >= lo * (1.0 - 1e-12),
                "batch {} -> {} got cheaper on proc {}: {} -> {} ms",
                b, b + 1, proc, lo, hi
            );
        }

        #[test]
        fn per_item_latency_amortizes_in_the_affine_regime(
            mflops in 1u64..2000,
            act_kib in 1u64..7,
            weight_kib in 0u64..65,
            op in 0usize..4,
            proc in 0usize..4,
            pair_seed in any::<u64>(),
        ) {
            let soc = SocSpec::kirin_990();
            if proc >= soc.processors.len() {
                return Ok(());
            }
            let spec = &soc.processors[proc];
            // Constant-spill guard: the working set at the largest
            // batch (weights + 2·act·16) must fit in this processor's
            // L2 so the spill factor is 1 throughout and the model is
            // exactly affine. The coefficient ranges keep this true on
            // every kirin-990 processor (min L2 = 256 KiB), but the
            // guard documents — and enforces — the regime boundary.
            let ws16_kib = weight_kib + 2 * act_kib * 16;
            if ws16_kib > u64::from(spec.l2_kib) {
                return Ok(());
            }
            let b1 = 1 + (pair_seed % 15) as u32; // 1..=15
            let span = u64::from(16 - b1);
            let b2 = b1 + 1 + ((pair_seed >> 8) % span) as u32; // b1+1..=16
            let cost = CostModel::new(&soc);
            let g = synthetic(mflops, act_kib, weight_kib, OPS[op]);
            let pid = ProcessorId(proc);
            let Some(l1) = cost.model_latency_ms(&batched_graph(&g, b1), pid) else {
                return Ok(());
            };
            let Some(l2) = cost.model_latency_ms(&batched_graph(&g, b2), pid) else {
                return Ok(());
            };
            let per1 = l1 / f64::from(b1);
            let per2 = l2 / f64::from(b2);
            prop_assert!(
                per2 <= per1 * (1.0 + 1e-12),
                "per-item latency grew in the affine regime on proc {}: \
                 batch {} = {} ms/item, batch {} = {} ms/item",
                proc, b1, per1, b2, per2
            );
        }
    }
}
