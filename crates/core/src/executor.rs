//! Lowering pipeline plans onto the SoC simulator and collecting
//! execution reports.
//!
//! Each planned stage becomes one simulator task pinned to its processor,
//! with a dependency on the same request's previous stage. Tasks are
//! submitted in `(position, slot)` order, so each processor's FIFO queue
//! naturally enforces the staggered pipeline: the request at position
//! `r` uses slot `k` only after position `r−1` has left it. Interference,
//! throttling, memory pressure and copy costs then play out dynamically
//! in the engine — the plan's estimates are *not* fed back in, so a bad
//! plan genuinely executes badly.

use std::collections::HashSet;

use h2p_simulator::engine::{request_of_label, EngineEvent, Simulation, TaskId, TaskSpec};
use h2p_simulator::soc::SocSpec;
use h2p_simulator::timeline::Trace;
use h2p_telemetry::lifecycle::{LifecycleLog, LifecycleStage, RequestId, TraceId};

use crate::error::PlanError;
use crate::plan::PipelinePlan;
use crate::planner::PlannedPipeline;

/// Effective bandwidth for staging weights into a processor's address
/// space (map/unmap + memcpy through the unified memory), GB/s.
pub const WEIGHT_STAGING_GBPS: f64 = 2.0;

/// First-touch weight-staging cost: the first time a given model slice
/// lands on a given processor, its parameters must be copied/paged into
/// that backend's buffers. Subsequent executions of the *same placement*
/// reuse the resident session — which is precisely why the paper argues
/// static pipeline plans beat Band's fallback-driven dynamic switching
/// ("constant new memory allocation and data transfer").
pub fn staging_ms(
    seen: &mut HashSet<(String, usize, usize, usize)>,
    key: (String, usize, usize, usize),
    bytes: u64,
) -> f64 {
    if seen.insert(key) {
        bytes as f64 / (WEIGHT_STAGING_GBPS * 1e6)
    } else {
        0.0
    }
}

/// Measured outcome of executing a plan on the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// The full simulator trace.
    pub trace: Trace,
    /// End-to-end makespan in milliseconds.
    pub makespan_ms: f64,
    /// Completed inferences per second (`#models / latency`, the paper's
    /// throughput metric).
    pub throughput_per_sec: f64,
    /// Completion time of each request, indexed by *original* request id.
    pub request_latency_ms: Vec<f64>,
    /// Total measured processor idle time between spans (the realized
    /// pipeline bubbles).
    pub measured_bubble_ms: f64,
    /// Mean co-execution slowdown across all stage executions.
    pub mean_slowdown: f64,
}

use crate::plan::sensitivity;

/// Executes `plan` on a fresh simulation of `soc`.
///
/// # Errors
///
/// Returns [`PlanError::Simulation`] if the lowered task graph is invalid
/// (cannot happen for plans produced by [`crate::planner::Planner`]).
pub fn execute(plan: &PipelinePlan, soc: &SocSpec) -> Result<ExecutionReport, PlanError> {
    execute_with_arrivals(plan, soc, &[])
}

/// Executes `plan` with per-request arrival times: request `i` (by
/// *original* submission index) may not start before `arrivals[i]` ms.
/// Requests beyond `arrivals.len()` are available immediately — pass an
/// empty slice for the batch (all-at-time-zero) semantics of
/// [`execute`]. Use [`response_times`] to turn the report's completion
/// times into arrival-relative response times.
///
/// In debug builds, the resulting trace is audited against the
/// simulator's contracts ([`h2p_simulator::audit`]) and a violation
/// panics — every integration test doubles as an audit test.
///
/// # Errors
///
/// Returns [`PlanError::Simulation`] if the lowered task graph is
/// invalid.
pub fn execute_with_arrivals(
    plan: &PipelinePlan,
    soc: &SocSpec,
    arrivals: &[f64],
) -> Result<ExecutionReport, PlanError> {
    lower_with_arrivals(plan, soc, arrivals)?.execute()
}

/// A pipeline plan lowered onto a fresh [`Simulation`], ready to run.
///
/// Produced by [`lower`]/[`lower_with_arrivals`]. Splitting lowering
/// from execution lets callers inspect the exact [`TaskSpec`]s a plan
/// turns into — the `h2p trace` subcommand uses this to audit and
/// event-log a run.
#[derive(Debug, Clone)]
pub struct LoweredPlan {
    sim: Simulation,
    final_task: Vec<Option<TaskId>>,
    executed_requests: usize,
}

impl LoweredPlan {
    /// Wraps an externally-built task graph (baseline schemes lower their
    /// own) so it flows through the same execute/audit/lint path as plans
    /// lowered by [`lower`]. `final_task[i]` is the last task of request
    /// `i` (by original submission index, `None` if the request lowered
    /// to nothing); `executed_requests` is how many requests the graph
    /// serves.
    pub fn from_parts(
        sim: Simulation,
        final_task: Vec<Option<TaskId>>,
        executed_requests: usize,
    ) -> Self {
        LoweredPlan {
            sim,
            final_task,
            executed_requests,
        }
    }

    /// The simulation holding the lowered task graph.
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }

    /// Decomposes the lowered plan back into its parts (inverse of
    /// [`LoweredPlan::from_parts`]). The recovery runner uses this to
    /// execute the task graph under a fault injector instead of the
    /// plain `execute` path.
    pub fn into_parts(self) -> (Simulation, Vec<Option<TaskId>>, usize) {
        (self.sim, self.final_task, self.executed_requests)
    }

    /// Statically lints the lowered task graph against the simulation's
    /// SoC without running it ([`h2p_analyze::lint_tasks`]).
    pub fn lint(&self) -> h2p_analyze::Diagnostics {
        h2p_analyze::lint_tasks(self.sim.soc(), self.sim.tasks())
    }

    /// Runs the simulation and assembles the execution report. In debug
    /// builds the trace is audited first and violations panic.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Simulation`] if the task graph is invalid.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the trace fails its audit — that is a
    /// simulator bug, never a planner input problem.
    pub fn execute(self) -> Result<ExecutionReport, PlanError> {
        // Debug builds statically lint the task graph before running it —
        // the pre-execution counterpart of the post-execution audit below.
        #[cfg(debug_assertions)]
        {
            let diags = self.lint();
            debug_assert!(
                diags.is_clean(),
                "lowered task graph fails its static lint:\n{diags}"
            );
        }
        let LoweredPlan {
            sim,
            final_task,
            executed_requests,
        } = self;
        #[cfg(debug_assertions)]
        let (audit_soc, audit_tasks) = (sim.soc().clone(), sim.tasks().to_vec());
        let trace = sim.run().map_err(PlanError::Simulation)?;
        #[cfg(debug_assertions)]
        h2p_simulator::audit::assert_clean(&audit_soc, &audit_tasks, &trace);
        Ok(assemble_report(trace, &final_task, executed_requests))
    }

    /// Runs the simulation and additionally returns the engine's
    /// structured event log ([`EngineEvent`]s in simulation-time order).
    ///
    /// In debug builds the task graph is linted first and the finished
    /// trace must pass the *reconciled* audit
    /// ([`h2p_simulator::audit::audit_with_events`]), which replays the
    /// logged piecewise interference rates — strictly stronger than the
    /// envelope-only audit [`LoweredPlan::execute`] runs. Callers that
    /// audit a deliberately corrupted trace (`h2p trace --corrupt`) do so
    /// on their own copy afterwards. When the `H2P_CHROME_TRACE`
    /// environment variable names a path, the run's Chrome Trace JSON is
    /// additionally written there (best-effort: a write failure is
    /// reported on stderr, never fails the run).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Simulation`] if the task graph is invalid.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the trace fails the reconciled audit — that
    /// is a simulator bug, never a planner input problem.
    pub fn execute_logged(self) -> Result<(ExecutionReport, Vec<EngineEvent>), PlanError> {
        #[cfg(debug_assertions)]
        {
            let diags = self.lint();
            debug_assert!(
                diags.is_clean(),
                "lowered task graph fails its static lint:\n{diags}"
            );
        }
        let LoweredPlan {
            sim,
            final_task,
            executed_requests,
        } = self;
        let dump_path = std::env::var_os("H2P_CHROME_TRACE");
        let needs_specs = cfg!(debug_assertions) || dump_path.is_some();
        let specs = needs_specs.then(|| (sim.soc().clone(), sim.tasks().to_vec()));
        let (trace, events) = sim.run_with_events().map_err(PlanError::Simulation)?;
        #[cfg(debug_assertions)]
        if let Some((soc, tasks)) = &specs {
            h2p_simulator::audit::assert_clean_with_events(soc, tasks, &events, &trace);
        }
        if let (Some(path), Some((soc, tasks))) = (dump_path, &specs) {
            let doc = h2p_simulator::export::chrome_trace(soc, tasks, &events);
            if let Err(err) = std::fs::write(&path, doc.to_json()) {
                eprintln!(
                    "h2p: failed to write H2P_CHROME_TRACE {}: {err}",
                    std::path::Path::new(&path).display()
                );
            }
        }
        Ok((
            assemble_report(trace, &final_task, executed_requests),
            events,
        ))
    }
}

/// Groups a trace's spans by originating request, parsed from the
/// lowering labels (`{model}#{request}@s{slot}` and
/// `{model}#{request}@s{slot}r{run}`). Entry `i` is the `(start, end)`
/// envelope over request `i`'s spans — the async request slice the
/// chrome exporter draws — or `None` for indices the trace never
/// mentions (and for spans with foreign labels).
pub fn request_slices(trace: &Trace) -> Vec<Option<(f64, f64)>> {
    let mut out: Vec<Option<(f64, f64)>> = Vec::new();
    for span in &trace.spans {
        let Some(r) = request_of_label(&span.label) else {
            continue;
        };
        if out.len() <= r {
            out.resize(r + 1, None);
        }
        out[r] = Some(match out[r] {
            None => (span.start_ms, span.end_ms),
            Some((s, e)) => (s.min(span.start_ms), e.max(span.end_ms)),
        });
    }
    out
}

/// Emits execute/complete lifecycle events for every request visible in
/// an execution report, under `trace_id`. The execute event carries the
/// request's first span start and the completion its last span end (the
/// same envelope [`request_slices`] computes), all in simulated
/// milliseconds shifted by `offset_ms` — a recovery round replaying at
/// a later offset passes its round start so the global lifecycle stream
/// stays monotone per request. `latency_ms` on the completion is the
/// end-to-end latency since admission at time zero (i.e. the shifted
/// completion time), matching
/// [`ExecutionReport::request_latency_ms`] when `offset_ms` is zero.
pub fn record_request_lifecycle(
    log: &LifecycleLog,
    trace_id: TraceId,
    report: &ExecutionReport,
    offset_ms: f64,
) {
    for (r, slice) in request_slices(&report.trace).iter().enumerate() {
        let Some((start, end)) = *slice else {
            continue;
        };
        log.record(
            trace_id,
            RequestId(r),
            offset_ms + start,
            LifecycleStage::Execute,
        );
        log.record(
            trace_id,
            RequestId(r),
            offset_ms + end,
            LifecycleStage::Complete {
                latency_ms: offset_ms + end,
            },
        );
    }
}

/// Lowers `plan` onto a fresh simulation of `soc` without running it.
///
/// # Errors
///
/// Returns [`PlanError::EmptyRequest`] if a request lowers to zero
/// tasks.
pub fn lower(plan: &PipelinePlan, soc: &SocSpec) -> Result<LoweredPlan, PlanError> {
    lower_with_arrivals(plan, soc, &[])
}

/// Lowers `plan` with per-request arrival times (see
/// [`execute_with_arrivals`]) without running it.
///
/// # Errors
///
/// Returns [`PlanError::EmptyRequest`] if a request lowers to zero
/// tasks.
pub fn lower_with_arrivals(
    plan: &PipelinePlan,
    soc: &SocSpec,
    arrivals: &[f64],
) -> Result<LoweredPlan, PlanError> {
    let mut sim = Simulation::new(soc.clone());
    let request_count = plan
        .requests
        .iter()
        .map(|r| r.request + 1)
        .max()
        .unwrap_or(0);
    let mut final_task: Vec<Option<TaskId>> = vec![None; request_count];

    let mut seen: HashSet<(String, usize, usize, usize)> = HashSet::new();
    for req in &plan.requests {
        let mut prev: Option<TaskId> = None;
        let arrival = arrivals.get(req.request).copied().unwrap_or(0.0);
        for (slot, stage) in req.stages.iter().enumerate() {
            let Some(stage) = stage else { continue };
            let release = if prev.is_none() { arrival } else { 0.0 };
            let upload = staging_ms(
                &mut seen,
                (
                    req.model.clone(),
                    stage.proc.index(),
                    stage.range.first,
                    stage.range.last,
                ),
                stage.footprint_bytes,
            );
            if stage.runs.is_empty() {
                // Homogeneous stage: one task.
                let mut spec = TaskSpec::new(
                    format!("{}#{}@s{}", req.model, req.request, slot),
                    stage.proc,
                    stage.total_ms() + upload,
                )
                .intensity(stage.intensity)
                .sensitivity(sensitivity(stage.intensity))
                .bandwidth(stage.bandwidth_gbps)
                .footprint(stage.footprint_bytes)
                .release(release);
                if let Some(p) = prev {
                    spec = spec.after(p);
                }
                prev = Some(sim.add_task(spec));
            } else {
                // Operator-fallback stage: one chained task per run, so
                // the fallback CPU genuinely gets occupied (and contended)
                // while the NPU waits — Band's fallback weakness.
                for (ri, run) in stage.runs.iter().enumerate() {
                    let ms = run.ms
                        + if ri == 0 {
                            stage.copy_in_ms + upload
                        } else {
                            0.0
                        };
                    let mut spec = TaskSpec::new(
                        format!("{}#{}@s{}r{}", req.model, req.request, slot, ri),
                        run.proc,
                        ms,
                    )
                    .intensity(stage.intensity)
                    .sensitivity(sensitivity(stage.intensity))
                    .bandwidth(stage.bandwidth_gbps)
                    .footprint(if ri == 0 { stage.footprint_bytes } else { 0 })
                    .release(if ri == 0 { release } else { 0.0 });
                    if let Some(p) = prev {
                        spec = spec.after(p);
                    }
                    prev = Some(sim.add_task(spec));
                }
            }
        }
        // A request with no tasks would fall out of the latency map as a
        // phantom 0 ms completion; refuse to execute such a plan.
        if prev.is_none() {
            return Err(PlanError::EmptyRequest {
                model: req.model.clone(),
                request: req.request,
            });
        }
        final_task[req.request] = prev;
    }

    Ok(LoweredPlan {
        sim,
        final_task,
        executed_requests: plan.requests.len(),
    })
}

/// Builds the [`ExecutionReport`] from a finished trace.
fn assemble_report(
    trace: Trace,
    final_task: &[Option<TaskId>],
    executed_requests: usize,
) -> ExecutionReport {
    let makespan_ms = trace.makespan_ms();
    let request_latency_ms: Vec<f64> = final_task
        .iter()
        .map(|t| {
            t.and_then(|id| trace.span(id.index()).map(|s| s.end_ms))
                .unwrap_or(0.0)
        })
        .collect();
    let executed = executed_requests as f64;
    let throughput_per_sec = if makespan_ms > 0.0 {
        executed * 1000.0 / makespan_ms
    } else {
        0.0
    };
    let mean_slowdown = if trace.spans.is_empty() {
        0.0
    } else {
        trace.spans.iter().map(|s| s.slowdown()).sum::<f64>() / trace.spans.len() as f64
    };
    let measured_bubble_ms = trace.idle_bubble_ms();
    ExecutionReport {
        trace,
        makespan_ms,
        throughput_per_sec,
        request_latency_ms,
        measured_bubble_ms,
        mean_slowdown,
    }
}

/// Arrival-relative response times: completion − arrival per request.
/// Requests without an arrival entry are treated as arriving at 0.
pub fn response_times(report: &ExecutionReport, arrivals: &[f64]) -> Vec<f64> {
    report
        .request_latency_ms
        .iter()
        .enumerate()
        .map(|(i, &done)| (done - arrivals.get(i).copied().unwrap_or(0.0)).max(0.0))
        .collect()
}

/// The `p`-th percentile (0–100, nearest-rank) of a sample.
///
/// # Panics
///
/// Panics if the sample is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (s.len() as f64 - 1.0)).round() as usize;
    s[rank.min(s.len() - 1)]
}

impl PlannedPipeline {
    /// Convenience: executes this planned pipeline on `soc`.
    ///
    /// # Errors
    ///
    /// See [`execute`].
    pub fn execute(&self, soc: &SocSpec) -> Result<ExecutionReport, PlanError> {
        execute(&self.plan, soc)
    }

    /// Convenience: executes with per-request arrival times.
    ///
    /// # Errors
    ///
    /// See [`execute_with_arrivals`].
    pub fn execute_with_arrivals(
        &self,
        soc: &SocSpec,
        arrivals: &[f64],
    ) -> Result<ExecutionReport, PlanError> {
        execute_with_arrivals(&self.plan, soc, arrivals)
    }

    /// Convenience: lowers this planned pipeline onto a simulation of
    /// `soc` without running it.
    ///
    /// # Errors
    ///
    /// See [`lower`].
    pub fn lower(&self, soc: &SocSpec) -> Result<LoweredPlan, PlanError> {
        lower(&self.plan, soc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use h2p_models::zoo::ModelId;

    fn run(ids: &[ModelId]) -> ExecutionReport {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let planned = planner.plan_models(ids).unwrap();
        planned.execute(&soc).unwrap()
    }

    #[test]
    fn single_model_executes_to_completion() {
        let r = run(&[ModelId::ResNet50]);
        assert!(r.makespan_ms > 0.0);
        assert_eq!(r.request_latency_ms.len(), 1);
        assert!(r.request_latency_ms[0] > 0.0);
        assert!(r.throughput_per_sec > 0.0);
    }

    #[test]
    fn all_requests_complete_in_multi_model_runs() {
        let ids = [
            ModelId::Vgg16,
            ModelId::SqueezeNet,
            ModelId::Bert,
            ModelId::MobileNetV2,
        ];
        let r = run(&ids);
        assert_eq!(r.request_latency_ms.len(), ids.len());
        for (i, &lat) in r.request_latency_ms.iter().enumerate() {
            assert!(lat > 0.0, "request {i} never completed");
            assert!(lat <= r.makespan_ms + 1e-9);
        }
    }

    #[test]
    fn pipelining_beats_adding_latencies() {
        // The pipeline overlaps stages, so the makespan must be well under
        // the sum of the requests' individual traversal latencies run
        // back-to-back... unless interference dominates; use a mix with an
        // NPU-friendly majority.
        let ids = [
            ModelId::ResNet50,
            ModelId::MobileNetV2,
            ModelId::GoogLeNet,
            ModelId::AlexNet,
        ];
        let r = run(&ids);
        let sum: f64 = r.request_latency_ms.iter().sum();
        assert!(
            r.makespan_ms < sum,
            "pipeline overlap: makespan {} vs serial-ish sum {}",
            r.makespan_ms,
            sum
        );
    }

    #[test]
    fn request_latencies_are_monotone_in_position() {
        let ids = [
            ModelId::MobileNetV2,
            ModelId::MobileNetV2,
            ModelId::MobileNetV2,
        ];
        let r = run(&ids);
        // Identical models in a FIFO pipeline finish in order.
        let mut latencies = r.request_latency_ms.clone();
        let sorted = {
            let mut s = latencies.clone();
            s.sort_by(f64::total_cmp);
            s
        };
        latencies.sort_by(f64::total_cmp);
        assert_eq!(latencies, sorted);
    }

    #[test]
    fn execution_is_deterministic() {
        let ids = [ModelId::Bert, ModelId::SqueezeNet, ModelId::Vit];
        let a = run(&ids);
        let b = run(&ids);
        assert_eq!(a.trace.spans, b.trace.spans);
    }

    /// Regression: a request whose stage slots are all `None` used to
    /// fall through lowering with no tasks and report a phantom latency
    /// of 0 ms via `unwrap_or(0.0)` — breaking the `lat > 0` contract
    /// every caller relies on. It must be rejected instead.
    #[test]
    fn all_none_request_is_rejected_not_zero_latency() {
        use crate::plan::{PipelinePlan, RequestPlan};
        use h2p_contention::ContentionClass;

        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let planned = planner.plan_models(&[ModelId::MobileNetV2]).unwrap();
        let mut plan: PipelinePlan = planned.plan.clone();
        plan.requests.push(RequestPlan {
            request: 1,
            model: "phantom".to_owned(),
            stages: vec![None; plan.procs.len()],
            intensity: 0.0,
            class: ContentionClass::Low,
        });
        let err = execute(&plan, &soc).expect_err("zero-task request must not execute");
        match err {
            PlanError::EmptyRequest { model, request } => {
                assert_eq!(model, "phantom");
                assert_eq!(request, 1);
            }
            other => panic!("expected EmptyRequest, got {other:?}"),
        }
    }

    #[test]
    fn logged_execution_matches_plain_execution() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let planned = planner
            .plan_models(&[ModelId::MobileNetV2, ModelId::SqueezeNet])
            .unwrap();
        let plain = planned.execute(&soc).unwrap();
        let (logged, events) = planned.lower(&soc).unwrap().execute_logged().unwrap();
        assert_eq!(plain.trace.spans, logged.trace.spans);
        assert!(!events.is_empty());
        // One start and one finish event per span.
        let starts = events
            .iter()
            .filter(|e| matches!(e, h2p_simulator::EngineEvent::Start { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, h2p_simulator::EngineEvent::Finish { .. }))
            .count();
        assert_eq!(starts, logged.trace.spans.len());
        assert_eq!(finishes, logged.trace.spans.len());
    }

    #[test]
    fn lowered_traces_audit_clean() {
        // The debug-build gate inside `execute` checks this implicitly;
        // check it explicitly so release test runs cover it too.
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let planned = planner
            .plan_models(&[ModelId::ResNet50, ModelId::Bert, ModelId::MobileNetV2])
            .unwrap();
        let lowered = planned.lower(&soc).unwrap();
        let tasks = lowered.simulation().tasks().to_vec();
        let (report, _) = lowered.execute_logged().unwrap();
        let audit = h2p_simulator::audit::audit(&soc, &tasks, &report.trace);
        assert!(
            audit.is_clean(),
            "planned workload must audit clean:\n{audit}"
        );
    }

    #[test]
    fn request_slices_envelope_every_request() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let planned = planner
            .plan_models(&[ModelId::MobileNetV2, ModelId::SqueezeNet, ModelId::Bert])
            .unwrap();
        let r = planned.execute(&soc).unwrap();
        let slices = request_slices(&r.trace);
        assert_eq!(slices.len(), 3);
        for (i, slice) in slices.iter().enumerate() {
            let (start, end) = slice.expect("every request has spans");
            assert!(start < end, "request {i}");
            assert!(
                (end - r.request_latency_ms[i]).abs() < 1e-9,
                "request {i} envelope ends at its completion time"
            );
        }
    }

    #[test]
    fn sensitivity_grows_with_intensity_but_saturates() {
        assert!(sensitivity(0.0) < sensitivity(1.0));
        assert_eq!(sensitivity(2.0), sensitivity(5.0));
    }

    #[test]
    fn arrivals_delay_and_response_times_subtract() {
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let planned = planner
            .plan_models(&[ModelId::MobileNetV2, ModelId::SqueezeNet])
            .unwrap();
        let arrivals = [0.0, 500.0];
        let r = planned.execute_with_arrivals(&soc, &arrivals).unwrap();
        // Request 1 cannot finish before its arrival.
        assert!(r.request_latency_ms[1] > 500.0);
        let resp = response_times(&r, &arrivals);
        assert!((resp[1] - (r.request_latency_ms[1] - 500.0)).abs() < 1e-9);
        // A spaced-out stream has higher makespan than the batch run.
        let batch = planned.execute(&soc).unwrap();
        assert!(r.makespan_ms >= batch.makespan_ms);
    }

    #[test]
    fn repeat_placements_skip_weight_staging() {
        // Two identical requests: the second run of each stage placement
        // reuses resident weights, so its stage spans are shorter.
        let soc = SocSpec::kirin_990();
        let planner = Planner::new(&soc).unwrap();
        let planned = planner
            .plan_models(&[ModelId::ResNet50, ModelId::ResNet50])
            .unwrap();
        let r = planned.execute(&soc).unwrap();
        // Group spans per (slot) for the two requests and compare the
        // first occurrence against the second on the same processor with
        // the same label suffix.
        let first: Vec<_> = r
            .trace
            .spans
            .iter()
            .filter(|s| s.label.contains("#0@"))
            .collect();
        let second: Vec<_> = r
            .trace
            .spans
            .iter()
            .filter(|s| s.label.contains("#1@"))
            .collect();
        let sum =
            |v: &[&h2p_simulator::timeline::Span]| -> f64 { v.iter().map(|s| s.solo_ms).sum() };
        assert!(
            sum(&second) < sum(&first),
            "second instance must skip staging: {} vs {}",
            sum(&second),
            sum(&first)
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }
}
