//! End-to-end contention-intensity estimation and high/low
//! classification.
//!
//! The planner's mitigation step (Sec. V-B) only needs each request
//! classified as high (ℍ) or low (𝕃) contention. [`IntensityModel`]
//! trains the ridge regression once on the zoo's solo-execution PMU
//! samples (avoiding the combinatorial cost of profiling every
//! co-execution pair — the point of Observation 1), then predicts
//! intensity for any incoming model and classifies it against a
//! percentile threshold.

use serde::{Deserialize, Serialize};

use h2p_models::cost::CostModel;
use h2p_models::graph::ModelGraph;
use h2p_simulator::processor::ProcessorId;

use crate::counters::{ground_truth_intensity, measure, PmuSample};
use crate::ridge::{FitError, RidgeRegression};

/// High/low contention class of one inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentionClass {
    /// ℍ — the request interferes heavily with co-runners.
    High,
    /// 𝕃 — the request is benign.
    Low,
}

impl ContentionClass {
    /// Whether this is the high class.
    pub fn is_high(self) -> bool {
        self == ContentionClass::High
    }
}

/// A trained contention-intensity estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntensityModel {
    regression: RidgeRegression,
    threshold: f64,
}

impl IntensityModel {
    /// Default ridge regularization (the paper's α).
    pub const DEFAULT_ALPHA: f64 = 0.1;

    /// Default percentile used to split requests into ℍ/𝕃: the top 40%
    /// of intensities are "high".
    pub const DEFAULT_HIGH_PERCENTILE: f64 = 0.6;

    /// Trains on the given profiling set: for each model, the PMU sample
    /// on `proc` is the feature vector and the measured solo bandwidth
    /// demand is the regression target. The ℍ/𝕃 threshold is set at
    /// `high_percentile` of the training intensities.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if the profiling set is empty or degenerate.
    ///
    /// # Panics
    ///
    /// Panics if `high_percentile` is outside `[0, 1]` or a profiling
    /// model cannot run on `proc`.
    pub fn train(
        cost: &CostModel,
        profiling_set: &[ModelGraph],
        proc: ProcessorId,
        alpha: f64,
        high_percentile: f64,
    ) -> Result<Self, FitError> {
        assert!(
            (0.0..=1.0).contains(&high_percentile),
            "percentile must be in [0, 1]"
        );
        let mut x = Vec::with_capacity(profiling_set.len());
        let mut y = Vec::with_capacity(profiling_set.len());
        for graph in profiling_set {
            x.push(measure(cost, graph, proc).features().to_vec());
            y.push(ground_truth_intensity(cost, graph, proc));
        }
        let regression = RidgeRegression::fit(&x, &y, alpha)?;
        let mut sorted = y.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() as f64 - 1.0) * high_percentile).round() as usize;
        let threshold = sorted[idx.min(sorted.len() - 1)];
        Ok(IntensityModel {
            regression,
            threshold,
        })
    }

    /// Trains with the default α and percentile.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if the profiling set is empty or degenerate.
    pub fn train_default(
        cost: &CostModel,
        profiling_set: &[ModelGraph],
        proc: ProcessorId,
    ) -> Result<Self, FitError> {
        Self::train(
            cost,
            profiling_set,
            proc,
            Self::DEFAULT_ALPHA,
            Self::DEFAULT_HIGH_PERCENTILE,
        )
    }

    /// Predicted contention intensity from a raw PMU sample.
    pub fn predict_sample(&self, sample: &PmuSample) -> f64 {
        self.regression.predict(&sample.features()).max(0.0)
    }

    /// Predicted contention intensity of a model (measures its synthetic
    /// PMU sample on `proc`, then applies the regression).
    pub fn predict(&self, cost: &CostModel, graph: &ModelGraph, proc: ProcessorId) -> f64 {
        self.predict_sample(&measure(cost, graph, proc))
    }

    /// The ℍ/𝕃 decision threshold on intensity.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Classifies an intensity value.
    pub fn classify_intensity(&self, intensity: f64) -> ContentionClass {
        if intensity > self.threshold {
            ContentionClass::High
        } else {
            ContentionClass::Low
        }
    }

    /// Classifies a model end to end.
    pub fn classify(
        &self,
        cost: &CostModel,
        graph: &ModelGraph,
        proc: ProcessorId,
    ) -> ContentionClass {
        self.classify_intensity(self.predict(cost, graph, proc))
    }

    /// The underlying regression (fitted weights for Eq. 1).
    pub fn regression(&self) -> &RidgeRegression {
        &self.regression
    }

    /// Leave-one-out cross-validation over a profiling set: for each
    /// model, trains on the remaining models and predicts the held-out
    /// one. Returns `(ground_truth, held_out_prediction)` pairs in set
    /// order — the paper's claim that the regression generalizes to "new
    /// inference requests" without co-execution profiling, made testable.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if any fold fails to fit (set too small or
    /// degenerate).
    pub fn cross_validate(
        cost: &CostModel,
        profiling_set: &[ModelGraph],
        proc: ProcessorId,
        alpha: f64,
    ) -> Result<Vec<(f64, f64)>, FitError> {
        if profiling_set.len() < 3 {
            return Err(FitError::Empty);
        }
        let samples: Vec<(Vec<f64>, f64)> = profiling_set
            .iter()
            .map(|g| {
                (
                    measure(cost, g, proc).features().to_vec(),
                    ground_truth_intensity(cost, g, proc),
                )
            })
            .collect();
        let mut out = Vec::with_capacity(samples.len());
        for held in 0..samples.len() {
            let x: Vec<Vec<f64>> = samples
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != held)
                .map(|(_, s)| s.0.clone())
                .collect();
            let y: Vec<f64> = samples
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != held)
                .map(|(_, s)| s.1)
                .collect();
            let fold = RidgeRegression::fit(&x, &y, alpha)?;
            out.push((samples[held].1, fold.predict(&samples[held].0).max(0.0)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;
    use h2p_simulator::SocSpec;

    fn trained() -> (CostModel, ProcessorId, IntensityModel) {
        let soc = SocSpec::kirin_990();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let cost = CostModel::new(&soc);
        let zoo: Vec<ModelGraph> = ModelId::ALL.iter().map(|m| m.graph()).collect();
        let model = IntensityModel::train_default(&cost, &zoo, big).unwrap();
        (cost, big, model)
    }

    #[test]
    fn regression_fits_the_zoo_reasonably() {
        let (cost, big, model) = trained();
        // In-sample predictions should track ground truth within 50%
        // relative error on average — the paper only needs a ranking.
        let mut rel_err = 0.0;
        for id in ModelId::ALL {
            let g = id.graph();
            let truth = ground_truth_intensity(&cost, &g, big);
            let pred = model.predict(&cost, &g, big);
            rel_err += ((pred - truth) / truth).abs();
        }
        rel_err /= ModelId::ALL.len() as f64;
        assert!(rel_err < 0.5, "mean relative error {rel_err}");
    }

    #[test]
    fn both_classes_are_populated() {
        let (cost, big, model) = trained();
        let mut high = 0;
        let mut low = 0;
        for id in ModelId::ALL {
            match model.classify(&cost, &id.graph(), big) {
                ContentionClass::High => high += 1,
                ContentionClass::Low => low += 1,
            }
        }
        assert!(high >= 2, "got {high} high");
        assert!(low >= 2, "got {low} low");
    }

    #[test]
    fn squeezenet_is_high_contention_despite_its_size() {
        // Observation 3's headline outlier.
        let (cost, big, model) = trained();
        assert_eq!(
            model.classify(&cost, &ModelId::SqueezeNet.graph(), big),
            ContentionClass::High
        );
    }

    #[test]
    fn prediction_is_never_negative() {
        let (_, _, model) = trained();
        let silly = PmuSample {
            ipc: 3.2,
            cache_miss_rate: 0.0,
            backend_stall: 0.0,
        };
        assert!(model.predict_sample(&silly) >= 0.0);
    }

    #[test]
    fn classify_intensity_respects_threshold() {
        let (_, _, model) = trained();
        let t = model.threshold();
        assert_eq!(model.classify_intensity(t), ContentionClass::Low);
        assert_eq!(model.classify_intensity(t + 1e-6), ContentionClass::High);
    }

    #[test]
    fn training_on_empty_set_fails() {
        let soc = SocSpec::kirin_990();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let cost = CostModel::new(&soc);
        assert!(IntensityModel::train_default(&cost, &[], big).is_err());
    }

    #[test]
    fn cross_validation_generalizes_to_held_out_models() {
        let soc = SocSpec::kirin_990();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let cost = CostModel::new(&soc);
        let zoo: Vec<ModelGraph> = ModelId::ALL.iter().map(|m| m.graph()).collect();
        let folds = IntensityModel::cross_validate(&cost, &zoo, big, IntensityModel::DEFAULT_ALPHA)
            .unwrap();
        assert_eq!(folds.len(), zoo.len());
        // Held-out predictions rank the models usefully: a model in the
        // top-3 true intensities should never be predicted into the
        // bottom-3, and the mean relative error stays bounded.
        let mean_rel: f64 =
            folds.iter().map(|&(t, p)| ((p - t) / t).abs()).sum::<f64>() / folds.len() as f64;
        assert!(mean_rel < 1.0, "mean held-out relative error {mean_rel:.2}");
        let rank = |xs: Vec<f64>| {
            let mut idx: Vec<usize> = (0..xs.len()).collect();
            idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
            let mut r = vec![0usize; xs.len()];
            for (pos, &i) in idx.iter().enumerate() {
                r[i] = pos;
            }
            r
        };
        let tr = rank(folds.iter().map(|f| f.0).collect());
        let pr = rank(folds.iter().map(|f| f.1).collect());
        let n = folds.len();
        for i in 0..n {
            if tr[i] >= n - 3 {
                assert!(pr[i] >= 3, "top-true model {i} predicted near bottom");
            }
        }
    }

    #[test]
    fn cross_validation_needs_at_least_three_models() {
        let soc = SocSpec::kirin_990();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let cost = CostModel::new(&soc);
        let two: Vec<ModelGraph> = vec![ModelId::Bert.graph(), ModelId::Vit.graph()];
        assert!(IntensityModel::cross_validate(&cost, &two, big, 0.1).is_err());
    }
}
