//! Minimal dense linear algebra: just enough to solve the ridge normal
//! equations `(XᵀX + αI) W = XᵀY` from the paper's Eq. (1).

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal cols");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Adds `alpha` to the diagonal in place (the ridge regularizer).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, alpha: f64) {
        assert_eq!(self.rows, self.cols, "diagonal shift needs a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += alpha;
        }
    }

    /// Solves `self · x = b` by Gaussian elimination with partial
    /// pivoting. Returns `None` if the matrix is singular (or nearly so).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length must equal rows");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let Some((pivot_row, pivot_val)) = (col..n)
                .map(|r| (r, a[r * n + col].abs()))
                .max_by(|l, r| l.1.total_cmp(&r.1))
            else {
                return None; // unreachable: col < n keeps the range non-empty
            };
            if pivot_val < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for j in (col + 1)..n {
                sum -= a[col * n + j] * x[j];
            }
            x[col] = sum / a[col * n + col];
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_to_rhs() {
        let i = Matrix::identity(3);
        let x = i.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let at = a.transpose();
        let p = at.matmul(&a);
        // AᵀA = [[10, 14], [14, 20]].
        assert_eq!(p[(0, 0)], 10.0);
        assert_eq!(p[(0, 1)], 14.0);
        assert_eq!(p[(1, 0)], 14.0);
        assert_eq!(p[(1, 1)], 20.0);
    }

    #[test]
    fn add_diagonal_shifts_only_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 0.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
