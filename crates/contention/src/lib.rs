//! # h2p-contention
//!
//! Synthetic PMU counters and the ridge-regression contention-intensity
//! model of the paper's Section III.
//!
//! On real silicon the paper reads perf events (IPC, cache-miss rate,
//! stalled-cycles-backend) from the CPU's Performance Monitor Unit and
//! fits a ridge regression (Eq. 1) predicting each model's *contention
//! intensity*, so that new inference requests can be classified into
//! high/low contention without profiling every co-execution pair.
//!
//! This crate substitutes the hardware PMU with counters derived from the
//! models' layer structure ([`counters`]), provides a small dense linear
//! algebra kernel ([`linalg`]) and the closed-form ridge solver
//! ([`ridge`]), and exposes the end-to-end intensity estimator and
//! high/low classifier used by the planner ([`intensity`]).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod counters;
pub mod intensity;
pub mod linalg;
pub mod ridge;

pub use counters::PmuSample;
pub use intensity::{ContentionClass, IntensityModel};
pub use ridge::RidgeRegression;
