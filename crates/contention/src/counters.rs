//! Synthetic Performance Monitor Unit (PMU) counters.
//!
//! The paper reads three perf events while a model runs solo on the CPU
//! Big cluster and uses them as regression features (Sec. III, Fig. 2b):
//!
//! 1. **IPC** — high values mean the core rarely waits on memory;
//! 2. **Cache-miss rate** — poor locality and L2-spilling tensors;
//! 3. **Stalled-cycles-backend** — fraction of cycles waiting on
//!    resources.
//!
//! Real counters are unavailable in this reproduction, so we derive them
//! from each layer's roofline decomposition: the compute-bound fraction of
//! a layer's time raises IPC, while spilled traffic and poor locality
//! raise miss rate and backend stalls. This preserves the property the
//! paper's regression depends on: memory-bound structure — not FLOPs or
//! model size — predicts contention, making SqueezeNet/GoogLeNet rank
//! high (Observation 3) and big-MatMul models rank high (Observation 2).

use serde::{Deserialize, Serialize};

use h2p_models::cost::CostModel;
use h2p_models::graph::ModelGraph;
use h2p_simulator::processor::ProcessorId;

/// One model's synthetic perf-event sample, the feature vector
/// `X = {x1, x2, x3}` of the paper's Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmuSample {
    /// Instructions per cycle (higher = more compute-bound).
    pub ipc: f64,
    /// Cache-miss rate in `[0, 1]`.
    pub cache_miss_rate: f64,
    /// Fraction of cycles stalled in the backend, in `[0, 1]`.
    pub backend_stall: f64,
}

impl PmuSample {
    /// The feature vector (with the paper's ordering) plus a bias term.
    pub fn features(&self) -> [f64; 4] {
        [self.ipc, self.cache_miss_rate, self.backend_stall, 1.0]
    }
}

/// Peak IPC of a mobile big core on perfectly cache-resident code.
const IPC_MAX: f64 = 3.2;

/// Measures the synthetic PMU sample of running `graph` solo on
/// `proc` (the paper instruments the CPU Big cluster).
///
/// Each layer contributes in proportion to its share of the model's total
/// latency; a layer's miss rate grows with `1 - locality` and with how far
/// its working set spills past the L2, and its stall fraction tracks the
/// memory-bound share of its roofline time.
///
/// # Panics
///
/// Panics if the model cannot run on `proc` (contains unsupported
/// operators there); measure on a CPU, which supports everything.
pub fn measure(cost: &CostModel, graph: &ModelGraph, proc: ProcessorId) -> PmuSample {
    let spec = cost.soc().processor(proc);
    let l2_bytes = (spec.l2_kib as f64) * 1024.0;
    let mut total_ms = 0.0;
    let mut ipc_acc = 0.0;
    let mut miss_acc = 0.0;
    let mut stall_acc = 0.0;
    for layer in graph.layers() {
        // Documented panic: callers must measure on a CPU, which
        // supports every operator.
        #[allow(clippy::expect_used)]
        let c = cost
            .layer_cost(layer, proc)
            .expect("PMU measurement requires a processor supporting all operators");
        let ms = c.latency_ms;
        // Memory-bound share of this layer's time.
        let mem_ms = c.traffic_bytes / (spec.mem_bandwidth_gbps * 1e6);
        let mem_frac = (mem_ms / ms.max(1e-12)).clamp(0.0, 1.0);
        // Cache miss rate: locality losses plus L2 spill depth.
        let spill = (layer.working_set_bytes as f64 / l2_bytes).max(1.0);
        let spill_term = (spill.ln() / 8.0).clamp(0.0, 0.5);
        let miss = (0.03 + 0.45 * (1.0 - layer.locality) + spill_term).clamp(0.0, 0.95);
        let ipc = IPC_MAX * (1.0 - mem_frac).max(0.08);
        let stall = (0.08 + 0.75 * mem_frac).clamp(0.0, 0.95);
        total_ms += ms;
        ipc_acc += ipc * ms;
        miss_acc += miss * ms;
        stall_acc += stall * ms;
    }
    let t = total_ms.max(1e-12);
    PmuSample {
        ipc: ipc_acc / t,
        cache_miss_rate: miss_acc / t,
        backend_stall: stall_acc / t,
    }
}

/// The ground-truth contention intensity used to *train* the regression:
/// the model's average DRAM bandwidth demand on `proc`, normalized so a
/// demand of [`REFERENCE_BANDWIDTH_GBPS`] maps to intensity 1.0. This is
/// the quantity the simulator's interference model consumes.
pub fn ground_truth_intensity(cost: &CostModel, graph: &ModelGraph, proc: ProcessorId) -> f64 {
    use h2p_models::graph::LayerRange;
    let whole = LayerRange::new(0, graph.len() - 1);
    // Documented panic: ground truth is measured on a CPU, which
    // supports every operator.
    #[allow(clippy::expect_used)]
    let bw = cost
        .slice_bandwidth_gbps(graph, whole, proc)
        .expect("intensity requires a processor supporting all operators");
    bw / REFERENCE_BANDWIDTH_GBPS
}

/// Bandwidth demand corresponding to contention intensity 1.0 — roughly
/// the per-client share of a mobile bus under load (the paper notes the
/// effective shared-bus bandwidth sits well below 20 GB/s; a client
/// sustaining ~4 GB/s already degrades its peers noticeably).
pub const REFERENCE_BANDWIDTH_GBPS: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;
    use h2p_simulator::SocSpec;

    fn setup() -> (CostModel, ProcessorId) {
        let soc = SocSpec::kirin_990();
        let big = soc.processor_by_name("CPU_B").unwrap();
        (CostModel::new(&soc), big)
    }

    #[test]
    fn counters_are_in_valid_ranges() {
        let (cost, big) = setup();
        for id in ModelId::ALL {
            let s = measure(&cost, &id.graph(), big);
            assert!(s.ipc > 0.0 && s.ipc <= IPC_MAX, "{id}: ipc={}", s.ipc);
            assert!((0.0..=0.95).contains(&s.cache_miss_rate), "{id}");
            assert!((0.0..=0.95).contains(&s.backend_stall), "{id}");
        }
    }

    #[test]
    fn squeezenet_misses_more_than_resnet() {
        // Observation 3: the fire-module structure yields high miss rates
        // despite tiny FLOPs.
        let (cost, big) = setup();
        let sq = measure(&cost, &ModelId::SqueezeNet.graph(), big);
        let rn = measure(&cost, &ModelId::ResNet50.graph(), big);
        assert!(
            sq.cache_miss_rate > rn.cache_miss_rate,
            "SqueezeNet {} vs ResNet50 {}",
            sq.cache_miss_rate,
            rn.cache_miss_rate
        );
    }

    #[test]
    fn stalls_track_intensity() {
        // Models with more backend stalls should demand more bandwidth:
        // the regression's learnability depends on this correlation.
        let (cost, big) = setup();
        let mut pairs: Vec<(f64, f64)> = ModelId::ALL
            .iter()
            .map(|id| {
                let g = id.graph();
                (
                    measure(&cost, &g, big).backend_stall,
                    ground_truth_intensity(&cost, &g, big),
                )
            })
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Spearman-ish check: top-3 stalls have higher mean intensity than
        // bottom-3.
        let lo: f64 = pairs[..3].iter().map(|p| p.1).sum::<f64>() / 3.0;
        let hi: f64 = pairs[pairs.len() - 3..].iter().map(|p| p.1).sum::<f64>() / 3.0;
        assert!(
            hi > lo,
            "stalls must correlate with intensity: {lo} vs {hi}"
        );
    }

    #[test]
    fn intensity_is_positive_and_bounded() {
        let (cost, big) = setup();
        for id in ModelId::ALL {
            let y = ground_truth_intensity(&cost, &id.graph(), big);
            assert!(y > 0.0 && y < 3.0, "{id}: intensity={y}");
        }
    }

    #[test]
    fn features_include_bias() {
        let s = PmuSample {
            ipc: 2.0,
            cache_miss_rate: 0.3,
            backend_stall: 0.4,
        };
        assert_eq!(s.features(), [2.0, 0.3, 0.4, 1.0]);
    }
}
