//! Ridge regression — the paper's Eq. (1):
//!
//! ```text
//! W = argmin_w ½‖XW − Y‖² + ½α‖W‖²  =  (XᵀX + αI)⁻¹ XᵀY
//! ```
//!
//! solved in closed form via the normal equations.

use serde::{Deserialize, Serialize};

use crate::linalg::Matrix;

/// Errors from fitting a ridge regression.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FitError {
    /// No training samples were provided.
    Empty,
    /// Feature vectors have inconsistent lengths, or `y` does not match.
    ShapeMismatch {
        /// Expected feature length.
        expected: usize,
        /// Offending length.
        got: usize,
    },
    /// The regularized normal matrix was singular (alpha too small for a
    /// degenerate design matrix).
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::Empty => write!(f, "no training samples"),
            FitError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "inconsistent sample shape: expected {expected}, got {got}"
                )
            }
            FitError::Singular => write!(f, "normal matrix is singular; increase alpha"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted ridge-regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    alpha: f64,
}

impl RidgeRegression {
    /// Fits `W = (XᵀX + αI)⁻¹ XᵀY` on feature rows `x` and targets `y`.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] on empty input, ragged shapes or a singular
    /// regularized normal matrix.
    pub fn fit(x: &[Vec<f64>], y: &[f64], alpha: f64) -> Result<Self, FitError> {
        if x.is_empty() || y.is_empty() {
            return Err(FitError::Empty);
        }
        let d = x[0].len();
        if d == 0 {
            return Err(FitError::ShapeMismatch {
                expected: 1,
                got: 0,
            });
        }
        for row in x {
            if row.len() != d {
                return Err(FitError::ShapeMismatch {
                    expected: d,
                    got: row.len(),
                });
            }
        }
        if y.len() != x.len() {
            return Err(FitError::ShapeMismatch {
                expected: x.len(),
                got: y.len(),
            });
        }
        let xm = Matrix::from_rows(x);
        let xt = xm.transpose();
        let mut normal = xt.matmul(&xm);
        normal.add_diagonal(alpha);
        let rhs = xt.matvec(y);
        let weights = normal.solve(&rhs).ok_or(FitError::Singular)?;
        Ok(RidgeRegression { weights, alpha })
    }

    /// The fitted weight vector `W`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The regularization strength the model was fitted with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training dimension.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature dimension mismatch"
        );
        features.iter().zip(&self.weights).map(|(f, w)| f * w).sum()
    }

    /// Mean squared prediction error over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or the set is empty.
    pub fn mse(&self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "sample count mismatch");
        assert!(!x.is_empty(), "mse of empty set");
        x.iter()
            .zip(y)
            .map(|(row, &t)| {
                let e = self.predict(row) - t;
                e * e
            })
            .sum::<f64>()
            / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2a + 3b + 1 with bias column.
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let a = i as f64;
                let b = (i * i % 7) as f64;
                vec![a, b, 1.0]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 3.0 * r[1] + 1.0).collect();
        let model = RidgeRegression::fit(&x, &y, 1e-8).unwrap();
        assert!((model.weights()[0] - 2.0).abs() < 1e-3);
        assert!((model.weights()[1] - 3.0).abs() < 1e-3);
        assert!(model.mse(&x, &y) < 1e-6);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 5.0 * r[0]).collect();
        let loose = RidgeRegression::fit(&x, &y, 1e-6).unwrap();
        let tight = RidgeRegression::fit(&x, &y, 1e3).unwrap();
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs());
    }

    #[test]
    fn degenerate_design_needs_alpha() {
        // Two identical columns: singular without regularization.
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..5).map(|i| i as f64).collect();
        assert_eq!(
            RidgeRegression::fit(&x, &y, 0.0).unwrap_err(),
            FitError::Singular
        );
        assert!(RidgeRegression::fit(&x, &y, 0.1).is_ok());
    }

    #[test]
    fn shape_errors_are_reported() {
        assert_eq!(
            RidgeRegression::fit(&[], &[], 1.0).unwrap_err(),
            FitError::Empty
        );
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            RidgeRegression::fit(&ragged, &[1.0, 2.0], 1.0),
            Err(FitError::ShapeMismatch { .. })
        ));
        let x = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            RidgeRegression::fit(&x, &[1.0], 1.0),
            Err(FitError::ShapeMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn predict_validates_dimension() {
        let x = vec![vec![1.0, 1.0]];
        let model = RidgeRegression::fit(&x, &[1.0], 0.1).unwrap();
        model.predict(&[1.0]);
    }
}
