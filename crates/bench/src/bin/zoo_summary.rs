//! Inventory of the model zoo: parameters, FLOPs, layer counts, NPU
//! supportability and memory tiers — the "Inference Models" paragraph of
//! the paper's setup section, as a table.

use h2p_bench::print_table;
use h2p_models::zoo::ModelId;

fn main() {
    let rows: Vec<Vec<String>> = ModelId::ALL
        .iter()
        .map(|id| {
            let g = id.graph();
            vec![
                id.name().to_owned(),
                format!("{}", g.len()),
                format!("{:.1}M", g.weight_bytes() as f64 / 4.0 / 1e6),
                format!("{:.1}", g.weight_bytes() as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", g.total_flops() / 1e9),
                if g.fully_npu_supported() {
                    "yes"
                } else {
                    "no (fallback)"
                }
                .to_owned(),
                format!("{:?}", id.memory_tier()),
            ]
        })
        .collect();
    print_table(
        "Model zoo — the ten evaluation networks",
        &[
            "Model",
            "Layers",
            "Params",
            "Size (MB)",
            "GFLOPs",
            "NPU",
            "Tier",
        ],
        &rows,
    );
}
